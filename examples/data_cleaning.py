"""Data cleaning with ODs: detect, quantify, and repair violations.

The paper's motivating business rule: *no employee pays a lower tax
while earning a higher salary*.  We corrupt the employee table, watch
the OD break, locate the offending tuple pairs, and repair the data.

Run:  python examples/data_cleaning.py
"""

from repro.datasets import employees
from repro.relation.table import Relation
from repro.violations import (
    approximate_discovery,
    check_dependency,
    error_rate,
    greedy_repair,
    verify_repair,
)

RULES = [
    "[sal] -> [tax]",          # tax increases with salary
    "{sal}: [] -> perc",       # salary determines the tax percentage
]


def corrupt(table: Relation) -> Relation:
    """Introduce the classic data-entry error: a swapped tax amount."""
    rows = [list(row) for row in table.rows()]
    rows[1][6], rows[2][6] = rows[2][6], rows[1][6]   # swap two taxes
    rows[4][5] = 99                                   # absurd percentage
    return Relation.from_rows(table.names, rows)


def main() -> None:
    clean = employees()
    print("On the clean table, both business rules hold:")
    for rule in RULES:
        report = check_dependency(clean, rule)
        print(f"  {rule}: {'holds' if report.holds else 'VIOLATED'}")
    print()

    dirty = corrupt(clean)
    print("After two injected data-entry errors:")
    for rule in RULES:
        report = check_dependency(dirty, rule, max_witnesses=3)
        state = "holds" if report.holds else (
            f"VIOLATED by {report.n_violating_pairs} tuple pair(s)")
        print(f"  {rule}: {state}")
        for witness in report.witnesses:
            s, t = witness.row_s, witness.row_t
            print(f"      witness: {witness}")
            print(f"        row {s}: {dirty.row(s)}")
            print(f"        row {t}: {dirty.row(t)}")
    print()

    print("How far from holding? (g3 error = min fraction of tuples "
          "to delete)")
    for rule in RULES:
        print(f"  {rule}: g3 = {error_rate(dirty, rule):.3f}")
    print()

    repair = greedy_repair(dirty, RULES)
    print(f"Greedy repair removed rows {repair.removed_rows} "
          f"({repair.n_removed} of {dirty.n_rows}).")
    print(f"All rules hold afterwards: {verify_repair(repair, RULES)}")
    print()

    print("Approximate ODs (g3 <= 0.2) on the dirty table — the rules "
          "are still visible through the noise:")
    approx = approximate_discovery(
        dirty.project(["sal", "perc", "tax", "grp"]), max_error=0.2)
    for item in approx.ods:
        print(f"  {item}")


if __name__ == "__main__":
    main()
