"""Explaining dependencies: minimality, redundancy, and derivations.

FASTOD returns a *minimal* set — dependencies you expected may be
"missing" simply because they follow from stronger ones.  The
:class:`Explainer` answers "where did my OD go?" with the axioms of
the paper's Figure 2.

Run:  python examples/explain_dependencies.py
"""

from repro import discover_ods, parse
from repro.core.derivation import Explainer
from repro.datasets import date_dim


def main() -> None:
    dim = date_dim(365)
    result = discover_ods(dim)
    print(f"FASTOD found {result.paper_counts()} minimal canonical ODs "
          f"on date_dim ({dim.n_rows} rows)")
    print()

    explainer = Explainer(result.all_ods)
    questions = [
        # padded context: follows by Augmentation-I
        "{d_date_sk,d_dow}: [] -> d_year",
        # compatibility in a padded context (Augmentation-II)
        "{d_year}: d_month ~ d_quarter",
        # trivial
        "{d_month}: [] -> d_month",
        # genuinely false: nothing derives it
        "{d_dow}: [] -> d_month",
    ]
    for text in questions:
        dependency = parse(text)
        derivation = explainer.explain(dependency)
        print(f"Q: why is '{dependency}' not in the minimal set?")
        if derivation is None:
            print("   it simply does not hold — no derivation exists\n")
            continue
        for i, step in enumerate(derivation.steps, start=1):
            print(f"   {i}. {step}")
        print()

    # ------------------------------------------------------------------
    # Context-minimality is per dependency; the SET can still contain
    # logical redundancy (e.g. {sk} -> year follows from {sk} -> date
    # and {date} -> year via Strengthen).  The explainer finds those,
    # yielding an even smaller irredundant cover for storage.
    # ------------------------------------------------------------------
    cover = list(result.all_ods)
    kept = list(cover)
    removed = 0
    for od in cover:
        rest = [other for other in kept if other != od]
        if Explainer(rest).explain(od) is not None:
            kept = rest
            removed += 1
    print("context-minimal set vs irredundant cover: "
          f"{len(cover)} ODs shrink to {len(kept)} "
          f"({removed} were derivable from the rest — minimality per "
          "OD does not mean the set has no internal implications)")



if __name__ == "__main__":
    main()
