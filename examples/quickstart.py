"""Quickstart: discover order dependencies in a table.

Run:  python examples/quickstart.py
"""

from repro import Relation, discover_ods, parse
from repro.core.validation import CanonicalValidator
from repro.datasets import employees


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The paper's running example: employee salaries and taxes.
    # ------------------------------------------------------------------
    table = employees()
    print("Table 1 of the paper:")
    print(table.pretty())
    print()

    # ------------------------------------------------------------------
    # 2. Run FASTOD: the complete, minimal set of canonical ODs.
    # ------------------------------------------------------------------
    result = discover_ods(table)
    print(result.summary())
    print()
    print("Minimal canonical ODs with small contexts:")
    for od in result.all_ods:
        if len(od.context) <= 1:
            print(f"  {od}")
    print()

    # ------------------------------------------------------------------
    # 3. Check individual dependencies, in either syntax.
    # ------------------------------------------------------------------
    validator = CanonicalValidator(table.encode())
    for text in ["{posit}: [] -> bin",     # canonical constancy
                 "{yr}: bin ~ sal",        # canonical compatibility
                 "{yr}: bin ~ subg"]:      # fails: a swap exists
        dependency = parse(text)
        verdict = "holds" if validator.holds(dependency) else "VIOLATED"
        print(f"  {dependency}   ...{verdict}")
    print()

    # ------------------------------------------------------------------
    # 4. Your own data: build a relation and discover.
    # ------------------------------------------------------------------
    own = Relation.from_rows(
        ["order_id", "order_date", "ship_date"],
        [(1, 20240101, 20240103),
         (2, 20240102, 20240105),
         (3, 20240102, 20240105),
         (4, 20240107, 20240109)])
    print("A small orders table:")
    for od in discover_ods(own).all_ods:
        print(f"  {od}")
    print()
    print("Read '{order_date}: [] -> ship_date' as: tuples that agree "
          "on order_date agree on ship_date (an FD), and")
    print("'{}: order_date ~ ship_date' as: sorting by order_date also "
          "sorts by ship_date (no swaps).")


if __name__ == "__main__":
    main()
