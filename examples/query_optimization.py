"""Query optimization with ODs: the paper's Query 1 scenario.

A TPC-DS-style warehouse: ``web_sales`` facts reference a ``date_dim``
whose surrogate key was assigned in calendar order.  Discovered ODs let
the optimizer (1) simplify ORDER BY and GROUP BY lists, (2) skip sorts
already satisfied by an index, and (3) eliminate the dimension join for
range predicates — the "two probes" trick of Section 1.1.

Run:  python examples/query_optimization.py
"""

from repro.datasets import date_dim, web_sales
from repro.optimizer import (
    ODIndex,
    RangePredicate,
    StarQuery,
    compare_plans,
    simplify_group_by,
    simplify_order_by,
    sort_is_redundant,
)


def main() -> None:
    dim = date_dim(730)               # calendar years 2010-2011
    fact = web_sales(3000, 730)
    print(f"date_dim: {dim.n_rows} rows; web_sales: {fact.n_rows} rows")

    index = ODIndex.discover(dim)
    print(f"discovered {len(index)} minimal canonical ODs on date_dim; "
          "a few of them:")
    for od in list(index.fds)[:3] + list(index.ocds)[:3]:
        print(f"  {od}")
    print()

    # ------------------------------------------------------------------
    # 1. ORDER BY simplification (Query 1's order-by clause).
    # ------------------------------------------------------------------
    simplified = simplify_order_by(
        index, ["d_year", "d_quarter", "d_month"])
    print("ORDER BY simplification:")
    print(f"  {simplified}")
    print()

    # ------------------------------------------------------------------
    # 2. GROUP BY simplification via FDs (month determines quarter).
    # ------------------------------------------------------------------
    grouped = simplify_group_by(index, ["d_year", "d_quarter", "d_month"])
    print("GROUP BY simplification:")
    print(f"  {grouped.original} => {grouped.simplified}")
    for step in grouped.steps:
        print(f"    {step}")
    print()

    # ------------------------------------------------------------------
    # 3. Sort elimination: an index on the surrogate key already
    #    delivers many interesting orders.
    # ------------------------------------------------------------------
    print("Sort elimination with an index on (d_date_sk):")
    for requested in (["d_date"], ["d_year", "d_quarter"], ["d_dow"]):
        redundant = sort_is_redundant(index, ["d_date_sk"], requested)
        print(f"  ORDER BY {','.join(requested):20s} "
              f"-> {'sort skipped' if redundant else 'sort required'}")
    print()

    # ------------------------------------------------------------------
    # 4. Join elimination for the BETWEEN predicate on d_year.
    # ------------------------------------------------------------------
    query = StarQuery("ws_sold_date_sk", "d_date_sk",
                      RangePredicate("d_year", 2010, 2010))
    print(f"Query: {query}")
    comparison = compare_plans(fact, dim, query, index)
    print(f"  {comparison.elimination}")
    print(f"  plans agree on {len(comparison.join_rows)} fact rows: "
          f"{comparison.equivalent}")
    print(f"  {comparison.savings_summary()}")
    print()

    # An attribute NOT ordered by the key: the rewrite soundly refuses.
    bad = StarQuery("ws_sold_date_sk", "d_date_sk",
                    RangePredicate("d_dow", 6, 7))
    outcome = compare_plans(fact, dim, bad, index)
    print(f"Query: {bad}")
    print(f"  {outcome.elimination}")


if __name__ == "__main__":
    main()
