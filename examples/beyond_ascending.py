"""Beyond ascending ODs: bidirectional order and approximate rules.

Two of the paper's Section 7 extensions in action on voter-style data:

* ``age`` and ``birth_year`` are perfectly order-*anti*-correlated —
  invisible to ascending-only discovery, found by the bidirectional
  sweep;
* a rule that holds on 97% of tuples is recovered as an approximate OD
  after noise injection.

Run:  python examples/beyond_ascending.py
"""

import random

from repro import discover_ods
from repro.datasets import ncvoter_like
from repro.extensions import (
    BidirectionalOD,
    bidirectional_od_holds,
    directed,
    discover_bidirectional_ocds,
)
from repro.relation.table import Relation
from repro.violations import approximate_discovery, error_rate


def main() -> None:
    voters = ncvoter_like(400, 8)
    print(f"voters: {voters.n_rows} rows, attributes {voters.names}")
    print()

    # ------------------------------------------------------------------
    # 1. Ascending-only discovery cannot relate age and birth_year.
    # ------------------------------------------------------------------
    ascending = discover_ods(voters)
    age_pairs = [o for o in ascending.ocds
                 if {"age", "birth_year"} == {o.left, o.right}]
    print("ascending-only OCDs relating age and birth_year:",
          [str(o) for o in age_pairs] or "none")

    # ------------------------------------------------------------------
    # 2. The bidirectional sweep finds the inverse relationship.
    # ------------------------------------------------------------------
    bidirectional = discover_bidirectional_ocds(voters, max_context=0)
    print("bidirectional, opposite-direction pairs:")
    for ocd in bidirectional.opposite_only:
        print(f"  {ocd}   (one ascends while the other descends)")
    od = BidirectionalOD(directed("age"), directed("birth_year desc"))
    print(f"validator agrees that {od} holds:",
          bidirectional_od_holds(voters, od))
    print()

    # ------------------------------------------------------------------
    # 3. Approximate ODs survive noise.
    # ------------------------------------------------------------------
    rng = random.Random(0)
    rows = [list(row) for row in voters.rows()]
    for _ in range(max(1, len(rows) // 40)):            # ~2.5% noise
        rows[rng.randrange(len(rows))][5] = 99999       # corrupt zip
    noisy = Relation.from_rows(voters.names, rows)

    clean_error = error_rate(voters, "{zip}: [] -> county_id")
    exact_error = error_rate(noisy, "{zip}: [] -> county_id")
    print(f"'{{zip}}: [] -> county_id': g3 = {clean_error:.3f} clean, "
          f"{exact_error:.3f} after noise (exact discovery drops it)")
    approx = approximate_discovery(
        noisy.project(["county_id", "county_name", "zip"]),
        max_error=0.05)
    print("approximate ODs (g3 <= 0.05) still recover the rule:")
    for item in approx.ods:
        print(f"  {item}")


if __name__ == "__main__":
    main()
