"""Continuous data-quality monitoring with incremental OD checks.

A load pipeline appends fact rows continuously.  Re-validating every
constraint after each batch costs a full scan; :class:`ODMonitor`
maintains per-class state instead and answers per tuple in O(log k).
This example seeds a monitor from a clean warehouse slice, streams a
batch with injected corruption, and compares against naive
re-validation — the same verdicts, orders of magnitude less work.

Run:  python examples/streaming_monitor.py
"""

import random
import time

from repro.core.parser import parse
from repro.core.validation import CanonicalValidator
from repro.datasets import date_dim
from repro.relation.table import Relation
from repro.violations import ODMonitor

RULES = [
    "{}: d_date ~ d_date_sk",       # surrogate key loads in date order
    "{d_date_sk}: [] -> d_year",    # one year per key
    "{}: d_date_sk ~ d_year",
]


def stream_of_days(start_sk: int, count: int, seed: int = 4):
    """New date_dim rows, a few corrupted (out-of-order surrogates)."""
    rng = random.Random(seed)
    fresh = date_dim(720 + count, first_sk=2_450_000)
    for offset in range(count):
        row = list(fresh.row(720 + offset))
        if rng.random() < 0.08:                     # pipeline glitch:
            row[0] = start_sk - rng.randint(1, 300)  # key re-used
        yield tuple(row)


def main() -> None:
    seeded = date_dim(720)
    monitor = ODMonitor.from_relation(seeded, RULES)
    print(f"monitor seeded with {seeded.n_rows} clean rows and "
          f"{len(RULES)} rules")
    print()

    batch = list(stream_of_days(2_450_720, 150))
    started = time.perf_counter()
    rejections = monitor.insert_many(batch)
    incremental = time.perf_counter() - started
    print(f"streamed {len(batch)} rows: {monitor.n_accepted - seeded.n_rows}"
          f" accepted, {len(rejections)} rejected "
          f"in {incremental * 1000:.1f} ms")
    for rejected in rejections[:4]:
        print(f"  {rejected.od}: {rejected.reason} "
              f"(d_date_sk={rejected.row[0]}, d_date={rejected.row[1]})")
    print()

    # naive alternative: re-validate the whole table per insert
    print("naive re-validation of the full table per insert:")
    parsed = [parse(rule) for rule in RULES]
    accepted_rows = list(seeded.rows())
    naive_rejected = 0
    started = time.perf_counter()
    for row in batch[:50]:  # only a third of the batch, it is slow
        candidate = Relation.from_rows(seeded.names,
                                       accepted_rows + [row])
        validator = CanonicalValidator(candidate.encode())
        if all(validator.holds(dep) for dep in parsed):
            accepted_rows.append(row)
        else:
            naive_rejected += 1
    naive = time.perf_counter() - started
    print(f"  50 inserts took {naive * 1000:.0f} ms "
          f"({naive / 50 * 1000:.1f} ms each) and rejected "
          f"{naive_rejected}")
    per_insert = incremental / max(len(batch), 1)
    print(f"  incremental monitor: {per_insert * 1000:.3f} ms per insert "
          f"(~{naive / 50 / max(per_insert, 1e-9):.0f}x faster)")


if __name__ == "__main__":
    main()
