"""The exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    DataError,
    DependencyError,
    DiscoveryBudgetExceeded,
    ParseError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        SchemaError, DataError, DependencyError, ParseError,
        DiscoveryBudgetExceeded])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_is_dependency_error(self):
        assert issubclass(ParseError, DependencyError)

    def test_budget_carries_metadata(self):
        error = DiscoveryBudgetExceeded(
            "out of budget", elapsed_seconds=1.5, nodes_visited=42)
        assert error.elapsed_seconds == 1.5
        assert error.nodes_visited == 42
        assert "out of budget" in str(error)

    def test_catching_base_class_catches_everything(self):
        for exc in (SchemaError, DataError, ParseError):
            with pytest.raises(ReproError):
                raise exc("boom")


class TestRaisedWhereDocumented:
    def test_schema_error_from_unknown_attribute(self):
        from repro.relation.schema import Schema

        with pytest.raises(SchemaError):
            Schema(["a"]).index("b")

    def test_data_error_from_ragged_csv(self):
        from repro.relation.csvio import read_csv_text

        with pytest.raises(DataError):
            read_csv_text("a,b\n1\n")

    def test_parse_error_from_garbage(self):
        from repro.core.parser import parse

        with pytest.raises(ParseError):
            parse("nonsense")

    def test_dependency_error_from_bad_axiom_use(self):
        from repro.core.axioms_set import strengthen
        from repro.core.od import CanonicalFD

        with pytest.raises(DependencyError):
            strengthen(CanonicalFD({"x"}, "a"), CanonicalFD({"q"}, "b"))
