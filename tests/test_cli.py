"""CLI tests: every subcommand through main(argv)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.relation.csvio import write_csv
from tests.conftest import make_relation


@pytest.fixture
def csv_file(tmp_path):
    relation = make_relation(
        3, [(1, 10, 5), (2, 20, 5), (3, 30, 5), (3, 30, 5)])
    path = tmp_path / "data.csv"
    write_csv(relation, path)
    return str(path)


class TestDiscover:
    def test_human_output(self, csv_file, capsys):
        assert main(["discover", csv_file]) == 0
        out = capsys.readouterr().out
        assert "FASTOD" in out
        assert "{}: [] -> c2" in out  # c2 constant

    def test_json_output(self, csv_file, capsys):
        assert main(["discover", csv_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "FASTOD"
        assert "{}: [] -> c2" in payload["fds"]

    def test_no_minimal(self, csv_file, capsys):
        assert main(["discover", csv_file, "--no-minimal", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["minimal"] is False

    def test_max_level_and_limit(self, csv_file, capsys):
        assert main(["discover", csv_file, "--max-level", "1",
                     "--limit", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_rows"] == 2


class TestCheck:
    def test_holds(self, csv_file, capsys):
        assert main(["check", csv_file, "{}: [] -> c2"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_violated_exit_code(self, csv_file, capsys):
        assert main(["check", csv_file, "{}: [] -> c0"]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestViolations:
    def test_report(self, tmp_path, capsys):
        relation = make_relation(2, [(1, 2), (2, 1)])
        path = tmp_path / "swap.csv"
        write_csv(relation, path)
        assert main(["violations", str(path), "[c0] ~ [c1]"]) == 1
        out = capsys.readouterr().out
        assert "violated" in out and "swap" in out

    def test_clean(self, csv_file, capsys):
        assert main(["violations", csv_file, "{}: [] -> c2"]) == 0


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "flight.csv"
        assert main(["generate", "flight", str(out_path),
                     "--rows", "50", "--cols", "6"]) == 0
        assert out_path.exists()
        text = capsys.readouterr().out
        assert "50 rows x 6 attributes" in text

    def test_generated_discoverable(self, tmp_path, capsys):
        out_path = tmp_path / "d.csv"
        main(["generate", "dbtesma", str(out_path), "--rows", "40",
              "--cols", "5"])
        assert main(["discover", str(out_path)]) == 0


class TestDatasets:
    def test_lists_families(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "flight" in out and "ncvoter" in out


class TestProfile:
    def test_text_report(self, csv_file, capsys):
        assert main(["profile", csv_file]) == 0
        out = capsys.readouterr().out
        assert "Keys" in out and "Order dependencies" in out

    def test_markdown_report(self, csv_file, capsys):
        assert main(["profile", csv_file, "--markdown"]) == 0
        assert capsys.readouterr().out.startswith("# Data profile")

    def test_with_approximate(self, csv_file, capsys):
        assert main(["profile", csv_file, "--approx", "0.3"]) == 0
        assert "Approximate" in capsys.readouterr().out


class TestKeys:
    def test_duplicate_rows_no_key(self, csv_file, capsys):
        # the fixture has a duplicated row, so nothing can be a key
        assert main(["keys", csv_file]) == 0
        assert "0 minimal key(s)" in capsys.readouterr().out

    def test_lists_minimal_keys(self, tmp_path, capsys):
        relation = make_relation(2, [(1, 5), (2, 5), (3, 6)])
        path = tmp_path / "keyed.csv"
        write_csv(relation, path)
        assert main(["keys", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 minimal key(s)" in out
        assert "(c0)" in out

    def test_max_size(self, tmp_path, capsys):
        relation = make_relation(
            2, [(1, 1), (1, 2), (2, 1), (2, 2)])
        path = tmp_path / "composite.csv"
        write_csv(relation, path)
        assert main(["keys", str(path), "--max-size", "1"]) == 0
        assert "0 minimal key(s)" in capsys.readouterr().out


class TestExplain:
    def test_derivable(self, csv_file, capsys):
        # c2 is constant, so any padded context derives it
        assert main(["explain", csv_file, "{c0}: [] -> c2"]) == 0
        out = capsys.readouterr().out
        assert "derivation of" in out
        assert "Augmentation-I" in out

    def test_underivable(self, csv_file, capsys):
        assert main(["explain", csv_file, "{c2}: [] -> c0"]) == 1
        assert "no derivation" in capsys.readouterr().out

    def test_rejects_list_ods(self, csv_file, capsys):
        assert main(["explain", csv_file, "[c0] -> [c1]"]) == 2
        assert "canonical" in capsys.readouterr().err


class TestErrors:
    def test_repro_error_exit_code(self, tmp_path, capsys):
        missing = tmp_path / "nope.csv"
        missing.write_text("")  # empty CSV triggers DataError
        assert main(["discover", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err
