"""CLI tests: every subcommand through main(argv)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.relation.csvio import write_csv
from tests.conftest import make_relation


@pytest.fixture
def csv_file(tmp_path):
    relation = make_relation(
        3, [(1, 10, 5), (2, 20, 5), (3, 30, 5), (3, 30, 5)])
    path = tmp_path / "data.csv"
    write_csv(relation, path)
    return str(path)


class TestDiscover:
    def test_human_output(self, csv_file, capsys):
        assert main(["discover", csv_file]) == 0
        out = capsys.readouterr().out
        assert "FASTOD" in out
        assert "{}: [] -> c2" in out  # c2 constant

    def test_json_output(self, csv_file, capsys):
        assert main(["discover", csv_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "FASTOD"
        assert "{}: [] -> c2" in payload["fds"]

    def test_no_minimal(self, csv_file, capsys):
        assert main(["discover", csv_file, "--no-minimal", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["minimal"] is False

    def test_max_level_and_limit(self, csv_file, capsys):
        assert main(["discover", csv_file, "--max-level", "1",
                     "--limit", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_rows"] == 2


class TestCheck:
    def test_holds(self, csv_file, capsys):
        assert main(["check", csv_file, "{}: [] -> c2"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_violated_exit_code(self, csv_file, capsys):
        assert main(["check", csv_file, "{}: [] -> c0"]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestViolations:
    def test_report(self, tmp_path, capsys):
        relation = make_relation(2, [(1, 2), (2, 1)])
        path = tmp_path / "swap.csv"
        write_csv(relation, path)
        assert main(["violations", str(path), "[c0] ~ [c1]"]) == 1
        out = capsys.readouterr().out
        assert "violated" in out and "swap" in out

    def test_clean(self, csv_file, capsys):
        assert main(["violations", csv_file, "{}: [] -> c2"]) == 0


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "flight.csv"
        assert main(["generate", "flight", str(out_path),
                     "--rows", "50", "--cols", "6"]) == 0
        assert out_path.exists()
        text = capsys.readouterr().out
        assert "50 rows x 6 attributes" in text

    def test_generated_discoverable(self, tmp_path, capsys):
        out_path = tmp_path / "d.csv"
        main(["generate", "dbtesma", str(out_path), "--rows", "40",
              "--cols", "5"])
        assert main(["discover", str(out_path)]) == 0


class TestDatasets:
    def test_lists_families(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "flight" in out and "ncvoter" in out


class TestProfile:
    def test_text_report(self, csv_file, capsys):
        assert main(["profile", csv_file]) == 0
        out = capsys.readouterr().out
        assert "Keys" in out and "Order dependencies" in out

    def test_markdown_report(self, csv_file, capsys):
        assert main(["profile", csv_file, "--markdown"]) == 0
        assert capsys.readouterr().out.startswith("# Data profile")

    def test_with_approximate(self, csv_file, capsys):
        assert main(["profile", csv_file, "--approx", "0.3"]) == 0
        assert "Approximate" in capsys.readouterr().out

    def test_json_report_carries_fingerprint(self, csv_file, capsys):
        from repro.relation.csvio import read_csv
        from repro.relation.fingerprint import fingerprint

        assert main(["profile", csv_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # the digest the service catalog/result store key on
        assert payload["fingerprint"] == fingerprint(
            read_csv(csv_file))
        assert payload["ods"]["n_fds"] >= 1
        assert payload["keys"] == []   # duplicated row: no key
        assert "c2" in payload["constants"]


class TestServeParser:
    def test_serve_is_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2",
             "--store-dir", "/tmp/x", "--catalog-bytes", "1000"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 2
        assert args.catalog_bytes == 1000


class TestKeys:
    def test_duplicate_rows_no_key(self, csv_file, capsys):
        # the fixture has a duplicated row, so nothing can be a key
        assert main(["keys", csv_file]) == 0
        assert "0 minimal key(s)" in capsys.readouterr().out

    def test_lists_minimal_keys(self, tmp_path, capsys):
        relation = make_relation(2, [(1, 5), (2, 5), (3, 6)])
        path = tmp_path / "keyed.csv"
        write_csv(relation, path)
        assert main(["keys", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 minimal key(s)" in out
        assert "(c0)" in out

    def test_max_size(self, tmp_path, capsys):
        relation = make_relation(
            2, [(1, 1), (1, 2), (2, 1), (2, 2)])
        path = tmp_path / "composite.csv"
        write_csv(relation, path)
        assert main(["keys", str(path), "--max-size", "1"]) == 0
        assert "0 minimal key(s)" in capsys.readouterr().out


class TestExplain:
    def test_derivable(self, csv_file, capsys):
        # c2 is constant, so any padded context derives it
        assert main(["explain", csv_file, "{c0}: [] -> c2"]) == 0
        out = capsys.readouterr().out
        assert "derivation of" in out
        assert "Augmentation-I" in out

    def test_underivable(self, csv_file, capsys):
        assert main(["explain", csv_file, "{c2}: [] -> c0"]) == 1
        assert "no derivation" in capsys.readouterr().out

    def test_rejects_list_ods(self, csv_file, capsys):
        assert main(["explain", csv_file, "[c0] -> [c1]"]) == 2
        assert "canonical" in capsys.readouterr().err


class TestErrors:
    def test_repro_error_exit_code(self, tmp_path, capsys):
        missing = tmp_path / "nope.csv"
        missing.write_text("")  # empty CSV triggers DataError
        assert main(["discover", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err


@pytest.fixture
def stream_files(tmp_path):
    """A base CSV plus two append batches (the second introduces a
    swap that invalidates the planted OCD)."""
    base = make_relation(2, [(1, 10), (2, 20), (3, 30)])
    clean = make_relation(2, [(4, 40), (5, 50)])
    dirty = make_relation(2, [(6, 5)])
    paths = []
    for name, rel in [("base", base), ("b1", clean), ("b2", dirty)]:
        path = tmp_path / f"{name}.csv"
        write_csv(rel, path)
        paths.append(str(path))
    return paths


class TestAppend:
    def test_invalidation_reported(self, stream_files, capsys):
        base, clean, dirty = stream_files
        assert main(["append", base, clean, dirty]) == 0
        out = capsys.readouterr().out
        assert "batch 1" in out and "batch 2" in out
        assert "invalidated" in out
        assert "FASTOD-Incremental" in out

    def test_verify_flag(self, stream_files, capsys):
        base, clean, dirty = stream_files
        assert main(["append", base, clean, dirty, "--verify"]) == 0

    def test_json_payload(self, stream_files, capsys):
        base, clean, dirty = stream_files
        assert main(["append", base, clean, dirty, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["initial"]["n_rows"] == 3
        assert len(payload["batches"]) == 2
        assert payload["batches"][1]["invalidated"] == ["{}: c0 ~ c1"]
        assert payload["final"]["n_rows"] == 6

    def test_schema_mismatch_is_an_error(self, stream_files, tmp_path,
                                         capsys):
        base = stream_files[0]
        other = tmp_path / "other.csv"
        write_csv(make_relation(3, [(1, 2, 3)]), other)
        assert main(["append", base, str(other)]) == 2
        assert "error:" in capsys.readouterr().err


class TestWatch:
    def test_initial_then_done(self, csv_file, capsys):
        assert main(["watch", csv_file, "--interval", "0.01",
                     "--max-batches", "0"]) == 0
        out = capsys.readouterr().out
        assert "watching" in out and "done:" in out

    def test_picks_up_appended_rows(self, stream_files, monkeypatch,
                                    capsys):
        base, clean, _ = stream_files
        appended = {"done": False}

        def feed(_seconds):
            if not appended["done"]:
                with open(clean) as batch, open(base, "a") as target:
                    target.write("".join(batch.readlines()[1:]))
                appended["done"] = True

        import repro.cli as cli_module
        monkeypatch.setattr(cli_module.time, "sleep", feed)
        assert main(["watch", base, "--interval", "0.01",
                     "--max-batches", "1", "--json"]) == 0
        events = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds == ["initial", "batch", "done"]
        assert events[1]["n_appended"] == 2
        assert events[2]["result"]["n_rows"] == 5

    def test_idle_exit(self, csv_file, capsys):
        assert main(["watch", csv_file, "--interval", "0.01",
                     "--idle-exit", "2"]) == 0
        assert "done: 4 rows after 0 batch(es)" in \
            capsys.readouterr().out


class TestCacheFlags:
    def test_discover_json_includes_cache_stats(self, csv_file, capsys):
        assert main(["discover", csv_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "cache" in payload
        assert payload["cache"]["misses"] >= 1
        assert payload["cache"]["max_entries"] is None

    def test_discover_bounded_cache(self, csv_file, capsys):
        assert main(["discover", csv_file, "--json",
                     "--cache-max-entries", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["max_entries"] == 1
        # results are unaffected by the bound
        assert "{}: [] -> c2" in payload["fds"]

    def test_check_and_violations_accept_bound(self, csv_file):
        assert main(["check", csv_file, "{}: [] -> c2",
                     "--cache-max-entries", "2"]) == 0
        assert main(["violations", csv_file, "{}: [] -> c2",
                     "--cache-max-entries", "2"]) == 0


class TestZeroRowInputs:
    @pytest.fixture
    def header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b,c\n")
        return str(path)

    def test_discover(self, header_only, capsys):
        assert main(["discover", header_only]) == 0
        out = capsys.readouterr().out
        assert "0 rows" in out
        # with no tuples every attribute is vacuously constant
        assert "{}: [] -> a" in out

    def test_discover_json(self, header_only, capsys):
        assert main(["discover", header_only, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_rows"] == 0 and payload["n_fds"] == 3

    def test_check(self, header_only, capsys):
        assert main(["check", header_only, "{}: [] -> a"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_violations(self, header_only):
        assert main(["violations", header_only, "[a] -> [b]"]) == 0

    def test_append_from_zero_rows(self, header_only, tmp_path, capsys):
        batch = tmp_path / "batch.csv"
        batch.write_text("a,b,c\n1,2,3\n1,2,4\n")
        assert main(["append", header_only, str(batch),
                     "--verify"]) == 0
        assert "(2 total)" in capsys.readouterr().out

    def test_limit_zero_reads_no_rows(self, csv_file, capsys):
        assert main(["discover", csv_file, "--limit", "0",
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["n_rows"] == 0

    def test_totally_empty_file_is_graceful(self, tmp_path, capsys):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        assert main(["discover", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestWatchTruncation:
    def test_shrinking_file_is_an_error(self, csv_file, monkeypatch,
                                        capsys):
        truncated = {"done": False}

        def shrink(_seconds):
            if not truncated["done"]:
                with open(csv_file) as handle:
                    lines = handle.readlines()
                with open(csv_file, "w") as handle:
                    handle.writelines(lines[:2])   # header + 1 row
                truncated["done"] = True

        import repro.cli as cli_module
        monkeypatch.setattr(cli_module.time, "sleep", shrink)
        assert main(["watch", csv_file, "--interval", "0.01",
                     "--max-batches", "1"]) == 2
        assert "shrank" in capsys.readouterr().err
