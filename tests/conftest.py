"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.datasets import employees
from repro.relation.table import Relation


@pytest.fixture
def employee_table() -> Relation:
    """The paper's Table 1."""
    return employees()


def make_relation(n_cols: int, rows: List[Tuple[int, ...]]) -> Relation:
    """Relation with columns named c0..c{n-1}."""
    return Relation.from_rows([f"c{i}" for i in range(n_cols)], rows)


@st.composite
def small_relations(draw, max_cols: int = 4, max_rows: int = 10,
                    max_domain: int = 3) -> Relation:
    """Random small integer relations — the workhorse of the
    differential property tests (small domains create both splits and
    swaps with high probability)."""
    n_cols = draw(st.integers(min_value=1, max_value=max_cols))
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    domain = draw(st.integers(min_value=1, max_value=max_domain))
    cell = st.integers(min_value=0, max_value=domain)
    rows = draw(st.lists(
        st.tuples(*([cell] * n_cols)), min_size=n_rows, max_size=n_rows))
    return make_relation(n_cols, rows)


def random_relation(seed: int, n_cols: int, n_rows: int,
                    domain: int) -> Relation:
    """Deterministic random relation for non-hypothesis sweeps."""
    rng = random.Random(seed)
    rows = [tuple(rng.randint(0, domain) for _ in range(n_cols))
            for _ in range(n_rows)]
    return make_relation(n_cols, rows)
