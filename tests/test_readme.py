"""Documentation hygiene: the README's Python snippets actually run
and its file references exist."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
README = (REPO / "README.md").read_text(encoding="utf-8")


def _python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_python_snippets_execute(self):
        blocks = _python_blocks(README)
        assert blocks, "README should contain python examples"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})  # noqa: S102

    @pytest.mark.parametrize("path", [
        "DESIGN.md", "EXPERIMENTS.md", "API.md",
        "examples/quickstart.py", "examples/data_cleaning.py",
        "examples/query_optimization.py", "examples/beyond_ascending.py",
        "examples/streaming_monitor.py",
        "examples/explain_dependencies.py",
        "benchmarks/bench_exp1_tuples.py",
    ])
    def test_referenced_files_exist(self, path):
        assert (REPO / path).exists(), path

    def test_mentions_all_experiments(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for n in range(1, 8):
            assert f"Exp-{n}" in experiments

    def test_design_lists_every_subpackage(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for subpackage in ["core", "relation", "partitions", "baselines",
                           "violations", "optimizer", "datasets",
                           "extensions", "profile"]:
            assert f"repro.{subpackage}" in design \
                or f"{subpackage}/" in design, subpackage
