"""Exact reproduction of the paper's running examples (Table 1,
Examples 1-12, Table 2, and the Section 4.1 TPC-DS dependencies)."""

from __future__ import annotations

import pytest

from repro import (
    CanonicalValidator,
    ListOD,
    OrderCompatibility,
    discover_ods,
    list_od_holds,
    order_compatible,
    parse,
)
from repro.core.validation import find_swap
from repro.datasets import date_dim, date_dim_planted, employees
from repro.partitions import SortedPartition, StrippedPartition
from repro.relation.table import Relation


@pytest.fixture(scope="module")
def table1():
    return employees()


@pytest.fixture(scope="module")
def validator(table1):
    return CanonicalValidator(table1.encode())


class TestExample1:
    """Example 1: the four ODs that hold on Table 1."""

    @pytest.mark.parametrize("lhs,rhs", [
        (["sal"], ["tax"]),
        (["sal"], ["perc"]),
        (["sal"], ["grp", "subg"]),
        (["yr", "sal"], ["yr", "bin"]),
    ])
    def test_holds(self, table1, lhs, rhs):
        assert list_od_holds(table1, ListOD(lhs, rhs))

    def test_order_of_rhs_matters(self, table1):
        # grp,subg works; subg,grp does not (lists, not sets!)
        assert not list_od_holds(table1, ListOD(["sal"], ["subg", "grp"]))


class TestExample2:
    """Example 2: order compatibility is weaker than an OD."""

    def test_month_week_compatible_but_no_od(self):
        # Month/week data in the spirit of the example: several weeks
        # per month, so month does not functionally determine week.
        rows = [(m, (m - 1) * 4 + w) for m in range(1, 7)
                for w in range(1, 5)]
        rel = Relation.from_rows(["d_month", "d_week"], rows)
        assert order_compatible(
            rel, OrderCompatibility(["d_month"], ["d_week"]))
        assert not list_od_holds(rel, ListOD(["d_month"], ["d_week"]))


class TestExample3:
    """Example 3: three splits for [posit] -> [posit,sal]; a swap for
    [sal] ~ [subg] over t1 and t2."""

    def test_three_splits(self, table1, validator):
        encoded = table1.encode()
        sal = encoded.names.index("sal")
        posit_partition = validator.cache.get(
            1 << encoded.names.index("posit"))
        from repro.violations import count_split_pairs

        assert count_split_pairs(
            encoded.column(sal), posit_partition) == 3

    def test_split_witness_pairs(self, table1):
        # the violating pairs are (t1,t4), (t2,t5), (t3,t6) = rows
        # (0,3), (1,4), (2,5)
        encoded = table1.encode()
        validator = CanonicalValidator(encoded)
        witness = validator.witness(parse("{posit}: [] -> sal"))
        assert witness is not None
        assert {witness.row_s % 3, witness.row_t % 3} == {witness.row_s % 3}

    def test_swap_sal_subg(self, table1):
        assert not order_compatible(
            table1, OrderCompatibility(["sal"], ["subg"]))
        encoded = table1.encode()
        sal = encoded.names.index("sal")
        subg = encoded.names.index("subg")
        swap = find_swap(
            encoded.column(sal), encoded.column(subg),
            StrippedPartition.single_class(6), "sal", "subg")
        assert swap is not None
        # t1 (row 0) and t2 (row 1) are a swap: salary up, subgroup down
        assert {swap.row_s, swap.row_t} <= {0, 1, 2, 3, 4}


class TestExample4:
    """Example 4: canonical ODs that hold / fail on Table 1."""

    def test_bin_constant_within_position(self, validator):
        assert validator.holds(parse("{posit}: [] -> bin"))

    def test_bin_sal_compatible_within_year(self, validator):
        assert validator.holds(parse("{yr}: bin ~ sal"))

    def test_bin_subg_not_compatible_within_year(self, validator):
        assert not validator.holds(parse("{yr}: bin ~ subg"))

    def test_sal_not_constant_within_position(self, validator):
        assert not validator.holds(parse("{posit}: [] -> sal"))


class TestExample5:
    """Example 5: the canonical image of [A,B] -> [C,D]."""

    def test_mapping(self):
        from repro import map_list_od

        image = map_list_od(ListOD(["A", "B"], ["C", "D"]))
        rendered = {str(od) for od in image.all_ods}
        assert rendered == {
            "{A,B}: [] -> C",
            "{A,B}: [] -> D",
            "{}: A ~ C",
            "{A}: B ~ C",
            "{C}: A ~ D",
            "{A,C}: B ~ D",
        }


class TestExample6:
    """Example 6: Propagate — {sal}: [] -> tax gives {sal}: tax ~ yr."""

    def test_propagate_on_data(self, validator):
        assert validator.holds(parse("{sal}: [] -> tax"))
        assert validator.holds(parse("{sal}: tax ~ yr"))


class TestExample12:
    """Example 12: stripped partition of salary is {{t2, t6}}."""

    def test_stripped_partition(self, table1):
        encoded = table1.encode()
        sal = encoded.names.index("sal")
        partition = StrippedPartition.for_attribute(encoded, sal)
        assert partition.canonical_form() == frozenset(
            {frozenset({1, 5})})
        # the full partition keeps the four singletons
        assert len(partition.with_singletons()) == 5


class TestTable2:
    """Table 2: bucketization of a sorted partition by context class."""

    def setup_method(self):
        # tau_A = {{t3,t5,t8},{t1,t6},{t4},{t7},{t2}} and
        # Pi_X = {{t1},{t2},{t3,t4,t5},{t6,t7},{t8}} (1-indexed in the
        # paper; 0-indexed here).
        ranks = {2: 0, 4: 0, 7: 0, 0: 1, 5: 1, 3: 2, 6: 3, 1: 4}
        import numpy as np

        self.tau = SortedPartition.from_ranks(
            np.array([ranks[i] for i in range(8)]))

    def test_buckets(self):
        assert self.tau.buckets == [[2, 4, 7], [0, 5], [3], [6], [1]]

    def test_restrict_class_t3_t4_t5(self):
        # paper row: tau_A(E(t3 X)) = {t3, t5}, {t4}
        assert self.tau.restrict([2, 3, 4]) == [[2, 4], [3]]

    def test_restrict_class_t6_t7(self):
        # paper row: tau_A(E(t6 X)) = {t6}, {t7}
        assert self.tau.restrict([5, 6]) == [[5], [6]]


class TestClusteredIndexClaim:
    """Section 2.1: given [yr,sal] -> [yr,bin], a query ordering by
    yr,bin can reuse an index on yr,sal."""

    def test_index_satisfies_order(self, table1):
        assert list_od_holds(table1, ListOD(["yr", "sal"], ["yr", "bin"]))


class TestTpcdsDependencies:
    """Section 4.1: the canonical ODs FASTOD detects on TPC-DS."""

    def test_planted_hold(self):
        rel = date_dim(400)
        validator = CanonicalValidator(rel.encode())
        for text in date_dim_planted():
            assert validator.holds(parse(text)), text

    def test_discovered(self):
        rel = date_dim(200)
        result = discover_ods(rel)
        found = {str(od) for od in result.all_ods}
        # d_month ~ d_quarter is minimal (empty context, no constants)
        assert "{}: d_month ~ d_quarter" in found
        assert "{d_month}: [] -> d_quarter" in found


class TestTheorem1:
    """Theorem 1: X -> Y iff X -> XY and X ~ Y (checked on data)."""

    @pytest.mark.parametrize("lhs,rhs", [
        (["sal"], ["tax"]),
        (["sal"], ["subg"]),
        (["posit"], ["sal"]),
        (["yr", "sal"], ["yr", "bin"]),
        (["bin"], ["grp", "subg"]),
    ])
    def test_decomposition(self, table1, lhs, rhs):
        od = ListOD(lhs, rhs)
        fd_part = list_od_holds(table1, ListOD(lhs, lhs + rhs))
        compat_part = order_compatible(
            table1, OrderCompatibility(lhs, rhs))
        assert list_od_holds(table1, od) == (fd_part and compat_part)
