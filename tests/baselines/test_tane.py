"""TANE correctness: exactly the minimal FDs, matching FASTOD's FD
fragment (the paper notes both find identical FDs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import discover_ods
from repro.baselines import discover_fds, minimal_canonical_ods
from repro.baselines.tane import Tane, TaneConfig
from tests.conftest import make_relation, random_relation, small_relations


class TestAgainstOracle:
    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_matches_bruteforce_fds(self, relation):
        tane = discover_fds(relation)
        truth = minimal_canonical_ods(relation)
        assert set(tane.fds) == set(truth.fds)
        assert tane.ocds == []

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_matches_fastod_fd_fragment(self, relation):
        tane = discover_fds(relation)
        fastod = discover_ods(relation)
        assert set(tane.fds) == set(fastod.fds)

    @pytest.mark.parametrize("seed", range(5))
    def test_larger_sweep(self, seed):
        relation = random_relation(seed + 50, n_cols=6, n_rows=40, domain=2)
        tane = discover_fds(relation)
        fastod = discover_ods(relation)
        assert set(tane.fds) == set(fastod.fds)


class TestBehaviour:
    def test_constants_found_at_level_one(self):
        relation = make_relation(2, [(7, 1), (7, 2), (7, 3)])
        result = discover_fds(relation)
        assert "{}: [] -> c0" in {str(fd) for fd in result.fds}

    def test_key_gives_minimal_fd(self):
        relation = make_relation(2, [(1, 5), (2, 5), (3, 6)])
        result = discover_fds(relation)
        assert "{c0}: [] -> c1" in {str(fd) for fd in result.fds}

    def test_max_level(self):
        relation = random_relation(9, n_cols=5, n_rows=20, domain=2)
        capped = Tane(relation, TaneConfig(max_level=2)).run()
        full = discover_fds(relation)
        assert set(capped.fds) <= set(full.fds)
        assert all(len(fd.context) <= 1 for fd in capped.fds)

    def test_timeout(self):
        relation = random_relation(9, n_cols=8, n_rows=100, domain=2)
        result = Tane(relation, TaneConfig(timeout_seconds=0.0)).run()
        assert result.timed_out

    def test_algorithm_name(self):
        result = discover_fds(make_relation(1, [(1,)]))
        assert result.algorithm == "TANE"
