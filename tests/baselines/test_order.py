"""The ORDER baseline: soundness, the documented incompletenesses
(Section 4.5), pruning behaviour, and budgets."""

from __future__ import annotations

from hypothesis import given, settings

from repro import discover_ods, list_od_holds
from repro.baselines import discover_ods_order
from repro.baselines.order import Order, OrderConfig
from repro.core.od import ListOD
from tests.conftest import make_relation, random_relation, small_relations


class TestSoundness:
    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_every_reported_od_holds(self, relation):
        result = discover_ods_order(relation)
        for od in result.list_ods:
            assert list_od_holds(relation, od), str(od)

    def test_lhs_rhs_disjoint_and_duplicate_free(self):
        relation = random_relation(2, n_cols=5, n_rows=20, domain=2)
        result = discover_ods_order(relation)
        for od in result.list_ods:
            lhs, rhs = set(od.lhs.attrs), set(od.rhs.attrs)
            assert len(od.lhs.attrs) == len(lhs)
            assert len(od.rhs.attrs) == len(rhs)
            assert not (lhs & rhs)


class TestDocumentedIncompleteness:
    """Exactly the gaps Section 4.5 attributes to ORDER."""

    def test_misses_constants(self):
        # c0 constant: FASTOD reports {}: [] -> c0, ORDER cannot
        relation = make_relation(2, [(7, 1), (7, 2), (7, 3)])
        order = discover_ods_order(relation)
        fastod = discover_ods(relation)
        assert any(fd.is_constant for fd in fastod.fds)
        assert not any(fd.is_constant for fd in order.fds)

    def test_misses_repeated_attribute_ods(self):
        # c0 -> c0,c1 holds (an FD) but c0 ~ c1 has a swap, so the
        # plain OD c0 -> c1 fails and ORDER reports nothing while
        # FASTOD finds the FD {c0}: [] -> c1.
        relation = make_relation(2, [(1, 9), (2, 3), (3, 5)])
        assert list_od_holds(relation, ListOD(["c0"], ["c0", "c1"]))
        assert not list_od_holds(relation, ListOD(["c0"], ["c1"]))
        order = discover_ods_order(relation)
        fastod = discover_ods(relation)
        assert "{c0}: [] -> c1" in {str(fd) for fd in fastod.fds}
        assert "{c0}: [] -> c1" not in {str(fd) for fd in order.fds}

    def test_misses_pure_order_compatibility(self):
        # c0 ~ c1 holds but neither OD direction does (splits both
        # ways), so split pruning stops ORDER from ever certifying the
        # OCD — the paper's d_month ~ d_week example.
        relation = make_relation(2, [(1, 1), (1, 2), (2, 2), (2, 3)])
        order = discover_ods_order(relation)
        fastod = discover_ods(relation)
        assert "{}: c0 ~ c1" in {str(o) for o in fastod.ocds}
        assert "{}: c0 ~ c1" not in {str(o) for o in order.ocds}

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_never_finds_more_than_fastod_implies(self, relation):
        """Everything ORDER finds is implied by FASTOD's minimal set
        (ORDER ⊆ complete); the reverse often fails."""
        from repro.core.axioms_set import InferenceEngine

        order = discover_ods_order(relation)
        fastod = discover_ods(relation)
        engine = InferenceEngine([*fastod.fds, *fastod.ocds])
        for od in order.fds + order.ocds:
            assert engine.implies(od), str(od)


class TestRedundancy:
    def test_order_output_less_concise(self):
        # A constant column plus two correlated ones: ORDER re-derives
        # the "same" OD through many permutations (the paper's flight
        # year example); FASTOD reports the compact canonical form.
        rows = [(2012, i, i // 2, (i * 13) % 7) for i in range(30)]
        relation = make_relation(4, rows)
        order = discover_ods_order(relation)
        fastod = discover_ods(relation)
        assert len(order.list_ods) > fastod.n_ods / 2  # sanity
        assert order.n_ods >= fastod.n_ods


class TestBudgets:
    def test_node_budget_flags_dnf(self):
        relation = random_relation(4, n_cols=6, n_rows=30, domain=2)
        result = Order(relation, OrderConfig(max_nodes=5)).run()
        assert result.timed_out
        assert result.n_nodes_visited >= 5

    def test_timeout_flags_dnf(self):
        relation = random_relation(4, n_cols=6, n_rows=30, domain=2)
        result = Order(relation, OrderConfig(timeout_seconds=0.0)).run()
        assert result.timed_out

    def test_nodes_counted(self):
        relation = make_relation(2, [(1, 2), (2, 3)])
        result = discover_ods_order(relation)
        assert result.n_nodes_visited >= 2  # the two level-2 candidates


class TestCanonicalMapping:
    def test_counts_deduplicated(self):
        # [a] -> [b] and [b] -> [a] share the canonical OCD {}: a ~ b
        relation = make_relation(2, [(1, 10), (2, 20), (3, 30)])
        result = discover_ods_order(relation)
        rendered = [str(o) for o in result.ocds]
        assert len(rendered) == len(set(rendered))
        assert "{}: c0 ~ c1" in rendered
