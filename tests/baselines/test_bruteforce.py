"""Sanity checks for the brute-force oracle itself (hand-verified
miniature cases, so the oracle is anchored independently)."""

from __future__ import annotations

from repro.baselines import (
    all_valid_canonical_ods,
    all_valid_list_ods,
    minimal_canonical_ods,
)
from repro.core.od import CanonicalFD, CanonicalOCD
from tests.conftest import make_relation


class TestAllValid:
    def test_two_identical_columns(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        fds, ocds = all_valid_canonical_ods(relation)
        assert CanonicalFD({"c0"}, "c1") in fds
        assert CanonicalFD({"c1"}, "c0") in fds
        assert CanonicalOCD(set(), "c0", "c1") in ocds

    def test_constant_column(self):
        relation = make_relation(1, [(5,), (5,)])
        fds, ocds = all_valid_canonical_ods(relation)
        assert fds == {CanonicalFD(set(), "c0")}
        assert ocds == set()

    def test_swap_kills_empty_context_only(self):
        # c2 distinguishes the swap rows: {}: c0 ~ c1 fails but
        # {c2}: c0 ~ c1 holds
        relation = make_relation(3, [(1, 2, 0), (2, 1, 1)])
        fds, ocds = all_valid_canonical_ods(relation)
        assert CanonicalOCD(set(), "c0", "c1") not in ocds
        assert CanonicalOCD({"c2"}, "c0", "c1") in ocds

    def test_max_context_bound(self):
        relation = make_relation(3, [(1, 2, 3), (1, 2, 4)])
        fds, _ = all_valid_canonical_ods(relation, max_context=1)
        assert all(len(fd.context) <= 1 for fd in fds)


class TestMinimal:
    def test_augmentation_removed(self):
        # c0 determines c1; the padded context {c0,c2} must not appear
        relation = make_relation(
            3, [(1, 5, 0), (2, 5, 0), (3, 6, 1), (3, 6, 1)])
        result = minimal_canonical_ods(relation)
        rendered = {str(fd) for fd in result.fds}
        assert "{c0}: [] -> c1" in rendered
        assert "{c0,c2}: [] -> c1" not in rendered

    def test_propagate_removed(self):
        # constant column c0: no OCD mentioning c0 can be minimal
        relation = make_relation(2, [(5, 1), (5, 2)])
        result = minimal_canonical_ods(relation)
        assert result.ocds == []

    def test_empty_context_ocd_minimal(self):
        relation = make_relation(2, [(1, 10), (2, 20)])
        result = minimal_canonical_ods(relation)
        # both columns are keys; the only minimal OD beyond key FDs is
        # the empty-context compatibility
        assert "{}: c0 ~ c1" in {str(o) for o in result.ocds}


class TestListOds:
    def test_tiny_enumeration(self):
        relation = make_relation(2, [(1, 10), (2, 20)])
        found = {str(od) for od in all_valid_list_ods(relation, 1, 1)}
        assert "[c0] -> [c1]" in found
        assert "[c1] -> [c0]" in found

    def test_respects_bounds(self):
        relation = make_relation(3, [(1, 2, 3)])
        for od in all_valid_list_ods(relation, max_lhs=1, max_rhs=2):
            assert len(od.lhs) <= 1 and len(od.rhs) <= 2

    def test_all_reported_hold(self):
        from repro import list_od_holds

        relation = make_relation(2, [(1, 3), (2, 1), (2, 2)])
        for od in all_valid_list_ods(relation, 2, 2):
            assert list_od_holds(relation, od)
