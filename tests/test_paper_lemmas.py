"""Data-level property tests for the paper's pruning lemmas.

These are the statements FASTOD's candidate machinery relies on; each
is checked directly on random instances, independent of the algorithm.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.validation import CanonicalValidator
from repro.partitions.cache import PartitionCache
from tests.conftest import small_relations

relations = small_relations(max_cols=4, max_rows=10, max_domain=2)


def _draw_subset(data, names, max_size=3):
    size = data.draw(st.integers(0, min(max_size, len(names))))
    return frozenset(data.draw(st.permutations(list(names)))[:size])


class TestLemma5:
    """If B ∈ X and X\\B: [] ↦ B, then X: [] ↦ A implies X\\B: [] ↦ A."""

    @settings(max_examples=80, deadline=None)
    @given(relations, st.data())
    def test_on_data(self, relation, data):
        names = list(relation.names)
        if len(names) < 2:
            return
        validator = CanonicalValidator(relation)
        context = _draw_subset(data, names)
        b = data.draw(st.sampled_from(names))
        a = data.draw(st.sampled_from(names))
        full = context | {b}
        if not validator.holds(CanonicalFD(full - {b}, b)):
            return
        if validator.holds(CanonicalFD(full, a)):
            assert validator.holds(CanonicalFD(full - {b}, a))


class TestLemma6:
    """If C ∈ X and X\\C: [] ↦ C, then X: A ~ B implies X\\C: A ~ B."""

    @settings(max_examples=80, deadline=None)
    @given(relations, st.data())
    def test_on_data(self, relation, data):
        names = list(relation.names)
        if len(names) < 3:
            return
        validator = CanonicalValidator(relation)
        a, b, c = data.draw(st.permutations(names))[:3]
        context = _draw_subset(data, names, max_size=1) | {c}
        if not validator.holds(CanonicalFD(context - {c}, c)):
            return
        if validator.holds(CanonicalOCD(context, a, b)):
            assert validator.holds(CanonicalOCD(context - {c}, a, b))


class TestLemma12:
    """A superkey context validates every constancy OD."""

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_on_data(self, relation, data):
        names = list(relation.names)
        validator = CanonicalValidator(relation)
        cache = PartitionCache(relation.encode())
        context = _draw_subset(data, names)
        mask = 0
        for name in context:
            mask |= 1 << names.index(name)
        if not cache.get(mask).is_superkey():
            return
        for attribute in names:
            if attribute not in context:
                assert validator.holds(CanonicalFD(context, attribute))


class TestLemma13:
    """A superkey context validates every compatibility OD (and makes
    it non-minimal — checked against the discovery output)."""

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_on_data(self, relation, data):
        from repro import discover_ods

        names = list(relation.names)
        if len(names) < 2:
            return
        validator = CanonicalValidator(relation)
        cache = PartitionCache(relation.encode())
        context = _draw_subset(data, names)
        mask = 0
        for name in context:
            mask |= 1 << names.index(name)
        if not cache.get(mask).is_superkey():
            return
        outside = [n for n in names if n not in context]
        if len(outside) < 2:
            return
        a, b = outside[0], outside[1]
        assert validator.holds(CanonicalOCD(context, a, b))
        # non-minimality: the discovered minimal set never contains an
        # OCD whose context is a superkey (with >= 1 attribute: the
        # empty superkey case means <=1 row, where no OCD is minimal
        # either)
        result = discover_ods(relation)
        for ocd in result.ocds:
            ocd_mask = 0
            for name in ocd.context:
                ocd_mask |= 1 << names.index(name)
            assert not cache.get(ocd_mask).is_superkey(), str(ocd)


class TestLemma14:
    """Singleton classes cannot falsify any canonical OD: validating
    against the stripped partition equals validating against the full
    partition."""

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_on_data(self, relation, data):
        from repro.core.validation import (
            is_compatible_in_classes,
            is_constant_in_classes,
        )
        from repro.partitions.partition import StrippedPartition

        names = list(relation.names)
        if len(names) < 2 or relation.n_rows == 0:
            return
        encoded = relation.encode()
        cache = PartitionCache(encoded)
        context = _draw_subset(data, names, max_size=2)
        mask = 0
        for name in context:
            mask |= 1 << names.index(name)
        stripped = cache.get(mask)
        # full partition: singletons re-attached
        full = StrippedPartition(
            [c for c in stripped.with_singletons() if True],
            stripped.n_rows)
        a = names.index(data.draw(st.sampled_from(names)))
        b = names.index(data.draw(st.sampled_from(names)))
        assert is_constant_in_classes(encoded.column(a), stripped) == \
            is_constant_in_classes(encoded.column(a), full)
        assert is_compatible_in_classes(
            encoded.column(a), encoded.column(b), stripped) == \
            is_compatible_in_classes(
                encoded.column(a), encoded.column(b), full)
