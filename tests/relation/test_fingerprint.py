"""relation.fingerprint: the service layer's content-identity contract."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.datasets import make_dataset
from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation
from tests.conftest import make_relation


class TestDeterminism:
    def test_same_content_same_digest(self):
        a = make_relation(3, [(1, 10, 5), (2, 20, 5), (3, 30, 5)])
        b = make_relation(3, [(1, 10, 5), (2, 20, 5), (3, 30, 5)])
        assert fingerprint(a) == fingerprint(b)

    def test_constructor_independent(self):
        rows = [(1, "x"), (2, "y")]
        from_rows = Relation.from_rows(["a", "b"], rows)
        from_cols = Relation.from_columns(
            {"a": [1, 2], "b": ["x", "y"]})
        assert fingerprint(from_rows) == fingerprint(from_cols)

    def test_encoded_relation_accepted(self):
        relation = make_relation(2, [(1, 2), (3, 4)])
        assert fingerprint(relation) == fingerprint(relation.encode())

    def test_hex_digest_shape(self):
        digest = fingerprint(make_relation(1, [(1,)]))
        assert len(digest) == 64
        int(digest, 16)     # hex


class TestDiscoveryCanonicality:
    """Equal rank structure <=> equal fingerprint: the digest names a
    discovery-equivalence class, not raw bytes."""

    def test_rank_equivalent_values_collide_by_design(self):
        a = make_relation(2, [(1, 10), (2, 20)])
        b = make_relation(2, [(5, 100), (7, 300)])
        assert fingerprint(a) == fingerprint(b)

    def test_value_order_matters(self):
        ascending = make_relation(2, [(1, 1), (2, 2)])
        swapped = make_relation(2, [(1, 2), (2, 1)])
        assert fingerprint(ascending) != fingerprint(swapped)

    def test_schema_names_matter(self):
        rows = [(1, 2), (3, 4)]
        assert (fingerprint(Relation.from_rows(["a", "b"], rows))
                != fingerprint(Relation.from_rows(["a", "c"], rows)))

    def test_column_order_matters(self):
        a = Relation.from_columns({"a": [1, 2], "b": [2, 1]})
        b = Relation.from_columns({"b": [2, 1], "a": [1, 2]})
        # same name set, different attribute order -> different digest
        assert fingerprint(a) != fingerprint(b)

    def test_rows_matter(self):
        base = make_relation(2, [(1, 2), (3, 4)])
        assert fingerprint(base) != fingerprint(
            base.append_rows([(5, 6)]))

    def test_incremental_vs_fresh_encoding_agree(self):
        base = make_relation(2, [(2, 20), (4, 40)])
        base.encode()
        grown = base.append_rows([(3, 30), (1, 10)])
        fresh = make_relation(2, [(2, 20), (4, 40), (3, 30), (1, 10)])
        assert fingerprint(grown) == fingerprint(fresh)


class TestCrossProcessStability:
    def test_stable_across_process_restarts(self):
        """The digest must not depend on PYTHONHASHSEED or any other
        per-process state — a restarted server must key the same
        content identically."""
        relation = make_dataset("flight", n_rows=80, n_attrs=5, seed=9)
        script = (
            "from repro.datasets import make_dataset\n"
            "from repro.relation.fingerprint import fingerprint\n"
            "print(fingerprint(make_dataset('flight', n_rows=80, "
            "n_attrs=5, seed=9)))\n")
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        env["PYTHONHASHSEED"] = "12345"     # differs from this process
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True, env=env)
        assert out.stdout.strip() == fingerprint(relation)
