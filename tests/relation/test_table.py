"""Tests for the in-memory Relation type."""

from __future__ import annotations

import pytest

from repro.errors import DataError, SchemaError
from repro.relation.table import Relation


@pytest.fixture
def small():
    return Relation.from_rows(
        ["a", "b", "c"],
        [(1, "x", 10), (2, "y", 20), (3, "x", 30), (1, "z", 40)])


class TestConstruction:
    def test_from_rows(self, small):
        assert small.n_rows == 4
        assert small.arity == 3
        assert small.row(2) == (3, "x", 30)

    def test_from_columns(self):
        rel = Relation.from_columns({"a": [1, 2], "b": [3, 4]})
        assert rel.names == ("a", "b")
        assert rel.row(1) == (2, 4)

    def test_ragged_rows_rejected(self):
        with pytest.raises(DataError):
            Relation.from_rows(["a", "b"], [(1, 2), (3,)])

    def test_ragged_columns_rejected(self):
        from repro.relation.schema import Schema

        with pytest.raises(DataError):
            Relation(Schema(["a", "b"]), [[1, 2], [3]])

    def test_column_count_mismatch(self):
        from repro.relation.schema import Schema

        with pytest.raises(DataError):
            Relation(Schema(["a", "b"]), [[1]])

    def test_empty_relation(self):
        rel = Relation.from_rows(["a"], [])
        assert rel.n_rows == 0
        assert list(rel.rows()) == []


class TestAccess:
    def test_column_by_name(self, small):
        assert small.column("b") == ["x", "y", "x", "z"]

    def test_column_at(self, small):
        assert small.column_at(0) == [1, 2, 3, 1]
        with pytest.raises(SchemaError):
            small.column_at(9)

    def test_row_out_of_range(self, small):
        with pytest.raises(DataError):
            small.row(99)

    def test_len_and_iter(self, small):
        assert len(small) == 4
        assert len(list(small.rows())) == 4


class TestTransformations:
    def test_project_reorders(self, small):
        projected = small.project(["c", "a"])
        assert projected.names == ("c", "a")
        assert projected.row(0) == (10, 1)

    def test_take(self, small):
        assert small.take(2).n_rows == 2
        assert small.take(100).n_rows == 4
        assert small.take(-1).n_rows == 0

    def test_sample_deterministic(self, small):
        first = small.sample(2, seed=3)
        second = small.sample(2, seed=3)
        assert first == second
        assert first.n_rows == 2

    def test_sample_all(self, small):
        assert small.sample(10, seed=0) is small

    def test_select_and_drop_rows(self, small):
        kept = small.select_rows([0, 3])
        assert [r for r in kept.rows()] == [small.row(0), small.row(3)]
        dropped = small.drop_rows([1, 2])
        assert dropped == kept

    def test_rename(self, small):
        renamed = small.rename({"a": "alpha"})
        assert renamed.names == ("alpha", "b", "c")
        assert renamed.column("alpha") == small.column("a")

    def test_projection_does_not_alias(self, small):
        projected = small.project(["a"])
        projected.column("a")[0] = 999
        assert small.column("a")[0] == 1


class TestEncoding:
    def test_encode_cached(self, small):
        assert small.encode() is small.encode()

    def test_encode_shape(self, small):
        encoded = small.encode()
        assert encoded.n_rows == 4
        assert encoded.arity == 3
        assert encoded.names == ("a", "b", "c")

    def test_pretty_contains_names(self, small):
        text = small.pretty()
        assert "a" in text and "x" in text

    def test_pretty_truncates(self, small):
        text = small.pretty(limit=1)
        assert "more rows" in text
