"""Relation.sort_by / concat — and their interplay with OD semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import ListOD
from repro.core.validation import list_od_holds
from repro.errors import SchemaError
from repro.relation.table import Relation
from tests.conftest import make_relation, small_relations


class TestSortBy:
    def test_basic(self):
        relation = make_relation(2, [(3, "c"), (1, "a"), (2, "b")])
        ordered = relation.sort_by(["c0"])
        assert list(ordered.column("c0")) == [1, 2, 3]

    def test_lexicographic_tie_break(self):
        relation = make_relation(
            2, [(1, 9), (2, 1), (1, 3), (2, 0)])
        ordered = relation.sort_by(["c0", "c1"])
        assert list(ordered.rows()) == [(1, 3), (1, 9), (2, 0), (2, 1)]

    def test_stable(self):
        relation = make_relation(2, [(1, "x"), (1, "y"), (1, "z")])
        ordered = relation.sort_by(["c0"])
        assert list(ordered.column("c1")) == ["x", "y", "z"]

    def test_none_first(self):
        relation = make_relation(1, [(2,), (None,), (1,)])
        assert list(relation.sort_by(["c0"]).column("c0")) == [None, 1, 2]

    def test_empty_spec_identity(self):
        relation = make_relation(2, [(2, 1), (1, 2)])
        assert relation.sort_by([]) == relation

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=3, max_rows=10, max_domain=3),
           st.data())
    def test_od_semantics(self, relation, data):
        """The operational meaning of an OD: X ↦ Y holds iff sorting by
        X leaves the table sorted by Y."""
        names = list(relation.names)
        lhs = list(data.draw(st.permutations(names)))[
            :data.draw(st.integers(1, len(names)))]
        rhs = list(data.draw(st.permutations(names)))[
            :data.draw(st.integers(1, len(names)))]
        od = ListOD(lhs, rhs)
        by_lhs = relation.sort_by(lhs)
        # 'sorted by rhs' for the resorted table, allowing ties:
        resorted = by_lhs.sort_by(rhs)
        y_keys_sorted = [tuple(row) for row in
                         zip(*(resorted.column(n) for n in rhs))]
        y_keys_after_x = [tuple(row) for row in
                          zip(*(by_lhs.column(n) for n in rhs))]

        def encoded(keys):
            from repro.relation.encoding import sort_key

            return [tuple(sort_key(v) for v in key) for key in keys]

        is_sorted = encoded(y_keys_after_x) == sorted(
            encoded(y_keys_after_x))
        if list_od_holds(relation, od):
            assert is_sorted
        # note: the converse needs the FD part too (ties must agree),
        # so only the forward implication is asserted


class TestConcat:
    def test_appends_rows(self):
        first = make_relation(2, [(1, 2)])
        second = make_relation(2, [(3, 4), (5, 6)])
        combined = first.concat(second)
        assert list(combined.rows()) == [(1, 2), (3, 4), (5, 6)]

    def test_schema_mismatch_rejected(self):
        first = make_relation(2, [(1, 2)])
        other = Relation.from_rows(["x", "y"], [(1, 2)])
        with pytest.raises(SchemaError):
            first.concat(other)

    def test_does_not_mutate_inputs(self):
        first = make_relation(1, [(1,)])
        second = make_relation(1, [(2,)])
        combined = first.concat(second)
        assert first.n_rows == 1 and second.n_rows == 1
        assert combined.n_rows == 2

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=6, max_domain=2))
    def test_od_validity_antimonotone_under_concat(self, relation):
        """Adding rows can only break ODs, never create them: anything
        valid on the concatenation is valid on each part."""
        from repro import discover_ods
        from repro.core.validation import CanonicalValidator

        if relation.n_rows == 0:
            return
        doubled = relation.concat(relation.select_rows(
            list(range(relation.n_rows - 1, -1, -1))))
        validator = CanonicalValidator(relation)
        for od in discover_ods(doubled).all_ods:
            assert validator.holds(od), str(od)