"""Tests for dense-rank encoding, including order preservation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relation.encoding import (
    EncodedRelation,
    rank_encode_column,
    sort_key,
)


class TestRankEncode:
    def test_basic(self):
        assert list(rank_encode_column([30, 10, 10, 20])) == [2, 0, 0, 1]

    def test_strings(self):
        assert list(rank_encode_column(["b", "a", "c", "a"])) == [1, 0, 2, 0]

    def test_none_sorts_first(self):
        assert list(rank_encode_column([5, None, 7])) == [1, 0, 2]

    def test_numpy_scalars_order_numerically(self):
        # regression: np.int64 must not fall back to repr ordering
        values = [np.int64(10), np.int64(2), np.int64(1)]
        assert list(rank_encode_column(values)) == [2, 1, 0]

    def test_int_float_equivalence(self):
        assert list(rank_encode_column([1, 1.0, 2])) == [0, 0, 1]

    def test_mixed_types_total_order(self):
        ranks = rank_encode_column([None, "x", 3, True, 2.5])
        # kinds order: None < bool < number < string
        assert ranks[0] < ranks[3] < ranks[4] < ranks[2] < ranks[1]

    def test_empty_column(self):
        assert len(rank_encode_column([])) == 0

    @given(st.lists(st.integers(min_value=-50, max_value=50)))
    def test_order_and_classes_preserved(self, values):
        ranks = rank_encode_column(values)
        for i in range(len(values)):
            for j in range(len(values)):
                assert (values[i] < values[j]) == (ranks[i] < ranks[j])
                assert (values[i] == values[j]) == (ranks[i] == ranks[j])

    @given(st.lists(st.one_of(st.none(), st.integers(-5, 5),
                              st.text(max_size=2), st.booleans()),
                    max_size=15))
    def test_mixed_columns_dense(self, values):
        ranks = rank_encode_column(values)
        if len(values):
            assert set(ranks.tolist()) == set(range(len(set(
                sort_key(v) for v in values))))


class TestSortKey:
    def test_dates_compare_within_type(self):
        import datetime

        early = sort_key(datetime.date(2020, 1, 5))
        late = sort_key(datetime.date(2020, 1, 10))
        assert early < late  # value-based, not repr-based

    def test_bool_is_not_number(self):
        assert sort_key(True)[0] != sort_key(1)[0]


class TestEncodedRelation:
    def test_mismatched_names(self):
        with pytest.raises(ValueError):
            EncodedRelation(["a", "b"], [np.array([1])])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            EncodedRelation(["a", "b"],
                            [np.array([1]), np.array([1, 2])])

    def test_tuple_ranks(self):
        enc = EncodedRelation(
            ["a", "b"], [np.array([0, 1]), np.array([2, 3])])
        assert enc.tuple_ranks(1, [1, 0]) == (3, 1)

    def test_empty(self):
        enc = EncodedRelation([], [])
        assert enc.n_rows == 0
        assert enc.arity == 0
