"""Tests for schemas and bitmask helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relation.schema import (
    Schema,
    bit_count,
    iter_bits,
    mask_of_indices,
)


class TestSchema:
    def test_basic_lookup(self):
        schema = Schema(["a", "b", "c"])
        assert schema.arity == 3
        assert schema.index("b") == 1
        assert schema.name_of(2) == "c"
        assert schema.names == ("a", "b", "c")

    def test_indices_and_names_roundtrip(self):
        schema = Schema(["x", "y", "z"])
        assert schema.indices(["z", "x"]) == (2, 0)
        assert schema.names_of([2, 0]) == ("z", "x")

    def test_unknown_attribute(self):
        schema = Schema(["a"])
        with pytest.raises(SchemaError):
            schema.index("nope")

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_non_string_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", 3])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema([""])

    def test_mask_roundtrip(self):
        schema = Schema(["a", "b", "c", "d"])
        mask = schema.mask_of(["d", "b"])
        assert mask == 0b1010
        assert schema.names_of_mask(mask) == ("b", "d")

    def test_contains_and_iter(self):
        schema = Schema(["a", "b"])
        assert "a" in schema and "q" not in schema
        assert list(schema) == ["a", "b"]

    def test_project(self):
        schema = Schema(["a", "b", "c"])
        assert Schema(["c", "a"]) == schema.project(["c", "a"])
        with pytest.raises(SchemaError):
            schema.project(["zzz"])

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_name_of_out_of_range(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).name_of(5)


class TestBitHelpers:
    @given(st.sets(st.integers(min_value=0, max_value=20)))
    def test_mask_roundtrip(self, indices):
        mask = mask_of_indices(indices)
        assert set(iter_bits(mask)) == indices
        assert bit_count(mask) == len(indices)

    def test_iter_bits_ordered(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_zero_mask(self):
        assert list(iter_bits(0)) == []
        assert bit_count(0) == 0
