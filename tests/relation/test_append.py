"""The append path: incremental re-encoding equals from-scratch."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError, SchemaError
from repro.relation.encoding import ColumnKeys
from repro.relation.table import Relation
from tests.conftest import make_relation


class TestColumnKeys:
    def test_from_values_matches_rank_encode(self):
        ranks, keys = ColumnKeys.from_values([30, 10, 10, 20])
        assert ranks.tolist() == [2, 0, 0, 1]
        assert keys.n_distinct == 3

    def test_extend_remaps_monotonically(self):
        _, keys = ColumnKeys.from_values([10, 30])
        extended, extension = keys.extend([20, 5])
        # old ranks 0 (10) and 1 (30) shift around the inserts
        assert extension.remap.tolist() == [1, 3]
        assert (np.diff(extension.remap) > 0).all()
        assert extended.n_distinct == 4
        # batch ranks in the new domain: 20 -> 2, 5 -> 0
        assert extension.batch_ranks.tolist() == [2, 0]

    def test_gids_are_stable_first_appearance_ids(self):
        _, keys = ColumnKeys.from_values([10, 30])
        extended, extension = keys.extend([20])
        assert extension.batch_gids.tolist() == [2]   # fresh id
        # 10 and 30 keep gids 0 and 1 even though 30's rank moved
        assert extended.gid_sorted.tolist() == [0, 2, 1]

    def test_empty_extension(self):
        _, keys = ColumnKeys.from_values([1, 2])
        extended, extension = keys.extend([])
        assert extension.remap.tolist() == [0, 1]
        assert len(extension.batch_ranks) == 0
        assert extended.n_distinct == 2


class TestAppendRows:
    def test_appends_values(self):
        relation = make_relation(2, [(1, 2)])
        appended = relation.append_rows([(3, 4), (5, 6)])
        assert appended.n_rows == 3
        assert relation.n_rows == 1                 # untouched
        assert appended.row(2) == (5, 6)

    def test_wrong_arity_rejected(self):
        relation = make_relation(2, [(1, 2)])
        with pytest.raises(DataError):
            relation.append_rows([(1, 2, 3)])

    def test_append_relation_checks_schema(self):
        relation = make_relation(2, [(1, 2)])
        other = Relation.from_rows(["x", "y"], [(3, 4)])
        with pytest.raises(SchemaError):
            relation.append_relation(other)
        same = make_relation(2, [(3, 4)])
        assert relation.append_relation(same).n_rows == 2

    def test_carries_encoding_incrementally(self):
        relation = make_relation(2, [(10, 1), (30, 2)])
        relation.encode()
        appended = relation.append_rows([(20, 3)])
        # the appended relation arrives pre-encoded (no re-sort)
        assert appended._encoded is not None
        scratch = make_relation(2, [(10, 1), (30, 2), (20, 3)]).encode()
        for a in range(2):
            assert np.array_equal(appended.encode().column(a),
                                  scratch.column(a))

    def test_without_prior_encode_still_correct(self):
        relation = make_relation(1, [(5,), (7,)])
        appended = relation.append_rows([(6,)])
        assert appended.encode().column(0).tolist() == [0, 2, 1]


cell = st.one_of(st.none(), st.integers(min_value=-3, max_value=3),
                 st.sampled_from(["a", "b", "c"]),
                 st.floats(min_value=-2, max_value=2,
                           allow_nan=False, width=16))


@st.composite
def append_case(draw):
    n_cols = draw(st.integers(min_value=1, max_value=3))
    row = st.tuples(*([cell] * n_cols))
    rows = draw(st.lists(row, min_size=0, max_size=8))
    batches = draw(st.lists(st.lists(row, min_size=0, max_size=5),
                            min_size=1, max_size=3))
    return n_cols, rows, batches


class TestIncrementalEncodingProperty:
    @settings(max_examples=80, deadline=None)
    @given(append_case())
    def test_equals_from_scratch(self, case):
        n_cols, rows, batches = case
        current = make_relation(n_cols, rows)
        current.encode()
        all_rows = list(rows)
        for batch in batches:
            current = current.append_rows(batch)
            all_rows.extend(batch)
            scratch = make_relation(n_cols, all_rows).encode()
            incremental = current.encode()
            for a in range(n_cols):
                assert np.array_equal(incremental.column(a),
                                      scratch.column(a))


class TestBranchedAppends:
    """Several appends branching from one snapshot must each stay
    correct (the gid table is shared; sorted dictionaries are not)."""

    def test_double_append_from_same_snapshot(self):
        relation = make_relation(1, [(1,), (2,)])
        relation.encode()
        first = relation.append_rows([(5,)])
        second = relation.append_rows([(5,)])     # same branch point
        assert first.encode().column(0).tolist() == [0, 1, 2]
        assert second.encode().column(0).tolist() == [0, 1, 2]

    def test_diverging_branches(self):
        relation = make_relation(1, [(10,), (30,)])
        relation.encode()
        left = relation.append_rows([(20,)])
        right = relation.append_rows([(40,), (20,)])
        assert left.encode().column(0).tolist() == [0, 2, 1]
        assert right.encode().column(0).tolist() == [0, 2, 3, 1]
        # and branches keep extending independently
        left2 = left.append_rows([(40,)])
        assert left2.encode().column(0).tolist() == [0, 2, 1, 3]

    def test_interleaved_branch_extensions(self):
        relation = make_relation(1, [(1,), (9,)])
        relation.encode()
        a1 = relation.append_rows([(5,)])         # sibling mints a gid
        b1 = relation.append_rows([(7,)])
        b2 = b1.append_rows([(5,)])               # key named by sibling
        assert a1.encode().column(0).tolist() == [0, 2, 1]
        assert b2.encode().column(0).tolist() == [0, 3, 2, 1]


class TestExoticValueTypes:
    def test_append_of_non_comparable_values(self):
        class Tag:
            def __init__(self, name):
                self.name = name

            def __eq__(self, other):
                return isinstance(other, Tag) and other.name == self.name

            def __hash__(self):
                return hash(self.name)

            def __repr__(self):
                return f"Tag({self.name!r})"

        rows = [(Tag("x"),), (Tag("y"),)]
        relation = make_relation(1, rows)
        relation.encode()
        appended = relation.append_rows([(Tag("z"),), (Tag("x"),)])
        scratch = make_relation(
            1, rows + [(Tag("z"),), (Tag("x"),)]).encode()
        assert np.array_equal(appended.encode().column(0),
                              scratch.column(0))
