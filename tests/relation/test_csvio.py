"""Tests for CSV loading, writing and type inference."""

from __future__ import annotations

import pytest

from repro.errors import DataError
from repro.relation.csvio import (
    infer_value,
    read_csv,
    read_csv_text,
    write_csv,
)
from repro.relation.table import Relation


class TestInferValue:
    @pytest.mark.parametrize("text,expected", [
        ("", None),
        ("42", 42),
        ("-3", -3),
        ("2.5", 2.5),
        ("1e3", 1000.0),
        ("abc", "abc"),
        ("4x", "4x"),
    ])
    def test_cases(self, text, expected):
        assert infer_value(text) == expected


class TestReadCsvText:
    def test_header_and_types(self):
        rel = read_csv_text("a,b,c\n1,x,2.5\n2,y,\n")
        assert rel.names == ("a", "b", "c")
        assert rel.row(0) == (1, "x", 2.5)
        assert rel.row(1) == (2, "y", None)

    def test_no_header(self):
        rel = read_csv_text("1,2\n3,4\n", has_header=False)
        assert rel.names == ("col0", "col1")
        assert rel.n_rows == 2

    def test_limit(self):
        rel = read_csv_text("a\n1\n2\n3\n", limit=2)
        assert rel.n_rows == 2

    def test_no_type_inference(self):
        rel = read_csv_text("a\n1\n", infer_types=False)
        assert rel.row(0) == ("1",)

    def test_ragged_rejected(self):
        with pytest.raises(DataError):
            read_csv_text("a,b\n1\n")

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            read_csv_text("", has_header=False)

    def test_blank_lines_skipped(self):
        rel = read_csv_text("a\n\n1\n\n2\n")
        assert rel.n_rows == 2

    def test_custom_delimiter(self):
        rel = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert rel.row(0) == (1, 2)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        original = Relation.from_rows(
            ["n", "s", "missing"],
            [(1, "alpha", None), (2, "beta", 7)])
        path = tmp_path / "out.csv"
        write_csv(original, path)
        back = read_csv(path)
        assert back == original

    def test_read_csv_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x,y\n5,6\n")
        rel = read_csv(path)
        assert rel.row(0) == (5, 6)
