"""Differential tests for the vectorized partition kernels.

The flat-layout engine has two code paths per kernel (vectorized, and
a scalar fallback below the ``SMALL_KERNEL_THRESHOLD`` grouped-rows threshold); these
tests pin both against the slow oracles on randomized relations:

* ``StrippedPartition.product``  vs  ``partition_from_columns``
* the swap scan                  vs  per-class scalar scan and the
                                     list-based ``order_compatible``
                                     oracle (Definition 3)
* the split scan                 vs  dict-grouping reference

including the all-singleton (superkey context), single-class, and
empty-relation edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

import repro.core.validation as validation
import repro.partitions.partition as partition_module
from repro.core.od import OrderCompatibility, as_spec
from repro.core.validation import (
    find_split,
    find_swap,
    is_compatible_in_classes,
    is_constant_in_classes,
    order_compatible,
    swap_classes,
)
from repro.partitions.partition import (
    StrippedPartition,
    partition_from_columns,
    value_group_sizes,
)
from tests.conftest import random_relation, small_relations


@pytest.fixture(params=["vectorized", "scalar"])
def force_path(request, monkeypatch):
    """Run the test body under both kernel paths regardless of size."""
    threshold = 0 if request.param == "vectorized" else 10**9
    monkeypatch.setattr(partition_module, "SMALL_KERNEL_THRESHOLD",
                        threshold)
    monkeypatch.setattr(validation, "SMALL_KERNEL_THRESHOLD", threshold)
    return request.param


def _split_halves(encoded):
    split = max(1, encoded.arity // 2)
    return list(range(split)), list(range(split, encoded.arity))


# ----------------------------------------------------------------------
# product vs from-scratch hashing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n_rows", [0, 1, 2, 50, 200])
def test_product_matches_oracle_random(seed, n_rows, force_path):
    relation = random_relation(seed, n_cols=4, n_rows=n_rows, domain=3)
    encoded = relation.encode()
    left_attrs, right_attrs = _split_halves(encoded)
    left = partition_from_columns(encoded, left_attrs)
    right = partition_from_columns(encoded, right_attrs)
    combined = partition_from_columns(encoded, left_attrs + right_attrs)
    assert left.product(right) == combined
    assert right.product(left) == combined


def test_product_all_singletons(force_path):
    """Superkey partitions refine everything to nothing."""
    keys = StrippedPartition.from_ranks(np.arange(64))
    blob = StrippedPartition.single_class(64)
    assert keys.is_superkey()
    assert keys.product(blob).is_superkey()
    assert blob.product(keys).is_superkey()


def test_product_single_class_identity(force_path):
    column = StrippedPartition.from_ranks(
        np.array([0, 1, 0, 1, 2, 2] * 20))
    everything = StrippedPartition.single_class(120)
    assert everything.product(column) == column
    assert column.product(everything) == column


def test_product_empty_relation(force_path):
    empty = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
    assert empty.product(empty).n_rows == 0
    assert empty.product(empty).is_superkey()


# ----------------------------------------------------------------------
# flat layout invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_flat_layout_consistent(seed):
    relation = random_relation(seed, n_cols=3, n_rows=150, domain=4)
    encoded = relation.encode()
    partition = partition_from_columns(encoded, [0, 1])
    assert partition.offsets[0] == 0
    assert partition.offsets[-1] == len(partition.rows)
    assert (partition.class_sizes >= 2).all()
    assert partition.n_grouped_rows == sum(map(len, partition.classes))
    # classes view round-trips the flat arrays
    rebuilt = StrippedPartition(partition.classes, partition.n_rows)
    assert np.array_equal(rebuilt.rows, partition.rows)
    assert np.array_equal(rebuilt.offsets, partition.offsets)
    # class_ids is the inverse expansion
    ids = partition.class_ids()
    for class_id, rows in enumerate(partition.classes):
        assert (ids[partition.offsets[class_id]:
                    partition.offsets[class_id + 1]] == class_id).all()


# ----------------------------------------------------------------------
# swap scan vs scalar scan and the list-based oracle
# ----------------------------------------------------------------------
def _reference_swap_free(column_a, column_b, context):
    """The seed's per-class scalar scan (kept as a test oracle)."""
    for rows in context.classes:
        pairs = sorted(zip(column_a[rows].tolist(),
                           column_b[rows].tolist()))
        if not validation._scan_is_swap_free(pairs):
            return False
    return True


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("n_rows,domain", [(0, 1), (30, 2), (120, 3),
                                           (120, 8), (200, 2)])
def test_swap_scan_matches_scalar_reference(seed, n_rows, domain,
                                            force_path):
    relation = random_relation(seed, n_cols=4, n_rows=n_rows,
                               domain=domain)
    encoded = relation.encode()
    context = partition_from_columns(encoded, [0])
    column_a = encoded.column(1)
    column_b = encoded.column(2)
    expected = _reference_swap_free(column_a, column_b, context)
    assert is_compatible_in_classes(column_a, column_b,
                                    context) == expected
    witness = find_swap(column_a, column_b, context, "c1", "c2")
    assert (witness is None) == expected
    guilty = swap_classes(column_a, column_b, context)
    assert (len(guilty) == 0) == expected
    if witness is not None:
        # the witness really is a swap: equal on context, discordant
        row_s, row_t = witness.row_s, witness.row_t
        assert encoded.column(0)[row_s] == encoded.column(0)[row_t]
        assert column_a[row_s] < column_a[row_t]
        assert column_b[row_s] > column_b[row_t]


@settings(max_examples=60, deadline=None)
@given(small_relations(max_cols=4, max_rows=12, max_domain=2))
def test_swap_scan_matches_list_oracle(relation):
    """Canonical ``X: A ~ B`` == list-level ``XA ~ XB`` (Theorem 5's
    compatibility part), with the list side checked straight from
    Definitions 3/5 by ``order_compatible``."""
    encoded = relation.encode()
    if encoded.arity < 3:
        return
    context_attrs = [0]
    a, b = 1, 2
    context = partition_from_columns(encoded, context_attrs)
    fast = is_compatible_in_classes(
        encoded.column(a), encoded.column(b), context)
    names = encoded.names
    lhs = as_spec([names[0], names[a]])
    rhs = as_spec([names[0], names[b]])
    assert fast == order_compatible(
        encoded, OrderCompatibility(lhs, rhs))


def test_swap_scan_negated_column(force_path):
    """Bidirectional extensions negate rank columns; the banded
    prefix-max must survive negative values."""
    rng = np.random.default_rng(7)
    column_a = rng.integers(0, 50, size=150).astype(np.int64)
    column_b = rng.integers(0, 50, size=150).astype(np.int64)
    context = StrippedPartition.from_ranks(
        rng.integers(0, 3, size=150).astype(np.int64))
    expected = _reference_swap_free(column_a, -column_b, context)
    assert is_compatible_in_classes(column_a, -column_b,
                                    context) == expected


def test_swap_scan_superkey_and_empty(force_path):
    superkey = StrippedPartition.from_ranks(np.arange(100))
    column = np.arange(100)
    assert is_compatible_in_classes(column, column[::-1].copy(), superkey)
    assert find_swap(column, column[::-1].copy(), superkey,
                     "a", "b") is None
    empty = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
    nothing = np.array([], dtype=np.int64)
    assert is_compatible_in_classes(nothing, nothing, empty)


# ----------------------------------------------------------------------
# split scan vs dict-grouping reference
# ----------------------------------------------------------------------
def _reference_constant(column, context):
    return all(len({int(v) for v in column[rows]}) <= 1
               for rows in context.classes)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("n_rows,domain", [(0, 1), (40, 2), (150, 2),
                                           (150, 10)])
def test_split_scan_matches_reference(seed, n_rows, domain):
    relation = random_relation(seed, n_cols=3, n_rows=n_rows,
                               domain=domain)
    encoded = relation.encode()
    context = partition_from_columns(encoded, [0, 1])
    column = encoded.column(2)
    expected = _reference_constant(column, context)
    assert is_constant_in_classes(column, context) == expected
    witness = find_split(column, context, "c2")
    assert (witness is None) == expected
    if witness is not None:
        assert encoded.column(0)[witness.row_s] == \
            encoded.column(0)[witness.row_t]
        assert encoded.column(1)[witness.row_s] == \
            encoded.column(1)[witness.row_t]
        assert column[witness.row_s] != column[witness.row_t]


def test_value_group_sizes_superkey_and_empty():
    superkey = StrippedPartition.from_ranks(np.arange(10))
    sizes, owners = value_group_sizes(np.arange(10), superkey)
    assert len(sizes) == 0 and len(owners) == 0
    empty = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
    sizes, owners = value_group_sizes(np.array([], dtype=np.int64), empty)
    assert len(sizes) == 0 and len(owners) == 0


def test_value_group_sizes_counts():
    context = StrippedPartition([[0, 1, 2], [3, 4]], 6)
    column = np.array([7, 7, 9, 9, 9, 0])
    sizes, owners = value_group_sizes(column, context)
    assert sizes.tolist() == [2, 1, 2]
    assert owners.tolist() == [0, 0, 1]


def test_split_scan_single_class_and_empty():
    everything = StrippedPartition.single_class(80)
    constant = np.zeros(80, dtype=np.int64)
    assert is_constant_in_classes(constant, everything)
    varied = np.arange(80)
    assert not is_constant_in_classes(varied, everything)
    split = find_split(varied, everything, "x")
    assert split is not None and split.row_s != split.row_t
    empty = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
    assert is_constant_in_classes(np.array([], dtype=np.int64), empty)
    assert find_split(np.array([], dtype=np.int64), empty, "x") is None
