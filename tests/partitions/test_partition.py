"""Tests for stripped partitions: construction, product, measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.partitions.partition import (
    StrippedPartition,
    partition_from_columns,
)
from tests.conftest import small_relations


class TestConstruction:
    def test_from_ranks(self):
        partition = StrippedPartition.from_ranks(
            np.array([0, 1, 0, 2, 1, 0]))
        assert partition.canonical_form() == frozenset({
            frozenset({0, 2, 5}), frozenset({1, 4})})
        assert partition.n_rows == 6

    def test_singletons_stripped(self):
        partition = StrippedPartition.from_ranks(np.array([0, 1, 2]))
        assert partition.classes == []
        assert partition.is_superkey()

    def test_single_class(self):
        partition = StrippedPartition.single_class(4)
        assert partition.canonical_form() == frozenset(
            {frozenset({0, 1, 2, 3})})

    def test_single_class_tiny(self):
        assert StrippedPartition.single_class(1).classes == []
        assert StrippedPartition.single_class(0).classes == []

    def test_empty_ranks(self):
        partition = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
        assert partition.n_rows == 0
        assert partition.classes == []


class TestMeasures:
    def test_error(self):
        partition = StrippedPartition([[0, 1, 2], [3, 4]], 7)
        assert partition.n_classes == 2
        assert partition.n_grouped_rows == 5
        assert partition.error == 3  # (3-1) + (2-1)

    def test_with_singletons(self):
        partition = StrippedPartition([[1, 3]], 4)
        full = partition.with_singletons()
        assert sorted(map(sorted, full)) == [[0], [1, 3], [2]]


class TestProduct:
    def test_simple(self):
        left = StrippedPartition.from_ranks(np.array([0, 0, 1, 1, 0]))
        right = StrippedPartition.from_ranks(np.array([0, 1, 0, 0, 0]))
        product = left.product(right)
        # X = (a,b): rows (0,0),(0,1),(1,0),(1,0),(0,0)
        assert product.canonical_form() == frozenset({
            frozenset({0, 4}), frozenset({2, 3})})

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            StrippedPartition([], 3).product(StrippedPartition([], 4))

    def test_product_with_empty_context(self):
        column = StrippedPartition.from_ranks(np.array([0, 1, 0]))
        everything = StrippedPartition.single_class(3)
        assert everything.product(column) == column
        assert column.product(everything) == column

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=4, max_rows=12, max_domain=2))
    def test_product_equals_from_scratch(self, relation):
        """Π_Y · Π_Z == Π_{Y∪Z} computed by hashing projections."""
        encoded = relation.encode()
        if encoded.arity < 2:
            return
        split = encoded.arity // 2
        left_attrs = list(range(split))
        right_attrs = list(range(split, encoded.arity))
        left = partition_from_columns(encoded, left_attrs)
        right = partition_from_columns(encoded, right_attrs)
        combined = partition_from_columns(
            encoded, left_attrs + right_attrs)
        assert left.product(right) == combined
        assert right.product(left) == combined  # commutative

    def test_row_to_class_cached(self):
        partition = StrippedPartition([[0, 1]], 3)
        assert partition.row_to_class() is partition.row_to_class()
        assert list(partition.row_to_class()) == [0, 0, -1]


class TestEquality:
    def test_class_order_irrelevant(self):
        first = StrippedPartition([[0, 1], [2, 3]], 4)
        second = StrippedPartition([[3, 2], [1, 0]], 4)
        assert first == second

    def test_different_n_rows(self):
        assert StrippedPartition([[0, 1]], 2) != StrippedPartition(
            [[0, 1]], 3)


class TestZeroRowRelations:
    """A 0-row relation (e.g. a header-only CSV) flows through every
    partition entry point without erroring."""

    def test_from_ranks_empty(self):
        partition = StrippedPartition.from_ranks(
            np.array([], dtype=np.int64))
        assert partition.n_rows == 0
        assert partition.n_classes == 0
        assert partition.error == 0
        assert partition.is_superkey()

    def test_single_class_zero_rows(self):
        partition = StrippedPartition.single_class(0)
        assert partition.n_rows == 0
        assert partition.classes == []

    def test_product_of_empty_partitions(self):
        left = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
        right = StrippedPartition.from_ranks(np.array([], dtype=np.int64))
        assert left.product(right).n_rows == 0

    def test_for_attribute_on_empty_relation(self):
        from repro.relation.table import Relation

        encoded = Relation.from_rows(["a", "b"], []).encode()
        partition = StrippedPartition.for_attribute(encoded, 0)
        assert partition.n_rows == 0 and partition.is_superkey()
