"""Tests for sorted partitions (τ) and the bucket swap check."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitions.sorted_partition import (
    SortedPartition,
    swap_free_buckets,
)


class TestSortedPartition:
    def test_from_ranks(self):
        tau = SortedPartition.from_ranks(np.array([2, 0, 1, 0]))
        assert tau.buckets == [[1, 3], [2], [0]]
        assert tau.n_buckets == 3

    def test_rank_of_inverse(self):
        ranks = np.array([2, 0, 1, 0, 2])
        tau = SortedPartition.from_ranks(ranks)
        assert list(tau.rank_of()) == list(ranks)

    def test_restrict_orders_by_value(self):
        tau = SortedPartition.from_ranks(np.array([3, 1, 2, 1, 0]))
        assert tau.restrict([0, 1, 3]) == [[1, 3], [0]]

    def test_empty(self):
        tau = SortedPartition.from_ranks(np.array([], dtype=np.int64))
        assert tau.buckets == []

    def test_rank_of_memoized(self):
        tau = SortedPartition.from_ranks(np.array([2, 0, 1, 0, 2]))
        assert tau.rank_of() is tau.rank_of()

    def test_rank_of_does_not_alias_input_column(self):
        column = np.array([2, 0, 1, 0, 2])
        tau = SortedPartition.from_ranks(column)
        assert tau.rank_of() is not column
        assert not np.shares_memory(tau.rank_of(), column)

    def test_rank_of_result_is_read_only(self):
        # the memo is shared across calls; writes would corrupt restrict
        tau = SortedPartition.from_ranks(np.array([1, 1, 0, 0]))
        with np.testing.assert_raises(ValueError):
            tau.rank_of()[0] = 99
        assert tau.restrict([0, 1, 2, 3]) == [[2, 3], [0, 1]]
        scattered = SortedPartition([[1], [0]], 2)
        with np.testing.assert_raises(ValueError):
            scattered.rank_of()[0] = 5

    def test_rank_of_memoized_from_buckets(self):
        tau = SortedPartition([[1, 3], [2], [0]], 4)
        first = tau.rank_of()
        assert first is tau.rank_of()
        assert list(first) == [2, 0, 1, 0]

    def test_restrict_row_order_within_bucket(self):
        # rows keep the order they appear in the eq_class argument
        tau = SortedPartition.from_ranks(np.array([1, 1, 1, 0]))
        assert tau.restrict([2, 0, 1, 3]) == [[3], [2, 0, 1]]

    def test_restrict_empty_class(self):
        tau = SortedPartition.from_ranks(np.array([0, 1]))
        assert tau.restrict([]) == []


class TestSwapFreeBuckets:
    def test_no_swap(self):
        ranks_b = np.array([0, 1, 1, 2])
        assert swap_free_buckets([[0], [1, 2], [3]], ranks_b)

    def test_swap_detected(self):
        ranks_b = np.array([2, 1, 0])
        assert not swap_free_buckets([[0], [1], [2]], ranks_b)

    def test_ties_within_bucket_allowed(self):
        # equal A values never form a swap no matter what B does
        ranks_b = np.array([5, 0, 7])
        assert swap_free_buckets([[0, 1, 2]], ranks_b)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=12))
    def test_agrees_with_pairwise_definition(self, pairs):
        """Bucket scan == pairwise swap definition (Definition 5)."""
        ranks_a = np.array([a for a, _ in pairs])
        ranks_b = np.array([b for _, b in pairs])
        tau = SortedPartition.from_ranks(ranks_a)
        buckets = tau.restrict(range(len(pairs)))
        via_scan = swap_free_buckets(buckets, ranks_b)
        via_pairs = not any(
            ranks_a[i] < ranks_a[j] and ranks_b[i] > ranks_b[j]
            for i in range(len(pairs)) for j in range(len(pairs)))
        assert via_scan == via_pairs
