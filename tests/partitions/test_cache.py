"""Tests for the memoizing partition cache."""

from __future__ import annotations

from hypothesis import given, settings

from repro.partitions.cache import PartitionCache
from repro.partitions.partition import partition_from_columns
from repro.relation.schema import iter_bits
from tests.conftest import make_relation, small_relations


class TestPartitionCache:
    def test_empty_mask(self):
        rel = make_relation(2, [(1, 2), (3, 4), (1, 2)])
        cache = PartitionCache(rel.encode())
        empty = cache.get(0)
        assert empty.canonical_form() == frozenset(
            {frozenset({0, 1, 2})})

    def test_memoized(self):
        rel = make_relation(2, [(1, 2), (1, 3)])
        cache = PartitionCache(rel.encode())
        assert cache.get(0b11) is cache.get(0b11)

    def test_get_attrs(self):
        rel = make_relation(3, [(1, 2, 3), (1, 2, 4)])
        cache = PartitionCache(rel.encode())
        assert cache.get_attrs([0, 1]) == cache.get(0b011)

    def test_preload_singletons(self):
        rel = make_relation(3, [(1, 2, 3)])
        cache = PartitionCache(rel.encode())
        cache.preload_singletons()
        assert len(cache) == 4  # {} plus three singletons

    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_every_mask_matches_reference(self, relation):
        encoded = relation.encode()
        cache = PartitionCache(encoded)
        for mask in range(1 << encoded.arity):
            expected = partition_from_columns(encoded, iter_bits(mask))
            assert cache.get(mask) == expected, f"mask={mask:b}"
