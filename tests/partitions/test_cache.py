"""Tests for the memoizing partition cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.partitions.cache import PartitionCache
from repro.partitions.partition import partition_from_columns
from repro.relation.schema import iter_bits
from tests.conftest import make_relation, random_relation, small_relations


class TestPartitionCache:
    def test_empty_mask(self):
        rel = make_relation(2, [(1, 2), (3, 4), (1, 2)])
        cache = PartitionCache(rel.encode())
        empty = cache.get(0)
        assert empty.canonical_form() == frozenset(
            {frozenset({0, 1, 2})})

    def test_memoized(self):
        rel = make_relation(2, [(1, 2), (1, 3)])
        cache = PartitionCache(rel.encode())
        assert cache.get(0b11) is cache.get(0b11)

    def test_get_attrs(self):
        rel = make_relation(3, [(1, 2, 3), (1, 2, 4)])
        cache = PartitionCache(rel.encode())
        assert cache.get_attrs([0, 1]) == cache.get(0b011)

    def test_preload_singletons(self):
        rel = make_relation(3, [(1, 2, 3)])
        cache = PartitionCache(rel.encode())
        cache.preload_singletons()
        assert len(cache) == 4  # {} plus three singletons

    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_every_mask_matches_reference(self, relation):
        encoded = relation.encode()
        cache = PartitionCache(encoded)
        for mask in range(1 << encoded.arity):
            expected = partition_from_columns(encoded, iter_bits(mask))
            assert cache.get(mask) == expected, f"mask={mask:b}"


class TestLRUMode:
    def _encoded(self, arity=4, n_rows=40, seed=3):
        return random_relation(seed, arity, n_rows, domain=2).encode()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PartitionCache(self._encoded(), max_entries=0)

    def test_bounds_resident_composites(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded, max_entries=2)
        for mask in range(1, 1 << encoded.arity):
            cache.get(mask)
        # pinned: empty mask + arity singletons; composites: <= 2
        assert len(cache) <= 1 + encoded.arity + 2
        assert cache.evictions > 0

    def test_unbounded_default_unchanged(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded)
        for mask in range(1 << encoded.arity):
            cache.get(mask)
        assert cache.evictions == 0
        assert len(cache) == 1 << encoded.arity
        assert cache.get(0b1011) is cache.get(0b1011)

    def test_evicted_masks_recompute_correctly(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded, max_entries=1)
        for mask in range(1 << encoded.arity):
            expected = partition_from_columns(encoded, iter_bits(mask))
            assert cache.get(mask) == expected, f"mask={mask:b}"
        # second sweep hits recomputation, still correct
        for mask in range(1 << encoded.arity):
            expected = partition_from_columns(encoded, iter_bits(mask))
            assert cache.get(mask) == expected, f"mask={mask:b}"

    def test_lru_keeps_recently_used(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded, max_entries=2)
        first = cache.get(0b0011)
        cache.get(0b0101)       # cache: {0011, 0101}
        cache.get(0b0011)       # refresh 0011
        cache.get(0b0110)       # evicts 0101, not 0011
        assert cache.get(0b0011) is first

    def test_counters_bill_consumer_lookups_only(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded)
        cache.get(0b1111)
        # one consumer call == one miss, regardless of the internal
        # sub-mask derivations it triggered
        assert (cache.hits, cache.misses) == (0, 1)
        cache.get(0b1111)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_wide_miss_does_not_flush_hot_working_set(self):
        encoded = self._encoded(arity=5, n_rows=60)
        cache = PartitionCache(encoded, max_entries=3)
        hot_a, hot_b = 0b00011, 0b00101
        cache.get(hot_a)
        cache.get(hot_b)
        cache.get(0b11111)   # derives 3 intermediates + the final mask
        hits_before = cache.hits
        cache.get(hot_a)
        cache.get(hot_b)
        # the hot pair survived the wide derivation: both are hits
        assert cache.hits == hits_before + 2

    def test_internal_reuse_does_not_promote_scaffolding(self):
        encoded = self._encoded(arity=3, n_rows=60)
        cache = PartitionCache(encoded, max_entries=3)
        cache.get(0b011)
        cache.get(0b101)
        cache.get(0b110)     # cold: least recently used of the three
        cache.get(0b011)     # re-touch the hot pair
        cache.get(0b101)
        cache.get(0b111)     # derivation reuses resident 0b110
        hits_before = cache.hits
        cache.get(0b011)
        cache.get(0b101)
        # internal reuse of 0b110 must not have promoted it over the
        # hot pair; the requested 0b111 evicted cold 0b110 instead
        assert cache.hits == hits_before + 2

    def test_at_capacity_intermediates_cause_no_eviction_churn(self):
        encoded = self._encoded(arity=5, n_rows=60)
        cache = PartitionCache(encoded, max_entries=1)
        cache.get(0b00011)
        assert cache.evictions == 0
        cache.get(0b11111)   # 3 intermediates skipped, final evicts 1
        assert cache.evictions == 1
        assert len(cache) == 1 + encoded.arity + 1

    def test_hit_miss_counters(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded, max_entries=4)
        cache.get(0b0011)
        misses_after_first = cache.misses
        cache.get(0b0011)
        cache.get(0b0011)
        assert cache.misses == misses_after_first
        assert cache.hits >= 2
        stats = cache.stats()
        assert stats["max_entries"] == 4
        assert stats["hits"] == cache.hits
        assert stats["misses"] == cache.misses
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert stats["resident"] == len(cache)

    def test_singletons_stay_pinned(self):
        encoded = self._encoded()
        cache = PartitionCache(encoded, max_entries=1)
        singles = [cache.get(1 << a) for a in range(encoded.arity)]
        for mask in range(1 << encoded.arity):
            cache.get(mask)
        for a, single in enumerate(singles):
            assert cache.get(1 << a) is single


class TestCacheHooks:
    """put/peek adoption and the append-path invalidation hooks."""

    def _cache(self, rows=((1, 2), (1, 3), (4, 2))):
        rel = make_relation(2, list(rows))
        return rel.encode(), PartitionCache(rel.encode())

    def test_put_then_get(self):
        encoded, cache = self._cache()
        partition = partition_from_columns(encoded, [0, 1])
        cache.put(0b11, partition)
        assert cache.get(0b11) is partition

    def test_put_pins_singletons(self):
        encoded, cache = self._cache()
        single = partition_from_columns(encoded, [0])
        cache.put(0b01, single)
        bounded = PartitionCache(encoded, max_entries=1)
        bounded.put(0b01, single)
        bounded.put(0b11, partition_from_columns(encoded, [0, 1]))
        bounded.get(0b10)            # derivations churn the store
        assert bounded.get(0b01) is single

    def test_put_respects_lru_bound(self):
        encoded, cache = self._cache()
        bounded = PartitionCache(encoded, max_entries=1)
        first = partition_from_columns(encoded, [0, 1])
        bounded.put(0b11, first)
        bounded.put(0b11, first)     # idempotent, no spurious eviction
        assert bounded.evictions == 0

    def test_put_rejects_wrong_row_count(self):
        encoded, cache = self._cache()
        with pytest.raises(ValueError):
            cache.put(0b11, partition_from_columns(
                make_relation(2, [(1, 2)]).encode(), [0, 1]))

    def test_peek_never_derives(self):
        encoded, cache = self._cache()
        assert cache.peek(0b11) is None
        assert cache.misses == 1
        derived = cache.get(0b11)
        assert cache.peek(0b11) is derived
        assert cache.hits == 1

    def test_invalidate_all(self):
        encoded, cache = self._cache()
        cache.get(0b11)
        cache.get(0b01)
        cache.invalidate()
        assert len(cache) == 1       # only the empty-set pin remains
        # and everything is re-derivable
        assert cache.get(0b11) == partition_from_columns(encoded, [0, 1])

    def test_invalidate_selected_masks(self):
        encoded, cache = self._cache()
        kept = cache.get(0b10)
        cache.get(0b11)
        cache.invalidate([0b11, 0b1000])   # absent masks are ignored
        assert cache.peek(0b11) is None
        assert cache.get(0b10) is kept

    def test_rebase_swaps_relation(self):
        rel = make_relation(2, [(1, 2), (1, 3)])
        cache = PartitionCache(rel.encode())
        cache.get(0b11)
        hits, misses = cache.hits, cache.misses
        grown = rel.append_rows([(1, 2)])
        cache.rebase(grown.encode())
        assert cache.n_rows == 3
        assert cache.hits == hits and cache.misses == misses
        assert cache.get(0b11) == partition_from_columns(
            grown.encode(), [0, 1])
        assert cache.get(0).n_rows == 3
