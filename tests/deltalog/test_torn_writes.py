"""Torn-write fuzz: any mangled log reopens to a clean prefix.

The shared record discipline (``repro.deltalog.records``) promises
that whatever a crash, a partial sector write, or silent bitrot does
to the file's tail, reopening *never raises* and trusts exactly the
longest clean prefix.  These tests mangle real logs — random
truncations anywhere in the file and random bit flips — and assert
the promise for both consumers: the per-dataset :class:`DeltaLog`
and the service :class:`JobJournal`.
"""

from __future__ import annotations

import random

from repro.deltalog import (
    DeltaBatch,
    DeltaLog,
    read_delta_log,
    read_records,
)
from repro.server.journal import JobJournal

N_RECORDS = 12
TRIALS = 40


def build_delta_log(path):
    with DeltaLog(path) as log:
        for i in range(N_RECORDS):
            log.append(DeltaBatch([(1, (i, i * 2)), (-1, (i, i * 2)),
                                   (1, (i, i + 1))]),
                       fp_before=f"fp{i}", fp_after=f"fp{i + 1}")
    return path.read_bytes()


def build_journal(directory):
    with JobJournal(directory) as journal:
        for i in range(N_RECORDS):
            journal.job_submitted(f"job-{i}", "discover", f"fp{i}",
                                  {"timeout": i})
    return (directory / "journal.log").read_bytes()


def truncated(data: bytes, rng: random.Random) -> bytes:
    return data[:rng.randrange(len(data) + 1)]


def bit_flipped(data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randint(1, 3)):
        out[rng.randrange(len(out))] ^= 1 << rng.randrange(8)
    return bytes(out)


def mangle(data: bytes, rng: random.Random) -> bytes:
    kind = rng.random()
    if kind < 0.4:
        return truncated(data, rng)
    if kind < 0.8:
        return bit_flipped(data, rng)
    return bit_flipped(truncated(data, rng), rng)


class TestDeltaLogTornWrites:
    def test_truncation_recovers_prefix_and_appends(self, tmp_path):
        """Pure truncation = the crash shape fsync ordering promises
        to survive: the recovered prefix is exactly the records whose
        final newline made it to disk, and the log is appendable."""
        pristine = build_delta_log(tmp_path / "p.log")
        reference = read_delta_log(tmp_path / "p.log")
        rng = random.Random(0xD1)
        for trial in range(TRIALS):
            path = tmp_path / f"t{trial}.log"
            path.write_bytes(truncated(pristine, rng))
            recovered = read_delta_log(path)
            assert recovered == reference[:len(recovered)]
            with DeltaLog(path) as log:
                next_lsn = log.append(DeltaBatch.inserts([(99, 99)]))
            assert next_lsn == len(recovered) + 1
            replayed = read_delta_log(path)
            assert len(replayed) == next_lsn
            assert replayed[-1].batch.ops == [(1, (99, 99))]

    def test_bit_flips_never_raise(self, tmp_path):
        """Bitrot anywhere in the file: reopen never raises and every
        surviving record is byte-authentic (a prefix of the pristine
        history — the CRC refuses mutated payloads)."""
        pristine = build_delta_log(tmp_path / "p.log")
        reference = read_delta_log(tmp_path / "p.log")
        rng = random.Random(0xD2)
        for trial in range(TRIALS):
            path = tmp_path / f"t{trial}.log"
            path.write_bytes(mangle(pristine, rng))
            recovered = read_delta_log(path)
            assert recovered == reference[:len(recovered)]
            with DeltaLog(path) as log:
                log.append(DeltaBatch.inserts([(1, 1)]))


class TestJournalTornWrites:
    def test_mangled_journal_recovers_clean_prefix(self, tmp_path):
        pristine = build_journal(tmp_path / "pristine")
        reference = read_records(tmp_path / "pristine" / "journal.log")
        rng = random.Random(0xD3)
        for trial in range(TRIALS):
            directory = tmp_path / f"t{trial}"
            directory.mkdir()
            (directory / "journal.log").write_bytes(
                mangle(pristine, rng))
            with JobJournal(directory) as journal:
                state = journal.recover()
                recovered = journal._records
                assert recovered == reference[:len(recovered)]
                assert state.last_lsn == len(recovered)
                # the reopened journal appends past the clean prefix
                journal.job_submitted("job-x", "discover", "fp", {})
            replayed = read_records(directory / "journal.log")
            assert len(replayed) == len(recovered) + 1
            assert replayed[-1]["id"] == "job-x"
