"""DeltaBatch semantics: deterministic, order-sensitive application.

The model's contract is that the live engine and a boot-time replay
resolve every delete to the *same* row occurrence — these tests pin
the occurrence rules (first live base row; LIFO pending cancellation)
and the equivalence of :func:`replay_relation` with sequential
``apply_to``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deltalog import DeltaBatch, replay_relation
from repro.errors import DataError
from repro.relation.table import Relation


def rel(rows):
    return Relation.from_rows(["a", "b"], rows)


class TestConstruction:
    def test_weights_must_be_unit(self):
        with pytest.raises(DataError):
            DeltaBatch([(2, (1, 2))])
        with pytest.raises(DataError):
            DeltaBatch([(0, (1, 2))])

    def test_rows_must_be_sequences_of_scalars(self):
        with pytest.raises(DataError):
            DeltaBatch([(1, "ab")])
        with pytest.raises(DataError):
            DeltaBatch([(1, ([1], 2))])

    def test_arity_checked_when_given(self):
        with pytest.raises(DataError):
            DeltaBatch([(1, (1, 2, 3))], arity=2)

    def test_updates_decompose(self):
        batch = DeltaBatch.updates([((1, 2), (1, 3))])
        assert batch.ops == [(-1, (1, 2)), (1, (1, 3))]
        assert batch.net_row_delta == 0

    def test_from_request_folds_in_order(self):
        batch = DeltaBatch.from_request({
            "ops": [[1, [5, 5]]],
            "inserts": [[3, 3]],
            "deletes": [[1, 1]],
            "updates": [[[2, 2], [4, 4]]],
        })
        assert batch.ops == [
            (1, (5, 5)),                 # explicit ops first
            (-1, (1, 1)),                # then deletes
            (-1, (2, 2)), (1, (4, 4)),   # then updates
            (1, (3, 3)),                 # then inserts
        ]

    def test_from_request_needs_some_ops(self):
        with pytest.raises(DataError):
            DeltaBatch.from_request({})

    def test_dict_round_trip(self):
        batch = DeltaBatch([(1, (1, 2)), (-1, (3, 4))])
        assert DeltaBatch.from_dict(batch.to_dict()).ops == batch.ops


class TestSplit:
    def test_delete_consumes_first_live_occurrence(self):
        relation = rel([(1, 1), (2, 2), (1, 1)])
        deletes, inserts = DeltaBatch.deletes([(1, 1)]).split(relation)
        assert deletes == [0]
        assert inserts == []

    def test_second_delete_takes_second_occurrence(self):
        relation = rel([(1, 1), (2, 2), (1, 1)])
        deletes, _ = DeltaBatch.deletes(
            [(1, 1), (1, 1)]).split(relation)
        assert deletes == [0, 2]

    def test_delete_of_absent_row_raises(self):
        with pytest.raises(DataError):
            DeltaBatch.deletes([(9, 9)]).split(rel([(1, 1)]))

    def test_pending_insert_cancels_lifo(self):
        # +r +r -r: the MOST RECENT pending +r cancels
        batch = DeltaBatch([(1, (7, 7)), (1, (7, 7)), (-1, (7, 7))])
        deletes, inserts = batch.split(rel([(1, 1)]))
        assert deletes == []
        assert inserts == [(7, 7)]

    def test_base_occurrence_outranks_pending(self):
        # -r +r with r in the base = move-to-end, never a cancel
        batch = DeltaBatch([(-1, (1, 1)), (1, (1, 1))])
        deletes, inserts = batch.split(rel([(1, 1), (2, 2)]))
        assert deletes == [0]
        assert inserts == [(1, 1)]

    def test_insert_then_delete_is_noop(self):
        batch = DeltaBatch([(1, (9, 9)), (-1, (9, 9))])
        deletes, inserts = batch.split(rel([(1, 1)]))
        assert deletes == [] and inserts == []

    def test_arity_mismatch_raises(self):
        with pytest.raises(DataError):
            DeltaBatch([(1, (1, 2, 3))]).split(rel([(1, 1)]))


class TestApply:
    def test_apply_is_pure(self):
        relation = rel([(1, 1), (2, 2)])
        out = DeltaBatch.deletes([(1, 1)]).apply_to(relation)
        assert list(relation.rows()) == [(1, 1), (2, 2)]
        assert list(out.rows()) == [(2, 2)]

    def test_move_to_end(self):
        relation = rel([(1, 1), (2, 2)])
        out = DeltaBatch(
            [(-1, (1, 1)), (1, (1, 1))]).apply_to(relation)
        assert list(out.rows()) == [(2, 2), (1, 1)]

    def test_apply_to_empty_relation(self):
        out = DeltaBatch.inserts([(1, 1)]).apply_to(rel([]))
        assert list(out.rows()) == [(1, 1)]


rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)),
    min_size=0, max_size=8)


@st.composite
def relation_and_batches(draw):
    base = draw(rows_strategy)
    live = list(base)
    batches = []
    for _ in range(draw(st.integers(1, 4))):
        ops = []
        for _ in range(draw(st.integers(1, 5))):
            if live and draw(st.booleans()):
                victim = live.pop(
                    draw(st.integers(0, len(live) - 1)))
                ops.append((-1, victim))
            else:
                row = draw(st.tuples(st.integers(0, 3),
                                     st.integers(0, 3)))
                ops.append((1, row))
                live.append(row)
        batches.append(DeltaBatch(ops))
    return rel(base), batches


class TestReplayEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(relation_and_batches())
    def test_one_pass_replay_matches_sequential_apply(self, case):
        relation, batches = case
        sequential = relation
        for batch in batches:
            sequential = batch.apply_to(sequential)
        fast = replay_relation(relation, batches)
        assert list(fast.rows()) == list(sequential.rows())

    def test_later_batch_can_delete_earlier_batch_insert(self):
        relation = rel([(1, 1)])
        out = replay_relation(relation, [
            DeltaBatch.inserts([(5, 5)]),
            DeltaBatch.deletes([(5, 5)]),
        ])
        assert list(out.rows()) == [(1, 1)]

    def test_replay_raises_like_split(self):
        with pytest.raises(DataError):
            replay_relation(rel([(1, 1)]),
                            [DeltaBatch.deletes([(9, 9)])])
