"""DeltaLog durability: LSN continuity, replay, reopen semantics."""

from __future__ import annotations

import pytest

from repro.deltalog import (
    DeltaBatch,
    DeltaLog,
    DeltaLogError,
    delta_log_path,
    read_delta_log,
)
from repro.deltalog.records import encode_record


def batch(n):
    return DeltaBatch.inserts([(n, n)])


class TestAppendReplay:
    def test_lsns_start_at_one_and_increase(self, tmp_path):
        with DeltaLog(tmp_path / "d.log") as log:
            assert log.append(batch(1)) == 1
            assert log.append(batch(2)) == 2
            assert log.last_lsn == 2

    def test_records_round_trip_with_fingerprints(self, tmp_path):
        path = tmp_path / "d.log"
        with DeltaLog(path) as log:
            log.append(DeltaBatch([(1, (1, 2)), (-1, (3, 4))]),
                       fp_before="aa", fp_after="bb")
        (record,) = read_delta_log(path)
        assert record.lsn == 1
        assert record.batch.ops == [(1, (1, 2)), (-1, (3, 4))]
        assert record.fp_before == "aa"
        assert record.fp_after == "bb"

    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_delta_log(tmp_path / "never.log") == []

    def test_reopen_continues_the_lsn_sequence(self, tmp_path):
        path = tmp_path / "d.log"
        with DeltaLog(path) as log:
            log.append(batch(1))
        with DeltaLog(path) as log:
            assert log.last_lsn == 1
            assert log.append(batch(2)) == 2
        assert [r.lsn for r in read_delta_log(path)] == [1, 2]

    def test_closed_log_refuses_appends(self, tmp_path):
        log = DeltaLog(tmp_path / "d.log")
        log.close()
        with pytest.raises(DeltaLogError):
            log.append(batch(1))

    def test_unserializable_batch_fails_cleanly(self, tmp_path):
        with DeltaLog(tmp_path / "d.log") as log:
            bad = DeltaBatch([(1, (object(),))])
            with pytest.raises(DeltaLogError):
                log.append(bad)
            # the failed append consumed no LSN
            assert log.last_lsn == 0
            assert log.append(batch(1)) == 1

    def test_records_method_matches_reader(self, tmp_path):
        with DeltaLog(tmp_path / "d.log") as log:
            log.append(batch(1))
            log.append(batch(2))
            assert [r.lsn for r in log.records()] == [1, 2]


class TestTrustBoundary:
    def test_non_delta_record_ends_the_prefix(self, tmp_path):
        path = tmp_path / "d.log"
        with DeltaLog(path) as log:
            log.append(batch(1))
        with open(path, "ab") as handle:
            handle.write(encode_record(2, {"type": "mystery"}))
            handle.write(encode_record(
                3, {"type": "delta", "ops": [[1, [9, 9]]]}))
        # the foreign record ends trust; the valid delta after it is
        # NOT replayed (same rule as a torn line)
        assert [r.lsn for r in read_delta_log(path)] == [1]

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "d.log"
        with DeltaLog(path) as log:
            log.append(batch(1))
            log.append(batch(2))
        whole = path.read_bytes()
        path.write_bytes(whole[:-3])            # tear the last record
        with DeltaLog(path) as log:
            assert log.last_lsn == 1
            assert log.append(batch(3)) == 2    # reuses the torn slot
        assert [r.lsn for r in read_delta_log(path)] == [1, 2]

    def test_path_helper_shape(self, tmp_path):
        path = delta_log_path(tmp_path, "abc123")
        assert path == tmp_path / "deltalog" / "abc123.log"
