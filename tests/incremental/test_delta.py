"""Delta kernels: CSR batch merges and stable-id group trackers agree
with from-scratch grouping on arbitrary append streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incremental.delta import DeltaPartition, GroupTracker
from repro.partitions.partition import (
    StrippedPartition,
    merge_batch,
    partition_from_columns,
)
from repro.relation.schema import iter_bits
from repro.relation.table import Relation


def make_relation(columns):
    names = [f"c{i}" for i in range(len(columns))]
    return Relation.from_columns(dict(zip(names, columns)))


# ----------------------------------------------------------------------
# merge_batch (the CSR splice kernel)
# ----------------------------------------------------------------------
class TestMergeBatch:
    def test_join_and_new_class(self):
        old = StrippedPartition([[0, 1], [2, 3, 4]], 6)
        merged, grew = merge_batch(
            old, 9, np.array([6]), np.array([0]), [[7, 8]])
        assert merged.classes == [[0, 1, 6], [2, 3, 4], [7, 8]]
        assert list(grew) == [True, False, True]
        assert merged.n_rows == 9

    def test_promoted_singleton_is_a_new_class(self):
        old = StrippedPartition([[0, 1]], 3)       # row 2 is a singleton
        merged, grew = merge_batch(
            old, 5, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            [[2, 3, 4]])
        assert merged.classes == [[0, 1], [2, 3, 4]]
        assert list(grew) == [False, True]

    def test_empty_effect_only_grows_n_rows(self):
        old = StrippedPartition([[0, 1]], 2)
        merged, grew = merge_batch(
            old, 4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            [])
        assert merged.classes == old.classes
        assert merged.n_rows == 4
        assert not grew.any()

    def test_old_class_ids_preserved(self):
        old = StrippedPartition([[0, 1], [2, 3], [4, 5]], 6)
        merged, _ = merge_batch(
            old, 8, np.array([6, 7]), np.array([2, 0]), [])
        assert merged.classes[0] == [0, 1, 7]
        assert merged.classes[1] == [2, 3]
        assert merged.classes[2] == [4, 5, 6]

    def test_rejects_undersized_new_class(self):
        old = StrippedPartition([], 1)
        with pytest.raises(ValueError):
            merge_batch(old, 2, np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64), [[1]])

    def test_rejects_out_of_range_class(self):
        old = StrippedPartition([[0, 1]], 2)
        with pytest.raises(ValueError):
            merge_batch(old, 3, np.array([2]), np.array([5]), [])


# ----------------------------------------------------------------------
# GroupTracker + DeltaPartition vs the from-scratch oracle
# ----------------------------------------------------------------------
def build_family(relation):
    """Trackers and delta partitions for every attribute-set mask."""
    encoded = relation.encode()
    n_cols = relation.arity
    col_gids = [encoded.keys[a].gid_sorted[encoded.ranks[a]]
                if len(encoded.keys[a].gid_sorted)
                else np.empty(0, dtype=np.int64)
                for a in range(n_cols)]
    trackers = {0: GroupTracker.from_gids(
        0, np.zeros(relation.n_rows, dtype=np.int64))}
    masks = sorted(range(1, 2 ** n_cols),
                   key=lambda m: (bin(m).count("1"), m))
    for mask in masks:
        low = mask & -mask
        attribute = low.bit_length() - 1
        if mask == low:
            trackers[mask] = GroupTracker.from_gids(mask,
                                                    col_gids[attribute])
        else:
            trackers[mask] = GroupTracker.combine(
                mask, trackers[mask ^ low], col_gids[attribute])
    deltas = {mask: DeltaPartition(t) for mask, t in trackers.items()}
    return col_gids, trackers, deltas, [0] + masks


def apply_stream(relation, batches):
    """Feed batches through a full tracker family, checking every mask
    against partition_from_columns after every batch."""
    col_gids, trackers, deltas, masks = build_family(relation)
    current = relation
    for batch in batches:
        appended = current.append_rows(batch)
        encoded = appended.encode()
        n_old = current.n_rows
        for a in range(appended.arity):
            col_gids[a] = np.concatenate((
                col_gids[a],
                encoded.keys[a].gid_sorted[encoded.ranks[a][n_old:]]))
        for mask in masks:
            tracker = trackers[mask]
            low = mask & -mask
            attribute = low.bit_length() - 1
            if mask == 0:
                attr_gids = np.zeros(len(batch), dtype=np.int64)
                parent = None
            elif mask == low:
                attr_gids = col_gids[attribute][n_old:]
                parent = None
            else:
                attr_gids = col_gids[attribute][n_old:]
                parent = trackers[mask ^ low]
            effect = tracker.apply_batch(attr_gids, parent)
            deltas[mask].apply(effect)
        current = appended
        for mask in masks:
            oracle = partition_from_columns(encoded, list(iter_bits(mask)))
            tracker = trackers[mask]
            assert tracker.n_classes == oracle.n_classes
            assert tracker.n_grouped_rows == oracle.n_grouped_rows
            assert tracker.error == oracle.error
            assert deltas[mask].partition == oracle
    return trackers, deltas


small_cells = st.integers(min_value=0, max_value=3)


@st.composite
def relation_and_batches(draw):
    n_cols = draw(st.integers(min_value=1, max_value=3))
    row = st.tuples(*([small_cells] * n_cols))
    rows = draw(st.lists(row, min_size=0, max_size=10))
    batches = draw(st.lists(st.lists(row, min_size=0, max_size=5),
                            min_size=1, max_size=4))
    return make_columns(n_cols, rows), batches


def make_columns(n_cols, rows):
    names = [f"c{i}" for i in range(n_cols)]
    return Relation.from_rows(names, rows)


class TestTrackedFamily:
    @settings(max_examples=60, deadline=None)
    @given(relation_and_batches())
    def test_matches_from_scratch_partitions(self, case):
        relation, batches = case
        apply_stream(relation, batches)

    def test_grew_flags_only_touched_classes(self):
        relation = make_relation([[1, 1, 2, 3], [5, 5, 6, 7]])
        col_gids, trackers, deltas, masks = build_family(relation)
        appended = relation.append_rows([(3, 7), (4, 9)])
        encoded = appended.encode()
        for a in range(2):
            col_gids[a] = np.concatenate((
                col_gids[a], encoded.keys[a].gid_sorted[
                    encoded.ranks[a][2 + 2:]]))
        mask = 0b11
        # the pair tracker's parent drops the lowest attribute (c0)
        parent = trackers[0b10]
        parent.apply_batch(col_gids[1][4:], None)
        effect = trackers[mask].apply_batch(col_gids[0][4:], parent)
        deltas[mask].apply(effect)
        grown = dict(deltas[mask].grown_classes())
        # (3, 7) promotes the old singleton row 3; (4, 9) stays alone
        assert len(grown) == 1
        (rows,) = grown.values()
        assert sorted(rows.tolist()) == [3, 4]
        # the untouched (1, 5) class did not grow
        untouched = [c for c, flag in enumerate(deltas[mask].last_grew)
                     if not flag]
        assert untouched

    def test_stable_gids_across_rank_shifts(self):
        # appending a value that sorts *between* existing ones shifts
        # ranks but must not move group ids
        relation = make_relation([[10, 30, 30]])
        col_gids, trackers, deltas, masks = build_family(relation)
        tracker = trackers[0b1]
        gid_of_30 = int(tracker.group_of[1])
        appended = relation.append_rows([(20,)])
        encoded = appended.encode()
        col_gids[0] = np.concatenate((
            col_gids[0], encoded.keys[0].gid_sorted[encoded.ranks[0][3:]]))
        tracker.apply_batch(col_gids[0][3:], None)
        assert int(tracker.group_of[1]) == gid_of_30
        assert int(tracker.group_of[2]) == gid_of_30
