"""General deltas through IncrementalFastOD: byte-identical to
from-scratch FASTOD after arbitrary insert/delete/update sequences,
serial and parallel alike.

The oracle checks ride ``verify_with_oracle=True`` (the engine
asserts its own result against a fresh :class:`FastOD` run after
every batch), so every ``apply_delta`` below is an equivalence
assertion, not just a smoke call.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.deltalog import DeltaBatch
from repro.errors import DataError
from repro.incremental import IncrementalFastOD
from repro.relation.table import Relation
from tests.conftest import make_relation


def od_strings(result):
    return sorted(str(od) for od in result.all_ods)


def random_stream(seed: int, n_steps: int = 6):
    """A seeded (base_rows, [DeltaBatch, ...]) mixed workload."""
    rng = random.Random(seed)
    n_attrs = rng.choice([3, 4])
    base = [tuple(rng.randint(0, 4) for _ in range(n_attrs))
            for _ in range(rng.randint(6, 18))]
    live = list(base)
    batches = []
    for _ in range(n_steps):
        ops = []
        for _ in range(rng.randint(1, 5)):
            roll = rng.random()
            if live and roll < 0.35:
                ops.append((-1, live.pop(rng.randrange(len(live)))))
            elif live and roll < 0.6:
                old = live.pop(rng.randrange(len(live)))
                new = tuple(rng.randint(0, 4) for _ in range(n_attrs))
                ops.extend([(-1, old), (1, new)])
                live.append(new)
            else:
                row = tuple(rng.randint(0, 4) for _ in range(n_attrs))
                ops.append((1, row))
                live.append(row)
        batches.append(DeltaBatch(ops))
    return n_attrs, base, batches


class TestDeltaSemantics:
    def test_delete_report_counts(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 10), (2, 20), (3, 5)]),
            verify_with_oracle=True)
        report = engine.apply_delta(DeltaBatch.deletes([(2, 20)]))
        assert report.n_deleted == 1
        assert report.n_appended == 0
        assert report.n_rows == 2
        assert report.retraversed
        engine.close()

    def test_update_is_delete_plus_insert(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 10), (2, 20)]),
            verify_with_oracle=True)
        report = engine.apply_delta(
            DeltaBatch.updates([((2, 20), (2, 25))]))
        assert report.n_deleted == 1 and report.n_appended == 1
        assert list(engine.relation.rows()) == [(1, 10), (2, 25)]
        engine.close()

    def test_cancelling_batch_is_noop(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 10), (2, 20)]),
            verify_with_oracle=True)
        before = od_strings(engine.result)
        report = engine.apply_delta(
            DeltaBatch([(1, (9, 9)), (-1, (9, 9))]))
        assert report.n_deleted == 0 and report.n_appended == 0
        assert not report.retraversed
        assert od_strings(engine.result) == before
        engine.close()

    def test_delete_of_absent_row_raises_and_leaves_state(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 10), (2, 20)]),
            verify_with_oracle=True)
        before = od_strings(engine.result)
        with pytest.raises(DataError):
            engine.apply_delta(DeltaBatch.deletes([(9, 9)]))
        assert list(engine.relation.rows()) == [(1, 10), (2, 20)]
        assert od_strings(engine.result) == before
        # the engine is still usable after the rejected batch
        engine.apply_delta(DeltaBatch.inserts([(3, 30)]))
        engine.close()

    def test_delete_to_empty_and_regrow(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 10), (2, 20), (3, 5)]),
            verify_with_oracle=True)
        report = engine.apply_delta(
            DeltaBatch.deletes([(1, 10), (2, 20), (3, 5)]))
        assert engine.relation.n_rows == 0
        assert report.n_rows == 0
        engine.apply_delta(DeltaBatch.inserts([(1, 10), (2, 20)]))
        assert engine.relation.n_rows == 2
        engine.close()

    def test_reinsert_identical_row(self):
        rows = [(1, 10), (2, 20), (3, 5)]
        engine = IncrementalFastOD(make_relation(2, rows),
                                   verify_with_oracle=True)
        # -r +r with r resident = move-to-end (never a silent no-op)
        report = engine.apply_delta(
            DeltaBatch([(-1, (2, 20)), (1, (2, 20))]))
        assert report.n_deleted == 1 and report.n_appended == 1
        assert list(engine.relation.rows()) == [
            (1, 10), (3, 5), (2, 20)]
        engine.close()


class TestVerdictMaintenance:
    def test_delete_repromotes_demoted_ocd(self):
        engine = IncrementalFastOD(
            Relation.from_rows(["a", "b"], [(1, 10), (2, 20)]),
            verify_with_oracle=True)
        grown = engine.append([(3, 5)])         # (3,5) swaps a ~ b
        assert "{}: a ~ b" in grown.invalidated
        shrunk = engine.apply_delta(DeltaBatch.deletes([(3, 5)]))
        assert "{}: a ~ b" in shrunk.appeared
        engine.close()

    def test_delete_repromotes_refuted_fd(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 5), (2, 5), (3, 6)]),
            verify_with_oracle=True)
        assert "{}: [] -> c1" not in od_strings(engine.result)
        report = engine.apply_delta(DeltaBatch.deletes([(3, 6)]))
        assert "{}: [] -> c1" in report.appeared
        engine.close()

    def test_true_fds_survive_deletes_without_recheck(self):
        # superkey contexts stay superkeys when rows leave
        engine = IncrementalFastOD(
            make_relation(3, [(1, 2, 3), (4, 5, 6), (7, 8, 9)]),
            verify_with_oracle=True)
        held = set(od_strings(engine.result))
        report = engine.apply_delta(DeltaBatch.deletes([(4, 5, 6)]))
        assert held <= set(od_strings(engine.result)) | set(
            report.invalidated)
        engine.close()


class TestOracleStreams:
    @pytest.mark.parametrize("seed", range(8))
    def test_serial_streams_match_oracle(self, seed):
        n_attrs, base, batches = random_stream(seed)
        engine = IncrementalFastOD(
            make_relation(n_attrs, base), verify_with_oracle=True)
        for batch in batches:
            engine.apply_delta(batch)
        engine.close()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_workers2_streams_byte_identical_to_serial(self, seed):
        n_attrs, base, batches = random_stream(seed)
        histories = []
        for workers in (1, 2):
            config = FastODConfig(
                workers=workers,
                parallel_min_grouped_rows=1 if workers > 1 else None)
            engine = IncrementalFastOD(
                make_relation(n_attrs, base), config,
                verify_with_oracle=True)
            history = []
            for batch in batches:
                engine.apply_delta(batch)
                history.append(od_strings(engine.result))
            engine.close()
            histories.append(history)
        assert histories[0] == histories[1]

    def test_final_state_matches_from_scratch_run(self):
        n_attrs, base, batches = random_stream(99)
        engine = IncrementalFastOD(make_relation(n_attrs, base))
        for batch in batches:
            engine.apply_delta(batch)
        oracle = FastOD(engine.relation, engine._config).run()
        assert od_strings(engine.result) == od_strings(oracle)
        assert engine.result.to_dict()["fds"] == \
            oracle.to_dict()["fds"]
        assert engine.result.to_dict()["ocds"] == \
            oracle.to_dict()["ocds"]
        engine.close()
