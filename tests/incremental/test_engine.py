"""IncrementalFastOD: byte-identical to from-scratch FASTOD after
every appended batch, across configs, datasets and random streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import employees
from repro.datasets.streaming import drifting_stream, stream_batches
from repro.errors import DataError
from repro.incremental import IncrementalFastOD
from repro.relation.table import Relation
from tests.conftest import make_relation


def od_strings(result):
    return sorted(str(od) for od in result.all_ods)


def assert_oracle(engine):
    oracle = FastOD(engine.relation, engine._config).run()
    assert od_strings(engine.result) == od_strings(oracle)


class TestInitialRun:
    def test_matches_fastod_on_employees(self):
        engine = IncrementalFastOD(employees())
        assert od_strings(engine.result) == od_strings(
            FastOD(employees()).run())

    def test_rejects_timeout_config(self):
        with pytest.raises(ValueError):
            IncrementalFastOD(employees(),
                              FastODConfig(timeout_seconds=1.0))

    def test_empty_relation(self):
        relation = Relation.from_rows(["a", "b"], [])
        engine = IncrementalFastOD(relation, verify_with_oracle=True)
        engine.append([(1, 2)])
        engine.append([(1, 3), (2, 3)])
        assert engine.relation.n_rows == 3


class TestAppend:
    def test_swap_invalidates_ocd(self):
        engine = IncrementalFastOD(
            Relation.from_rows(["a", "b"], [(1, 10), (2, 20)]))
        report = engine.append([(3, 5)])
        assert "{}: a ~ b" in report.invalidated
        assert report.retraversed

    def test_split_invalidates_fd_and_cascades(self):
        engine = IncrementalFastOD(
            make_relation(2, [(1, 5), (2, 5)]), verify_with_oracle=True)
        assert "{}: [] -> c1" in od_strings(engine.result)
        report = engine.append([(3, 6)])
        assert "{}: [] -> c1" in report.invalidated

    def test_duplicate_rows_skip_retraversal(self):
        rows = [(1, 10), (2, 20), (2, 20)]
        engine = IncrementalFastOD(make_relation(2, rows),
                                   verify_with_oracle=True)
        report = engine.append([rows[0], rows[1]])
        assert not report.retraversed
        assert not report.invalidated

    def test_empty_batch_is_a_noop(self):
        engine = IncrementalFastOD(make_relation(2, [(1, 2), (3, 4)]))
        before = od_strings(engine.result)
        report = engine.append([])
        assert report.n_appended == 0
        assert od_strings(engine.result) == before

    def test_batch_relation_schema_must_match(self):
        engine = IncrementalFastOD(make_relation(2, [(1, 2)]))
        other = Relation.from_rows(["x", "y"], [(1, 2)])
        with pytest.raises(DataError):
            engine.append(other)

    def test_unseen_values_between_existing_ranks(self):
        # ranks shift but verdicts and state must survive the remap
        engine = IncrementalFastOD(
            make_relation(2, [(10, 100), (30, 300)]),
            verify_with_oracle=True)
        engine.append([(20, 200)])      # lands between both columns
        engine.append([(15, 150)])      # swapless, between again
        assert "{}: c0 ~ c1" in od_strings(engine.result)
        engine.append([(40, 50)])       # now a swap
        assert "{}: c0 ~ c1" not in od_strings(engine.result)

    def test_report_counts_and_totals(self):
        engine = IncrementalFastOD(make_relation(2, [(1, 2), (3, 4)]))
        report = engine.append([(5, 6), (7, 8)])
        assert report.n_appended == 2
        assert report.n_rows == 4
        assert report.batch_index == 1
        assert engine.n_batches == 1
        payload = report.to_dict()
        assert payload["n_rows"] == 4 and payload["n_ods"] > 0


class TestStreamEquivalence:
    """The acceptance property: identical FD/OCD sets after every batch
    on >= 10 append batches of a synthetic stream."""

    @pytest.mark.parametrize("family", ["flight", "ncvoter", "dbtesma"])
    def test_drifting_family_stream(self, family):
        base, batches = drifting_stream(
            family, n_rows=220, n_attrs=6, n_batches=10,
            drift_after=0.4, drift=0.05)
        engine = IncrementalFastOD(base, verify_with_oracle=True)
        invalidated = 0
        for batch in batches:
            invalidated += len(engine.append(batch).invalidated)
        assert engine.relation.n_rows == 220
        # drift must actually have exercised the demotion path
        assert invalidated > 0

    def test_clean_stream_never_retraverses_after_saturation(self):
        base, batches = stream_batches("flight", n_rows=150, n_attrs=5,
                                       n_batches=8)
        engine = IncrementalFastOD(base, verify_with_oracle=True)
        for batch in batches:
            engine.append(batch)

    @pytest.mark.parametrize("config", [
        FastODConfig(minimality_pruning=False, level_pruning=False),
        FastODConfig(max_level=2),
        FastODConfig(key_pruning=False),
    ])
    def test_config_variants(self, config):
        base, batches = drifting_stream(
            "flight", n_rows=120, n_attrs=5, n_batches=6,
            drift_after=0.3, drift=0.05)
        engine = IncrementalFastOD(base, config,
                                   verify_with_oracle=True)
        for batch in batches:
            engine.append(batch)


cells = st.integers(min_value=0, max_value=2)


@st.composite
def stream_case(draw):
    n_cols = draw(st.integers(min_value=1, max_value=3))
    row = st.tuples(*([cells] * n_cols))
    rows = draw(st.lists(row, min_size=0, max_size=8))
    batches = draw(st.lists(st.lists(row, min_size=0, max_size=4),
                            min_size=1, max_size=4))
    return n_cols, rows, batches


class TestRandomizedStreams:
    @settings(max_examples=60, deadline=None)
    @given(stream_case())
    def test_always_identical_to_oracle(self, case):
        n_cols, rows, batches = case
        engine = IncrementalFastOD(make_relation(n_cols, rows),
                                   verify_with_oracle=True)
        for batch in batches:
            engine.append(batch)
        # a final explicit cross-check, independent of the flag
        assert_oracle(engine)
