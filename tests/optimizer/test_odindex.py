"""The OD index: closure queries and list-OD implication."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.core.validation import list_od_holds
from repro.datasets import date_dim
from repro.optimizer import ODIndex
from tests.conftest import make_relation, small_relations


class TestConstruction:
    def test_from_result(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        from repro import discover_ods

        index = ODIndex.from_result(discover_ods(relation))
        assert len(index) > 0

    def test_discover_shortcut(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        index = ODIndex.discover(relation)
        assert index.is_order_compatible(set(), "c0", "c1")

    def test_manual_cover(self):
        index = ODIndex(fds=[CanonicalFD({"a"}, "b")],
                        ocds=[CanonicalOCD(set(), "a", "b")])
        assert index.fds and index.ocds


class TestQueries:
    def setup_method(self):
        self.index = ODIndex(
            fds=[CanonicalFD({"a"}, "b"), CanonicalFD(set(), "k")],
            ocds=[CanonicalOCD(set(), "a", "b")])

    def test_closure(self):
        assert self.index.attribute_closure({"a"}) == {"a", "b", "k"}

    def test_is_constant(self):
        assert self.index.is_constant({"a"}, "b")
        assert self.index.is_constant({"z"}, "k")   # constants everywhere
        assert not self.index.is_constant(set(), "b")

    def test_is_order_compatible(self):
        assert self.index.is_order_compatible(set(), "a", "b")
        assert self.index.is_order_compatible({"z"}, "a", "b")  # Aug-II
        assert self.index.is_order_compatible(set(), "a", "k")  # Propagate

    def test_implies_list_od_two_specs(self):
        assert self.index.implies_list_od(["a"], ["b"])

    def test_implies_order_compatibility(self):
        assert self.index.implies_order_compatibility(
            OrderCompatibility(["a"], ["b"]))

    def test_implies_order_equivalence_needs_both(self):
        index = ODIndex(fds=[CanonicalFD({"a"}, "b")],
                        ocds=[CanonicalOCD(set(), "a", "b")])
        # a -> b implied, but b -> a is not
        assert index.implies_list_od(["a"], ["b"])
        assert not index.implies_order_equivalence(["a"], ["b"])


class TestSoundnessAndCompleteness:
    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_implication_equals_validity_for_discovered_covers(
            self, relation):
        """For an instance-derived cover, implies_list_od(X ↦ Y) must
        agree with the OD actually holding on the instance."""
        from itertools import permutations

        index = ODIndex.discover(relation)
        names = list(relation.names)
        specs = [list(p) for n in (1, 2)
                 for p in permutations(names, min(n, len(names)))]
        for lhs in specs[:6]:
            for rhs in specs[:6]:
                od = ListOD(lhs, rhs)
                assert index.implies_list_od(od) == \
                    list_od_holds(relation, od), str(od)

    def test_tpcds_index(self):
        index = ODIndex.discover(date_dim(400))
        assert index.implies_list_od(["d_date_sk"], ["d_year"])
        assert index.implies_list_od(["d_month"], ["d_month", "d_quarter"])
        assert not index.implies_list_od(["d_year"], ["d_month"])
