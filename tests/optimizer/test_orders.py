"""ORDER BY / GROUP BY simplification and sort elimination."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.od import CanonicalFD, ListOD, OrderSpec
from repro.core.validation import list_od_holds
from repro.datasets import date_dim
from repro.optimizer import (
    ODIndex,
    interesting_orders,
    simplify_group_by,
    simplify_order_by,
    sort_is_redundant,
)
from tests.conftest import make_relation, small_relations


class TestSimplifyOrderBy:
    def setup_method(self):
        self.relation = date_dim(365)  # one calendar year
        self.index = ODIndex.discover(self.relation)

    def test_drops_constant_year(self):
        result = simplify_order_by(
            self.index, ["d_year", "d_month", "d_dom"])
        assert result.simplified == OrderSpec(["d_month", "d_dom"])
        assert result.changed
        assert any("constant" in step for step in result.steps)

    def test_drops_quarter_after_month(self):
        result = simplify_order_by(self.index, ["d_month", "d_quarter"])
        assert result.simplified == OrderSpec(["d_month"])

    def test_drops_repeats(self):
        result = simplify_order_by(self.index, ["d_dom", "d_dom"])
        assert result.simplified == OrderSpec(["d_dom"])
        assert any("Normalization" in step for step in result.steps)

    def test_keeps_independent(self):
        result = simplify_order_by(self.index, ["d_dow", "d_dom"])
        assert not result.changed

    def test_str_shows_arrow(self):
        result = simplify_order_by(self.index, ["d_month", "d_quarter"])
        assert "=>" in str(result)

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_simplification_preserves_semantics(self, relation):
        """Sorting by the simplified list is equivalent to sorting by
        the original: original ↔ simplified must hold on the data."""
        index = ODIndex.discover(relation)
        spec = list(relation.names)
        result = simplify_order_by(index, spec)
        forward = ListOD(result.original, result.simplified)
        assert list_od_holds(relation, forward)
        assert list_od_holds(relation, forward.reversed())


class TestSimplifyGroupBy:
    def test_drops_determined(self):
        index = ODIndex(fds=[CanonicalFD({"month"}, "quarter")])
        result = simplify_group_by(index, ["year", "quarter", "month"])
        assert result.simplified == ("year", "month")
        assert result.changed

    def test_keeps_when_nothing_derivable(self):
        index = ODIndex()
        result = simplify_group_by(index, ["a", "b"])
        assert result.simplified == ("a", "b")
        assert not result.changed

    def test_dedupes(self):
        index = ODIndex()
        result = simplify_group_by(index, ["a", "a", "b"])
        assert result.original == ("a", "b")

    def test_paper_query1_group_by(self):
        index = ODIndex.discover(date_dim(720))
        result = simplify_group_by(
            index, ["d_year", "d_quarter", "d_month"])
        # month determines quarter (within a year-spanning table the
        # month-of-year still fixes the quarter-of-year)
        assert "d_quarter" not in result.simplified
        assert "d_month" in result.simplified


class TestSortElimination:
    def test_index_covers_order(self):
        relation = date_dim(365)
        index = ODIndex.discover(relation)
        assert sort_is_redundant(index, ["d_date_sk"], ["d_month"])
        assert not sort_is_redundant(index, ["d_dom"], ["d_month"])

    def test_clustered_index_example(self, employee_table):
        # Section 2.1: index on yr,sal serves order by yr,bin
        index = ODIndex.discover(employee_table)
        assert sort_is_redundant(index, ["yr", "sal"], ["yr", "bin"])


class TestInterestingOrders:
    def test_equivalent_specs_grouped(self):
        relation = make_relation(2, [(1, 10), (2, 20), (3, 30)])
        index = ODIndex.discover(relation)
        groups = interesting_orders(index, [["c0"], ["c1"], ["c0", "c1"]])
        assert len(groups) == 1

    def test_distinct_specs_kept_apart(self):
        relation = make_relation(2, [(1, 20), (2, 10)])
        index = ODIndex.discover(relation)
        groups = interesting_orders(index, [["c0"], ["c1"]])
        assert len(groups) == 2
