"""Join elimination: legality, plan equivalence, and refusal cases."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import date_dim, web_sales
from repro.optimizer import (
    ODIndex,
    RangePredicate,
    StarQuery,
    compare_plans,
    dimension_key_bounds,
    eliminate_join,
    execute_with_join,
)
from repro.relation.table import Relation


@pytest.fixture(scope="module")
def warehouse():
    dim = date_dim(730)            # 2010-2011
    fact = web_sales(1500, 730)
    index = ODIndex.discover(dim)
    return fact, dim, index


class TestEliminateJoin:
    def test_applies_for_ordered_attribute(self, warehouse):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_year", 2010, 2010))
        outcome = eliminate_join(query, index, dim)
        assert outcome.applied
        assert outcome.key_range is not None
        low, high = outcome.key_range
        assert low <= high
        assert "BETWEEN" in outcome.rewritten_predicate

    def test_refuses_for_unordered_attribute(self, warehouse):
        fact, dim, index = warehouse
        # day-of-week is not ordered by the surrogate key
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_dow", 2, 3))
        outcome = eliminate_join(query, index, dim)
        assert not outcome.applied
        assert "not implied" in outcome.reason

    def test_empty_range(self, warehouse):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_year", 1990, 1991))
        outcome = eliminate_join(query, index, dim)
        assert outcome.applied
        assert outcome.key_range is None


class TestPlanEquivalence:
    @pytest.mark.parametrize("low,high", [
        (2010, 2010), (2011, 2011), (2010, 2011),
    ])
    def test_year_ranges(self, warehouse, low, high):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_year", low, high))
        comparison = compare_plans(fact, dim, query, index)
        assert comparison.elimination.applied
        assert comparison.equivalent
        assert comparison.rewrite_metrics.dim_rows_scanned == 0
        assert comparison.join_metrics.dim_rows_scanned == dim.n_rows

    def test_date_range(self, warehouse):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_date", 20100301, 20100715))
        comparison = compare_plans(fact, dim, query, index)
        assert comparison.elimination.applied
        assert comparison.equivalent

    def test_fallback_keeps_join_result(self, warehouse):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_dow", 2, 3))
        comparison = compare_plans(fact, dim, query, index)
        assert not comparison.elimination.applied
        assert comparison.equivalent  # falls back to the join rows

    def test_savings_summary_renders(self, warehouse):
        fact, dim, index = warehouse
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_year", 2010, 2010))
        comparison = compare_plans(fact, dim, query, index)
        assert "probes" in comparison.savings_summary()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 80), st.integers(0, 80), st.data())
    def test_random_monotone_dimension(self, bound_a, bound_b, data):
        """On any dimension where attr is monotone in key, the rewrite
        must be legal and produce identical results."""
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        n_dim = rng.randint(2, 40)
        keys = sorted(rng.sample(range(1000), n_dim))
        attr = [k // 7 for k in keys]  # monotone non-decreasing
        dim = Relation.from_columns({"key": keys, "attr": attr})
        fact = Relation.from_columns({
            "fk": [rng.choice(keys) for _ in range(60)]})
        index = ODIndex.discover(dim)
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        query = StarQuery("fk", "key", RangePredicate("attr", low, high))
        comparison = compare_plans(fact, dim, query, index)
        assert comparison.elimination.applied
        assert comparison.equivalent


class TestExecutors:
    def test_join_counts_rows(self):
        dim = Relation.from_columns({"key": [1, 2], "attr": [10, 20]})
        fact = Relation.from_columns({"fk": [1, 1, 2, 3]})
        query = StarQuery("fk", "key", RangePredicate("attr", 10, 10))
        rows, metrics = execute_with_join(fact, dim, query)
        assert rows == [0, 1]
        assert metrics.dim_rows_scanned == 2
        assert metrics.fact_rows_scanned == 4

    def test_bounds_none_when_empty(self):
        dim = Relation.from_columns({"key": [1], "attr": [5]})
        query = StarQuery("fk", "key", RangePredicate("attr", 99, 100))
        assert dimension_key_bounds(dim, query) is None
