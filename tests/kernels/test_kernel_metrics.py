"""Per-kernel observability: call/seconds counters by backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.obs import metrics

VALUES = np.array([5, 2, 5, 9], dtype=np.int64)


def _calls(backend):
    return metrics.REGISTRY.value(
        "repro_kernel_calls_total", kernel="densify", backend=backend)


def _seconds(backend):
    return metrics.REGISTRY.value(
        "repro_kernel_seconds_total", kernel="densify", backend=backend)


def test_dispatch_bills_calls_and_seconds_by_backend():
    with kernels.activate("reference"):
        calls_before = _calls("reference")
        seconds_before = _seconds("reference")
        kernels.densify(VALUES)
        kernels.densify(VALUES)
    assert _calls("reference") == calls_before + 2
    assert _seconds("reference") >= seconds_before


def test_all_four_kernel_families_bill():
    from repro.partitions.partition import partition_from_columns
    from tests.conftest import make_relation

    encoded = make_relation(
        3, [(i % 3, i % 2, i % 4) for i in range(40)]).encode()
    context = partition_from_columns(encoded, [0])
    registry = metrics.REGISTRY
    before = {
        kernel: registry.value("repro_kernel_calls_total",
                               kernel=kernel, backend="reference")
        for kernel in ("product", "swap", "split", "densify")
    }
    with kernels.activate("reference"):
        kernels.partition_product(
            context.row_to_class(), context.rows, context.offsets,
            context.class_ids(), context.n_classes)
        kernels.swap_flags(
            encoded.column(1), encoded.column(2), context.rows,
            context.offsets, context.class_ids())
        kernels.split_mismatch(
            encoded.column(1), context.rows, context.offsets,
            context.class_sizes)
        kernels.densify(VALUES)
    for kernel in before:
        assert registry.value(
            "repro_kernel_calls_total", kernel=kernel,
            backend="reference") == before[kernel] + 1, kernel


def test_compiled_backend_bills_its_own_label():
    if not kernels.compiled_available():
        pytest.skip("no C toolchain; compiled backend unavailable")
    before = _calls("compiled")
    with kernels.activate("compiled"):
        kernels.densify(VALUES)
    assert _calls("compiled") == before + 1


def test_billing_short_circuits_when_registry_disabled():
    metrics.set_enabled(False)
    try:
        before = _calls("reference")
        with kernels.activate("reference"):
            kernels.densify(VALUES)  # still computes...
        assert _calls("reference") == before  # ...but bills nothing
    finally:
        metrics.set_enabled(True)
