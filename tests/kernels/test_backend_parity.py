"""Byte-identity parity suite: compiled backend vs the reference.

The reference (NumPy) backend is the semantic definition of every
kernel; the compiled (C/ctypes) backend must reproduce its output *bit
for bit* on adversarial partition shapes — empty, all-singleton
(stripped to nothing), one giant class, interleaved ties — as well as
randomized CSR layouts.  ``swap_desc`` candidates negate a rank
column, so swap parity is also pinned on negated inputs, and densify
parity covers the compiled kernel's sparse-range and negative-value
fallback paths.

Every test here skips cleanly when no C toolchain is available (the
fallback behavior itself is covered by test_backend_selection.py).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.core.fastod import FastOD, FastODConfig
from repro.kernels.reference import ReferenceBackend
from repro.partitions.partition import StrippedPartition
from tests.conftest import random_relation

REFERENCE = ReferenceBackend()

N = 160

#: adversarial rank vectors; each induces a context partition shape
#: with a distinct failure mode (empty CSR, no classes at all, one
#: class spanning everything, classes interleaved row-by-row)
RANKS = {
    "all-singleton": np.arange(N, dtype=np.int64),
    "one-giant": np.zeros(N, dtype=np.int64),
    "interleaved-ties": np.arange(N, dtype=np.int64) % 4,
    "two-block": np.repeat(np.array([0, 1], dtype=np.int64), N // 2),
    "random": np.random.default_rng(3).integers(0, 12, N),
    "empty": np.empty(0, dtype=np.int64),
}


@pytest.fixture(scope="module")
def compiled():
    if not kernels.compiled_available():
        pytest.skip("no C toolchain; compiled backend unavailable")
    return kernels.resolve_backend("compiled")


def _assert_same(got, want, label):
    got = got if isinstance(got, tuple) else (got,)
    want = want if isinstance(want, tuple) else (want,)
    assert len(got) == len(want)
    for got_part, want_part in zip(got, want):
        assert got_part.dtype == want_part.dtype, label
        assert np.array_equal(got_part, want_part), label


@pytest.mark.parametrize("left_name", sorted(RANKS))
@pytest.mark.parametrize("right_name", sorted(RANKS))
def test_product_parity(left_name, right_name, compiled):
    left_ranks, right_ranks = RANKS[left_name], RANKS[right_name]
    if len(left_ranks) != len(right_ranks):
        pytest.skip("operands must share n_rows")
    left = StrippedPartition.from_ranks(left_ranks)
    right = StrippedPartition.from_ranks(right_ranks)
    args = (left.row_to_class(), right.rows, right.offsets,
            right.class_ids(), left.n_classes)
    _assert_same(compiled.partition_product(*args),
                 REFERENCE.partition_product(*args),
                 f"product({left_name}, {right_name})")


@pytest.mark.parametrize("name", sorted(RANKS))
@pytest.mark.parametrize("negate_b", [False, True])
def test_swap_parity(name, negate_b, compiled):
    context = StrippedPartition.from_ranks(RANKS[name])
    rng = np.random.default_rng(7)
    n = context.n_rows
    col_a = rng.integers(0, 9, n)
    col_b = rng.integers(0, 9, n)
    if negate_b:
        col_b = -col_b
    args = (col_a, col_b, context.rows, context.offsets,
            context.class_ids())
    _assert_same(compiled.swap_flags(*args), REFERENCE.swap_flags(*args),
                 f"swap({name}, negate_b={negate_b})")


def test_swap_parity_all_ties(compiled):
    """Constant A within every class: no group boundaries at all."""
    context = StrippedPartition.from_ranks(np.arange(N) % 3)
    col_a = np.zeros(N, dtype=np.int64)
    col_b = np.random.default_rng(5).integers(0, 6, N)
    args = (col_a, col_b, context.rows, context.offsets,
            context.class_ids())
    _assert_same(compiled.swap_flags(*args), REFERENCE.swap_flags(*args),
                 "swap(all-ties)")


@pytest.mark.parametrize("name", sorted(RANKS))
@pytest.mark.parametrize("constant", [False, True])
def test_split_parity(name, constant, compiled):
    context = StrippedPartition.from_ranks(RANKS[name])
    n = context.n_rows
    column = (np.zeros(n, dtype=np.int64) if constant
              else np.random.default_rng(9).integers(0, 5, n))
    args = (column, context.rows, context.offsets, context.class_sizes)
    _assert_same(compiled.split_mismatch(*args),
                 REFERENCE.split_mismatch(*args),
                 f"split({name}, constant={constant})")


@pytest.mark.parametrize("values", [
    np.empty(0, dtype=np.int64),
    np.arange(50, dtype=np.int64),
    np.arange(50, dtype=np.int64)[::-1].copy(),
    np.repeat(np.array([4, 1, 4, 9], dtype=np.int64), 10),
    np.random.default_rng(2).integers(0, 7, 120),
    # negative ranks and a sparse value range force the compiled
    # kernel's np.unique fallback; outputs must still be identical
    np.array([-5, 3, -5, 0, 7], dtype=np.int64),
    np.array([0, 10**12, 5, 10**12], dtype=np.int64),
], ids=["empty", "ascending", "descending", "ties", "random",
        "negative", "sparse-range"])
def test_densify_parity(values, compiled):
    _assert_same(compiled.densify(values), REFERENCE.densify(values),
                 "densify")


def test_discovery_identical_across_backends(compiled):
    """End-to-end: the full FD/OCD sets of a discovery run match
    string-for-string between backends (the benchmark gates the same
    property at workers 0/2/4 on a larger instance)."""
    relation = random_relation(seed=13, n_cols=5, n_rows=400, domain=4)
    results = {}
    for backend in ("reference", "compiled"):
        result = FastOD(
            relation, FastODConfig(kernel_backend=backend)).run()
        results[backend] = (sorted(str(od) for od in result.fds),
                            sorted(str(od) for od in result.ocds))
    assert results["reference"] == results["compiled"]
