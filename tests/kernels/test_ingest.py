"""Zero-copy columnar ingest: arena layout, ownership, publication.

Pins the three properties the pool's zero-copy path depends on:

* every column starts 64-byte aligned in one contiguous buffer, on
  every backing;
* a shared-memory arena's descriptor is the worker pool's block
  descriptor format verbatim (a plain :class:`BlockReader` round-trips
  it);
* arenas are reference counted — the segment is unlinked exactly once,
  when the last adopter releases, and never by a non-owner process.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.kernels.ingest import (
    ALIGN_BYTES,
    ColumnArena,
    arrow_available,
    columns_from_arrow,
)
from repro.parallel.shm import BlockReader
from tests.conftest import make_relation


def _arrays():
    rng = np.random.default_rng(21)
    return {
        0: rng.integers(0, 50, 100),
        1: np.arange(7, dtype=np.int64),
        (2, "r"): np.empty(0, dtype=np.int64),
        3: rng.integers(-5, 5, 33),
    }


def _shm_gone(name):
    return not os.path.exists(os.path.join("/dev/shm", name))


@pytest.mark.parametrize("backing", ["heap", "mmap", "shm"])
def test_build_round_trips_and_aligns(backing):
    arrays = _arrays()
    arena = ColumnArena.build(arrays, n_rows=100, backing=backing)
    arena.acquire()
    try:
        assert arena.arity == len(arrays)
        assert arena.n_rows == 100
        assert arena.nbytes == sum(len(a) for a in arrays.values()) * 8
        for key, array in arrays.items():
            view = arena.column(key)
            assert np.array_equal(view, array)
            assert view.ctypes.data % ALIGN_BYTES == 0
            assert view.dtype == np.int64
        assert set(arena.columns()) == set(arrays)
        # views must not outlive the arena: a live export would keep
        # the segment mapped past the unlink
        del view
    finally:
        arena.release()
    assert arena.closed


def test_unknown_backing_rejected():
    with pytest.raises(ValueError, match="unknown arena backing"):
        ColumnArena.build(_arrays(), n_rows=100, backing="disk")


def test_column_views_are_zero_copy():
    arena = ColumnArena.build(_arrays(), n_rows=100, backing="heap")
    arena.acquire()
    try:
        view = arena.column(0)
        view[0] = 12345
        assert arena.column(0)[0] == 12345  # same buffer, no copy
    finally:
        arena.release()


def test_heap_arena_has_no_descriptor():
    arena = ColumnArena.build(_arrays(), n_rows=100, backing="heap")
    arena.acquire()
    try:
        with pytest.raises(ValueError, match="no shared name"):
            arena.descriptor()
    finally:
        arena.release()


def test_shm_descriptor_is_block_reader_compatible():
    arrays = _arrays()
    arena = ColumnArena.build(arrays, n_rows=100, backing="shm")
    arena.acquire()
    name, layout, n_rows, arity = arena.descriptor()
    assert (n_rows, arity) == (100, len(arrays))
    reader = BlockReader(name)
    try:
        for key, array in arrays.items():
            assert np.array_equal(reader.array(layout, key), array)
    finally:
        reader.close()
    arena.release()
    assert _shm_gone(name)


def test_refcounting_unlinks_once_on_last_release():
    arena = ColumnArena.build(_arrays(), n_rows=100, backing="shm")
    name = arena.name
    arena.acquire()
    arena.acquire()
    arena.release()
    assert not arena.closed
    assert arena.column(1)[0] == 0  # still readable under one ref
    arena.release()
    assert arena.closed
    assert _shm_gone(name)
    with pytest.raises(ValueError, match="closed"):
        arena.column(1)
    with pytest.raises(ValueError, match="closed"):
        arena.acquire()
    arena.release()  # idempotent past zero


def test_non_owner_process_never_unlinks():
    arena = ColumnArena.build(_arrays(), n_rows=100, backing="shm")
    arena.acquire()
    name = arena.name
    # simulate a forked child tearing down its inherited copy
    arena._owner_pid = os.getpid() + 1
    arena.release()
    assert arena.closed
    assert not _shm_gone(name)  # the owner still serves this segment
    # clean up as the real owner would
    reader = BlockReader(name)
    reader._segment.unlink()
    reader.close()
    assert _shm_gone(name)


def test_relation_shared_arena_is_adopted_and_rebuilt():
    relation = make_relation(
        3, [(1, 2, 3), (4, 5, 6), (1, 2, 9), (4, 8, 6)]).encode()
    assert not relation.has_live_arena()
    first = relation.shared_arena()      # returned pre-acquired
    assert relation.has_live_arena()
    assert first.refs == 1
    again = relation.shared_arena()
    assert again is first                # second adopter shares it
    assert first.refs == 2
    for attr in range(relation.arity):
        assert np.array_equal(first.column(attr), relation.column(attr))
    name = first.name
    first.release()
    assert relation.has_live_arena()
    first.release()
    assert not relation.has_live_arena()
    assert _shm_gone(name)
    fresh = relation.shared_arena()      # closed arenas are rebuilt
    assert fresh is not first and not fresh.closed
    fresh.release()


def test_two_pools_share_one_arena_segment():
    from repro.parallel.pool import WorkerPool

    relation = make_relation(
        3, [(i % 4, i % 3, i % 2) for i in range(64)]).encode()
    pool_a = WorkerPool(relation, 2)
    pool_b = WorkerPool(relation, 2)
    try:
        name_a = pool_a._columns_descriptor[0]
        name_b = pool_b._columns_descriptor[0]
        assert name_a == name_b          # one segment, zero re-copies
    finally:
        pool_b.shutdown()
        assert not _shm_gone(name_a)     # pool_a still holds a ref
        pool_a.shutdown()
    assert _shm_gone(name_a)
    assert not relation.has_live_arena()


def test_arrow_gate():
    if arrow_available():  # pragma: no cover - pyarrow not in CI image
        import pyarrow as pa

        table = pa.table({"a": [1, 2, None], "b": ["x", "y", "z"]})
        names, columns = columns_from_arrow(table)
        assert names == ["a", "b"]
        assert columns[0] == [1, 2, None]
    else:
        with pytest.raises(RuntimeError, match="pyarrow is not installed"):
            columns_from_arrow(object())
