"""Backend resolution, activation, thresholds, and forced fallback.

The fallback test breaks the toolchain on purpose (``REPRO_KERNELS_CC``
pointing at a nonexistent binary plus a fresh cache directory — the
supported way to force the no-compiler path) and asserts the resolver
degrades to the reference backend with a single warning instead of
crashing.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import kernels
from repro.kernels import compiled as compiled_module
from repro.kernels import thresholds
from repro.kernels.reference import ReferenceBackend


@pytest.fixture(autouse=True)
def _fresh_globals(monkeypatch):
    """Each test resolves defaults from scratch; process state is
    restored afterwards."""
    monkeypatch.setattr(kernels, "_default", None)
    monkeypatch.setattr(kernels, "_warned_fallback", False)


def test_resolve_reference_and_default():
    assert kernels.resolve_backend("reference").name == "reference"
    assert kernels.resolve_backend(None) is kernels.default_backend()
    assert kernels.resolve_backend("") is kernels.default_backend()


def test_resolve_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.resolve_backend("simd")


def test_env_variable_picks_default(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "reference")
    assert kernels.default_backend().name == "reference"


def test_set_default_backend_returns_resolved_name():
    assert kernels.set_default_backend("reference") == "reference"
    assert kernels.active_backend_name() == "reference"


def test_activation_stack_nests_and_restores():
    base = kernels.active_backend()
    with kernels.activate("reference") as outer:
        assert kernels.active_backend() is outer
        with kernels.activate(ReferenceBackend()) as inner:
            assert kernels.active_backend() is inner
        assert kernels.active_backend() is outer
    assert kernels.active_backend() is base


def test_activate_none_resolves_default():
    kernels.set_default_backend("reference")
    with kernels.activate(None) as backend:
        assert backend.name == "reference"


def test_effective_scalar_threshold_override_wins():
    with kernels.activate("reference"):
        # the canonical module value defers to the backend crossover
        assert kernels.effective_scalar_threshold(
            thresholds.REFERENCE_SCALAR_THRESHOLD) == \
            thresholds.REFERENCE_SCALAR_THRESHOLD
        # a monkeypatched module global (tests force one path with 0 or
        # a huge value) always wins over the backend
        assert kernels.effective_scalar_threshold(0) == 0
        assert kernels.effective_scalar_threshold(10**9) == 10**9


def test_effective_scalar_threshold_compiled_crossover():
    if not kernels.compiled_available():
        pytest.skip("no C toolchain; compiled backend unavailable")
    with kernels.activate("compiled"):
        assert kernels.effective_scalar_threshold(
            thresholds.REFERENCE_SCALAR_THRESHOLD) == \
            thresholds.COMPILED_SCALAR_THRESHOLD


def test_auto_prefers_compiled_when_available():
    if not kernels.compiled_available():
        pytest.skip("no C toolchain; compiled backend unavailable")
    assert kernels.resolve_backend("auto").name == "compiled"


def test_compiled_fallback_when_toolchain_broken(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_KERNELS_CC", str(tmp_path / "no-such-cc"))
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path / "cache"))
    monkeypatch.setattr(compiled_module, "_LIB", None)

    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = kernels.resolve_backend("compiled")
    assert backend.name == "reference"
    # the failed build is memoized: no per-call retry...
    assert compiled_module._LIB is False
    assert not kernels.compiled_available()
    # ...and no second warning
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.resolve_backend("compiled").name == "reference"
        # auto degrades silently by design
        assert kernels.resolve_backend("auto").name == "reference"

    # the degraded backend still computes (dispatch keeps working)
    with kernels.activate("compiled"):
        survivors, dense = kernels.densify(
            np.array([5, 2, 5], dtype=np.int64))
    assert survivors.tolist() == [2, 5]
    assert dense.tolist() == [1, 0, 1]


def test_tier1_env_spelling_matches_docs(monkeypatch):
    """``REPRO_KERNELS=compiled`` must never crash, toolchain or not
    (CI runs the whole suite under it)."""
    monkeypatch.setenv("REPRO_KERNELS", "compiled")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert kernels.default_backend().name in ("compiled", "reference")
