"""Executor protocol: serial/pool equivalence, gating, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.validation import (
    dominance_holds_ranks,
    is_compatible_in_classes,
    is_constant_in_classes,
)
from repro.datasets import employees, make_dataset
from repro.engine import (
    DeadlineBudget,
    PoolExecutor,
    ProductTask,
    SerialExecutor,
    make_executor,
)
from repro.parallel.pool import WorkerPool
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition


@pytest.fixture(scope="module")
def encoded():
    return make_dataset("flight", n_rows=200, n_attrs=5,
                        seed=21).encode()


def all_mask_tasks(encoded, mode):
    arity = encoded.arity
    tasks = []
    for mask in range(1 << arity):
        for a in range(arity):
            if mask & (1 << a):
                continue
            for b in range(arity):
                if b <= a or mask & (1 << b):
                    continue
                tasks.append(((mask, a, b), mask, mode, a, b))
    return tasks


class TestMakeExecutor:
    def test_serial_by_default(self, encoded, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(make_executor(encoded), SerialExecutor)

    def test_env_opts_into_pool(self, encoded, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = make_executor(encoded)
        assert isinstance(executor, PoolExecutor)
        assert executor.workers == 3
        executor.close()

    def test_explicit_workers_beat_injected_pool(self, encoded):
        with WorkerPool(encoded, 2) as pool:
            executor = make_executor(encoded, workers=4, pool=pool)
            assert isinstance(executor, PoolExecutor)
            assert executor.workers == 4
            executor.close()
            assert not pool.closed   # injected pools are the caller's

    def test_one_worker_is_serial_even_with_pool(self, encoded):
        with WorkerPool(encoded, 2) as pool:
            executor = make_executor(encoded, workers=1, pool=pool)
            assert isinstance(executor, SerialExecutor)


class TestSerialPoolEquivalence:
    @pytest.mark.parametrize("mode", ["const", "swap", "swap_desc"])
    def test_validations_agree(self, encoded, mode):
        tasks = all_mask_tasks(encoded, mode)
        budget = DeadlineBudget.unlimited()
        serial, _ = SerialExecutor(encoded).run_validations(
            tasks, budget)
        pooled_executor = PoolExecutor(encoded, 2, min_rows=0)
        try:
            pooled, _ = pooled_executor.run_validations(tasks, budget)
        finally:
            pooled_executor.close()
        assert serial == pooled
        assert len(serial) == len(tasks)

    def test_pointwise_validations_agree(self, encoded):
        arity = encoded.arity
        tasks = []
        for lhs_mask in range(1, 1 << arity):
            for target in range(arity):
                if lhs_mask & (1 << target):
                    continue
                tasks.append(((lhs_mask, target), 0, "pointwise",
                              lhs_mask, target))
        budget = DeadlineBudget.unlimited()
        serial, _ = SerialExecutor(encoded).run_validations(
            tasks, budget)
        pooled_executor = PoolExecutor(encoded, 2, min_rows=0)
        try:
            pooled, _ = pooled_executor.run_validations(tasks, budget)
        finally:
            pooled_executor.close()
        assert serial == pooled
        assert any(serial.values()) and not all(serial.values())

    def test_products_agree(self, encoded):
        cache = PartitionCache(encoded)
        parents = {1 << a: cache.get(1 << a)
                   for a in range(encoded.arity)}
        tasks = [ProductTask((1 << a) | (1 << b), 1 << a, 1 << b)
                 for a in range(encoded.arity)
                 for b in range(a + 1, encoded.arity)]
        budget = DeadlineBudget.unlimited()
        serial, timed = SerialExecutor(encoded).run_products(
            parents, tasks, budget)
        assert not timed
        pooled_executor = PoolExecutor(encoded, 2, min_grouped_rows=0)
        try:
            pooled, timed = pooled_executor.run_products(
                parents, tasks, budget)
        finally:
            pooled_executor.close()
        assert not timed
        assert set(serial) == set(pooled)
        for mask in serial:
            assert np.array_equal(serial[mask].rows, pooled[mask].rows)
            assert np.array_equal(serial[mask].offsets,
                                  pooled[mask].offsets)

    def test_scan_partition_agrees(self, encoded):
        cache = PartitionCache(encoded)
        partition = cache.get(0b1)
        serial = SerialExecutor(encoded)
        pooled_executor = PoolExecutor(encoded, 2, min_grouped_rows=0)
        try:
            for mode, a, b in [("swap", 1, 2), ("const", 3, 0),
                               ("swap_desc", 1, 2)]:
                assert (serial.scan_partition(mode, a, b, partition)
                        == pooled_executor.scan_partition(
                            mode, a, b, partition))
        finally:
            pooled_executor.close()


class TestKernelModes:
    """The serial kernels the modes map onto (oracle checks)."""

    def test_swap_desc_is_negated_right_column(self, encoded):
        context = StrippedPartition.single_class(encoded.n_rows)
        a, b = 0, 1
        budget = DeadlineBudget.unlimited()
        verdicts, _ = SerialExecutor(encoded).run_validations(
            [(0, 0, "swap_desc", a, b)], budget)
        assert verdicts[0] == is_compatible_in_classes(
            encoded.column(a), -encoded.column(b), context)

    def test_const_matches_kernel(self, encoded):
        cache = PartitionCache(encoded)
        budget = DeadlineBudget.unlimited()
        verdicts, _ = SerialExecutor(encoded).run_validations(
            [(0, 0b110, "const", 0, 0)], budget)
        assert verdicts[0] == is_constant_in_classes(
            encoded.column(0), cache.get(0b110))

    def test_pointwise_matches_public_validator(self):
        from repro.extensions import PointwiseOD, pointwise_od_holds

        relation = employees()
        encoded = relation.encode()
        names = encoded.names
        for lhs_mask in range(1, 1 << min(encoded.arity, 4)):
            lhs = [names[i] for i in range(encoded.arity)
                   if lhs_mask & (1 << i)]
            for target in range(encoded.arity):
                if lhs_mask & (1 << target):
                    continue
                od = PointwiseOD(frozenset(lhs),
                                 frozenset({names[target]}))
                assert dominance_holds_ranks(
                    encoded.ranks, lhs_mask, target) \
                    == pointwise_od_holds(relation, od), str(od)


class TestTelemetry:
    def test_serial_counts_tasks(self, encoded):
        executor = SerialExecutor(encoded)
        budget = DeadlineBudget.unlimited()
        executor.run_validations(all_mask_tasks(encoded, "swap")[:5],
                                 budget, phase="wave")
        snap = executor.telemetry.snapshot()
        assert snap["backend"] == "serial"
        assert snap["phases"]["wave"]["tasks"] == 5
        assert snap["phases"]["wave"]["serial_tasks"] == 5
        assert snap["phases"]["wave"]["pool_tasks"] == 0

    def test_pool_records_split(self, encoded):
        executor = PoolExecutor(encoded, 2, min_rows=0)
        budget = DeadlineBudget.unlimited()
        try:
            executor.run_validations(
                all_mask_tasks(encoded, "swap")[:6], budget,
                phase="wave")
            # a single-task batch falls back to the serial twin
            executor.run_validations(
                all_mask_tasks(encoded, "swap")[:1], budget,
                phase="wave")
        finally:
            executor.close()
        snap = executor.telemetry.snapshot()
        assert snap["backend"] == "pool"
        assert snap["workers"] == 2
        assert snap["phases"]["wave"]["pool_tasks"] == 6
        assert snap["phases"]["wave"]["serial_tasks"] == 1
        assert snap["phases"]["wave"]["tasks"] == 7
        assert snap["phases"]["wave"]["dispatches"] == 2

    def test_subthreshold_batches_stay_serial(self, encoded):
        executor = PoolExecutor(encoded, 2,
                                min_rows=encoded.n_rows + 1)
        budget = DeadlineBudget.unlimited()
        try:
            executor.run_validations(
                all_mask_tasks(encoded, "swap")[:6], budget,
                phase="wave")
        finally:
            executor.close()
        snap = executor.telemetry.snapshot()
        assert snap["phases"]["wave"]["pool_tasks"] == 0
        assert snap["phases"]["wave"]["serial_tasks"] == 6


class TestRebase:
    def test_serial_rebase_follows_relation(self):
        first = make_dataset("flight", n_rows=60, n_attrs=4,
                             seed=1).encode()
        second = make_dataset("flight", n_rows=80, n_attrs=4,
                              seed=2).encode()
        executor = SerialExecutor(first)
        budget = DeadlineBudget.unlimited()
        executor.run_validations([(0, 0b11, "swap", 0, 1)], budget)
        executor.rebase(second)
        assert executor.relation is second
        verdicts, _ = executor.run_validations(
            [(0, 0b11, "swap", 0, 1)], budget)
        cache = PartitionCache(second)
        assert verdicts[0] == is_compatible_in_classes(
            second.column(0), second.column(1), cache.get(0b11))
