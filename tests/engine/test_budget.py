"""DeadlineBudget: the one deadline shared by every engine layer."""

from __future__ import annotations

import time

import pytest

from repro.engine import DeadlineBudget


class TestBudgetSemantics:
    def test_unlimited_never_hits(self):
        budget = DeadlineBudget.unlimited()
        assert not budget.bounded
        assert not budget.hit()
        assert budget.remaining() is None

    def test_none_timeout_is_unlimited(self):
        assert not DeadlineBudget(None).bounded

    def test_zero_timeout_hits_immediately(self):
        budget = DeadlineBudget(0.0)
        assert budget.bounded
        assert budget.hit()
        assert budget.remaining() == 0.0

    def test_generous_timeout_does_not_hit(self):
        budget = DeadlineBudget(3600.0)
        assert not budget.hit()
        assert budget.remaining() > 3000.0

    def test_remaining_never_negative(self):
        budget = DeadlineBudget(0.0)
        time.sleep(0.01)
        assert budget.remaining() == 0.0

    def test_elapsed_monotone(self):
        budget = DeadlineBudget(10.0)
        first = budget.elapsed()
        second = budget.elapsed()
        assert 0 <= first <= second

    def test_deadline_is_perf_counter_currency(self):
        """WorkerPool translates perf_counter deadlines to wall time;
        the budget's deadline must be in that clock."""
        budget = DeadlineBudget(5.0)
        assert budget.deadline == pytest.approx(
            time.perf_counter() + 5.0, abs=1.0)


class TestBudgetInEntryPoints:
    def test_fastod_zero_budget_flags_timeout(self):
        from repro.core.fastod import discover_ods
        from repro.datasets import employees

        result = discover_ods(employees(), timeout_seconds=0.0)
        assert result.timed_out

    def test_hybrid_zero_budget_flags_timeout(self):
        from repro.core.hybrid import hybrid_discover
        from repro.datasets import employees

        result = hybrid_discover(employees(), timeout_seconds=0.0)
        assert result.timed_out

    def test_hybrid_unbounded_is_exact(self):
        from repro.core.fastod import discover_ods
        from repro.core.hybrid import hybrid_discover
        from repro.datasets import employees

        exact = discover_ods(employees())
        hybrid = hybrid_discover(employees(), timeout_seconds=None)
        assert exact.same_ods(hybrid)
        assert not hybrid.timed_out

    def test_bidirectional_zero_budget_flags_timeout(self):
        from repro.datasets import employees
        from repro.extensions import discover_bidirectional_ocds

        result = discover_bidirectional_ocds(employees(),
                                             timeout_seconds=0.0)
        assert result.timed_out

    def test_pointwise_zero_budget_flags_timeout(self):
        from repro.datasets import employees
        from repro.extensions import discover_pointwise_ods

        result = discover_pointwise_ods(employees(),
                                        timeout_seconds=0.0)
        assert result.timed_out

    def test_conditional_zero_budget_flags_timeout(self):
        from repro.datasets import employees
        from repro.extensions import discover_conditional_ods

        result = discover_conditional_ods(employees(),
                                          timeout_seconds=0.0)
        assert result.timed_out

    def test_incremental_still_rejects_timeouts(self):
        from repro.core.fastod import FastODConfig
        from repro.datasets import employees
        from repro.incremental import IncrementalFastOD

        with pytest.raises(ValueError):
            IncrementalFastOD(employees(),
                              FastODConfig(timeout_seconds=1.0))
