"""executor_stats: uniform telemetry on every entry point + round-trip."""

from __future__ import annotations

import json

from repro.core.fastod import FastOD, FastODConfig
from repro.core.hybrid import hybrid_discover
from repro.core.serialize import result_from_dict, result_to_dict
from repro.core.validation import CanonicalValidator
from repro.datasets import employees, make_dataset
from repro.incremental import IncrementalFastOD
from repro.violations.detect import ViolationDetector

REQUIRED_KEYS = {"backend", "workers", "peak_residency_bytes", "phases"}


def assert_shape(stats):
    assert stats is not None
    assert REQUIRED_KEYS <= set(stats)
    for phase in stats["phases"].values():
        assert {"tasks", "serial_tasks", "pool_tasks",
                "dispatches", "seconds"} == set(phase)
        assert phase["serial_tasks"] + phase["pool_tasks"] \
            == phase["tasks"]
        assert phase["seconds"] >= 0.0


class TestEntryPointsExposeStats:
    def test_discover(self):
        result = FastOD(employees()).run()
        assert_shape(result.executor_stats)
        # backend follows $REPRO_WORKERS (serial by default)
        assert result.executor_stats["backend"] in ("serial", "pool")
        assert result.executor_stats["phases"]["fd-check"]["tasks"] > 0
        assert result.executor_stats["peak_residency_bytes"] > 0

    def test_discover_pooled_backend(self):
        config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
        result = FastOD(make_dataset("flight", n_rows=200, n_attrs=5,
                                     seed=3), config).run()
        assert_shape(result.executor_stats)
        assert result.executor_stats["backend"] == "pool"
        pooled = sum(p["pool_tasks"]
                     for p in result.executor_stats["phases"].values())
        assert pooled > 0

    def test_hybrid(self):
        result = hybrid_discover(employees())
        assert_shape(result.executor_stats)
        assert result.executor_stats["phases"]["wave"]["tasks"] > 0

    def test_incremental(self):
        engine = IncrementalFastOD(employees())
        try:
            assert_shape(engine.result.executor_stats)
            assert engine.result.executor_stats["phases"][
                "fd-check"]["tasks"] > 0
            assert_shape(engine.executor_stats())
        finally:
            engine.close()

    def test_validator_and_detector(self):
        relation = employees()
        validator = CanonicalValidator(relation.encode())
        try:
            for od in FastOD(relation).run().all_ods:
                validator.holds(od)
            stats = validator.executor_stats()
        finally:
            validator.close()
        assert_shape(stats)
        assert stats["phases"]["class-scan"]["tasks"] > 0

        detector = ViolationDetector(relation)
        try:
            detector.check("{posit}: [] -> bin")
            stats = detector.executor_stats()
        finally:
            detector.close()
        assert_shape(stats)


class TestJsonAndRoundTrip:
    def test_to_dict_carries_executor(self):
        result = FastOD(employees()).run()
        payload = result.to_dict()
        assert payload["executor"] == result.executor_stats
        json.dumps(payload)          # JSON-ready

    def test_serialize_round_trips_executor_stats(self):
        result = FastOD(employees()).run()
        reloaded = result_from_dict(result_to_dict(result))
        assert reloaded.executor_stats == result.executor_stats

    def test_serialize_round_trips_cache_stats(self):
        from repro.partitions.cache import PartitionCache

        relation = employees()
        encoded = relation.encode()
        cache = PartitionCache(encoded)
        result = FastOD(relation, FastODConfig(), cache=cache).run()
        assert result.cache_stats is not None
        reloaded = result_from_dict(result_to_dict(result))
        assert reloaded.cache_stats == result.cache_stats

    def test_cli_discover_json_carries_executor(self, tmp_path, capsys):
        from repro.cli import main
        from repro.relation.csvio import write_csv

        path = tmp_path / "data.csv"
        write_csv(employees(), str(path))
        assert main(["discover", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "executor" in payload
        assert_shape(payload["executor"])
