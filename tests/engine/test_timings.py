"""``timings``: per-phase wall clock on every entry point.

The observability layer's serialization contract: every entry point
that reports ``executor_stats`` also reports ``timings`` (the
distilled per-phase / per-level wall clock), both survive a
serialize → deserialize round-trip byte-identically, and the
executor's task counts agree with the process-wide metrics registry
on the same run.
"""

from __future__ import annotations

import json

from repro.core.fastod import FastOD, FastODConfig
from repro.core.hybrid import hybrid_discover
from repro.core.serialize import result_from_dict, result_to_dict
from repro.core.validation import CanonicalValidator
from repro.datasets import employees, make_dataset
from repro.engine.telemetry import build_timings, total_tasks
from repro.extensions.bidirectional import discover_bidirectional_ocds
from repro.extensions.conditional import discover_conditional_ods
from repro.extensions.pointwise import discover_pointwise_ods
from repro.incremental import IncrementalFastOD
from repro.obs import metrics
from repro.violations.detect import ViolationDetector


def assert_timings_shape(timings, executor_stats, levels=False):
    assert timings is not None
    assert set(timings["phases"]) == set(executor_stats["phases"])
    for phase, seconds in timings["phases"].items():
        assert seconds >= 0.0
        assert seconds == executor_stats["phases"][phase]["seconds"]
    if levels:
        assert timings["levels"]
        for entry in timings["levels"]:
            assert set(entry) == {"level", "seconds"}


def assert_json_exact(payload):
    """JSON round-trips floats exactly (repr-based), so serialized
    timings must come back byte-identical."""
    assert json.loads(json.dumps(payload)) == payload


class TestEntryPointsExposeTimings:
    def test_fastod(self):
        result = FastOD(employees()).run()
        assert_timings_shape(result.timings, result.executor_stats,
                             levels=True)
        assert result.timings["phases"]["fd-check"] > 0.0

    def test_fastod_pooled(self):
        config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
        result = FastOD(make_dataset("flight", n_rows=200, n_attrs=5,
                                     seed=3), config).run()
        assert_timings_shape(result.timings, result.executor_stats,
                             levels=True)

    def test_hybrid(self):
        result = hybrid_discover(employees())
        assert_timings_shape(result.timings, result.executor_stats)
        assert result.timings["phases"]["wave"] > 0.0

    def test_incremental_initial_and_append(self):
        relation = employees()
        engine = IncrementalFastOD(relation)
        try:
            assert_timings_shape(engine.result.timings,
                                 engine.result.executor_stats,
                                 levels=True)
            batch = relation.select_rows(range(relation.n_rows // 2))
            engine.append(batch)
            assert_timings_shape(engine.result.timings,
                                 engine.result.executor_stats)
        finally:
            engine.close()

    def test_validator_and_detector(self):
        relation = employees()
        validator = CanonicalValidator(relation.encode())
        try:
            for od in FastOD(relation).run().all_ods:
                validator.holds(od)
            timings = validator.timings()
            assert timings == build_timings(validator.executor_stats())
        finally:
            validator.close()
        assert timings["phases"]["class-scan"] >= 0.0
        assert_json_exact(timings)

        detector = ViolationDetector(relation)
        try:
            detector.check("{posit}: [] -> bin")
            timings = detector.timings()
            assert timings == build_timings(detector.executor_stats())
        finally:
            detector.close()
        assert_json_exact(timings)

    def test_extensions(self):
        relation = employees()
        for result in (
                discover_bidirectional_ocds(relation),
                discover_conditional_ods(relation),
                discover_pointwise_ods(relation)):
            assert_timings_shape(result.timings,
                                 result.executor_stats)
            assert_json_exact(result.timings)
            assert_json_exact(result.executor_stats)


class TestRoundTrip:
    def entry_points(self):
        relation = employees()
        yield FastOD(relation).run()
        yield hybrid_discover(relation)
        engine = IncrementalFastOD(relation)
        try:
            engine.append(relation.select_rows(range(3)))
            yield engine.result
        finally:
            engine.close()

    def test_serialize_round_trips_byte_identically(self):
        for result in self.entry_points():
            payload = result_to_dict(result)
            reloaded = result_from_dict(payload)
            assert reloaded.timings == result.timings
            assert reloaded.executor_stats == result.executor_stats
            # ... and a second pass through text JSON stays identical
            again = result_from_dict(
                json.loads(json.dumps(payload)))
            assert again.timings == result.timings
            assert again.executor_stats == result.executor_stats

    def test_to_dict_carries_timings(self):
        result = FastOD(employees()).run()
        payload = result.to_dict()
        assert payload["timings"] == result.timings
        json.dumps(payload)


class TestRegistryAgreement:
    def test_total_tasks_matches_registry_counters(self):
        registry = metrics.get_registry()
        tasks_before = registry.total("repro_executor_tasks_total")
        levels_before = registry.value("repro_planner_levels_total")
        result = FastOD(employees()).run()
        tasks_after = registry.total("repro_executor_tasks_total")
        levels_after = registry.value("repro_planner_levels_total")
        assert (tasks_after - tasks_before
                == total_tasks(result.executor_stats))
        assert (levels_after - levels_before
                == len(result.level_stats))

    def test_serial_pool_split_matches_registry(self):
        registry = metrics.get_registry()
        serial_before = registry.total("repro_executor_tasks_total",
                                       mode="serial")
        pool_before = registry.total("repro_executor_tasks_total",
                                     mode="pool")
        config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
        result = FastOD(make_dataset("flight", n_rows=200, n_attrs=5,
                                     seed=3), config).run()
        phases = result.executor_stats["phases"].values()
        assert (registry.total("repro_executor_tasks_total",
                               mode="serial") - serial_before
                == sum(p["serial_tasks"] for p in phases))
        assert (registry.total("repro_executor_tasks_total",
                               mode="pool") - pool_before
                == sum(p["pool_tasks"] for p in phases))
