"""The refactor contract: byte-identical output vs pre-refactor golden
files.

``tests/golden/unified_engine_golden.json`` was generated at commit
1039275 (the last pre-engine tree) by running every entry point —
discover, hybrid, incremental append, validator, detector, and the
three extension sweeps — and recording their FD/OCD string sets.  The
unified planner/executor engine must reproduce all of them exactly, at
every worker count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.core.hybrid import hybrid_discover
from repro.core.parser import parse
from repro.core.validation import CanonicalValidator
from repro.datasets import employees, make_dataset, ncvoter_like
from repro.extensions import (
    discover_bidirectional_ocds,
    discover_conditional_ods,
    discover_pointwise_ods,
)
from repro.incremental import IncrementalFastOD
from repro.relation.table import Relation
from repro.violations.detect import ViolationDetector

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "golden"
     / "unified_engine_golden.json").read_text())

#: 0 resolves to serial; 2 and 4 really shard (thresholds forced to 0).
WORKER_COUNTS = [0, 2, 4]


def od_strings(result):
    return {"fds": sorted(str(od) for od in result.fds),
            "ocds": sorted(str(od) for od in result.ocds)}


def relation_named(name: str) -> Relation:
    if name == "employees":
        return employees()
    if name == "flight":
        return make_dataset("flight", n_rows=400, n_attrs=6, seed=11)
    if name == "ncvoter":
        return make_dataset("ncvoter", n_rows=300, n_attrs=5, seed=5)
    raise KeyError(name)


class TestDiscoverGolden:
    @pytest.mark.parametrize("name", sorted(GOLDEN["discover"]))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_byte_identical(self, name, workers):
        config = FastODConfig(workers=workers,
                              parallel_min_grouped_rows=0)
        result = FastOD(relation_named(name), config).run()
        assert od_strings(result) == GOLDEN["discover"][name]


class TestHybridGolden:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_byte_identical(self, workers):
        relation = make_dataset("flight", n_rows=600, n_attrs=6, seed=3)
        result = hybrid_discover(relation, sample_size=50, seed=1,
                                 workers=workers)
        assert od_strings(result) == GOLDEN["hybrid"]["flight600"]


class TestIncrementalGolden:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_byte_identical_per_batch(self, workers):
        base = make_dataset("flight", n_rows=300, n_attrs=5, seed=2)
        config = FastODConfig(workers=workers,
                              parallel_min_grouped_rows=0)
        engine = IncrementalFastOD(
            Relation.from_rows(base.names, list(base.rows())), config)
        expected = GOLDEN["incremental"]["flight300+3x40"]
        try:
            assert od_strings(engine.result) == expected[0]
            for i in range(3):
                engine.append(list(make_dataset(
                    "flight", n_rows=40, n_attrs=5,
                    seed=100 + i).rows()))
                assert od_strings(engine.result) == expected[i + 1]
        finally:
            engine.close()


class TestValidatorDetectorGolden:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_validator_verdicts(self, workers):
        flight = relation_named("flight")
        validator = CanonicalValidator(flight.encode(), workers=workers)
        try:
            for text, expected in GOLDEN["validator"]["flight"].items():
                assert validator.holds(parse(text)) == expected, text
        finally:
            validator.close()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_detector_reports(self, workers):
        flight = relation_named("flight")
        detector = ViolationDetector(flight, workers=workers)
        try:
            for text, expected in GOLDEN["detector"]["flight"].items():
                report = detector.check(text)
                assert report.holds == expected["holds"], text
                assert report.n_violating_pairs == expected["pairs"]
        finally:
            detector.close()


class TestExtensionsGolden:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_bidirectional(self, workers):
        result = discover_bidirectional_ocds(
            ncvoter_like(150, 8), max_context=1, workers=workers)
        assert sorted(str(o) for o in result.ocds) == \
            GOLDEN["extensions"]["bidirectional_ncvoter"]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_conditional(self, workers):
        rows = [(0, i, i + 100) for i in range(30)]
        rows += [(1, i, -i) for i in range(30)]
        relation = Relation.from_rows(["c0", "c1", "c2"], rows)
        result = discover_conditional_ods(relation, min_support=0.2,
                                          workers=workers)
        assert sorted(str(c) for c in result.ods) == \
            GOLDEN["extensions"]["conditional_partitioned"]

    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("key,factory", [
        ("pointwise_employees", lambda: employees()),
        ("pointwise_flight", lambda: make_dataset(
            "flight", n_rows=120, n_attrs=5, seed=7)),
    ])
    def test_pointwise(self, key, factory, workers):
        result = discover_pointwise_ods(factory(), max_lhs=2,
                                        workers=workers)
        assert sorted(str(o) for o in result.ods) == \
            GOLDEN["extensions"][key]
