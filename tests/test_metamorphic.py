"""Metamorphic properties of discovery.

Transformations with a *known* effect on the set of ODs:

* shuffling rows        -> identical ODs (order of tuples is irrelevant)
* duplicating rows      -> identical ODs (dependencies are pairwise)
* renaming attributes   -> ODs renamed accordingly
* strictly increasing value transform -> identical ODs (only the order
  of values matters, not the values)
* projecting attributes -> every surviving OD over the kept attributes
  still holds (validity is projection-stable; minimality need not be)
"""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro import discover_ods
from repro.core.od import CanonicalFD
from repro.core.validation import CanonicalValidator
from repro.relation.table import Relation
from tests.conftest import small_relations

relations = small_relations(max_cols=4, max_rows=10, max_domain=3)


def _ods_as_strings(result):
    return {str(od) for od in result.all_ods}


class TestRowTransformations:
    @settings(max_examples=60, deadline=None)
    @given(relations, st.randoms(use_true_random=False))
    def test_row_shuffle_invariant(self, relation, rng):
        rows = list(relation.rows())
        rng.shuffle(rows)
        shuffled = Relation.from_rows(relation.names, rows)
        assert _ods_as_strings(discover_ods(relation)) == \
            _ods_as_strings(discover_ods(shuffled))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.randoms(use_true_random=False))
    def test_row_duplication_invariant(self, relation, rng):
        rows = list(relation.rows())
        duplicated = rows + [rng.choice(rows)] * 2 if rows else rows
        doubled = Relation.from_rows(relation.names, duplicated)
        if not rows:
            return
        assert _ods_as_strings(discover_ods(relation)) == \
            _ods_as_strings(discover_ods(doubled))


class TestValueTransformations:
    @settings(max_examples=60, deadline=None)
    @given(relations, st.integers(0, 3))
    def test_strictly_increasing_transform_invariant(
            self, relation, column_index):
        if relation.arity == 0:
            return
        column_index %= relation.arity
        name = relation.names[column_index]
        columns = {n: list(relation.column(n)) for n in relation.names}
        columns[name] = [v * 7 + 3 for v in columns[name]]
        transformed = Relation.from_columns(
            {n: columns[n] for n in relation.names})
        assert _ods_as_strings(discover_ods(relation)) == \
            _ods_as_strings(discover_ods(transformed))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.integers(0, 3))
    def test_decreasing_transform_preserves_fds_only(
            self, relation, column_index):
        """Negating a column keeps every FD (equality unaffected) while
        OCDs may appear/disappear — so we assert exactly the FD half."""
        if relation.arity == 0:
            return
        column_index %= relation.arity
        name = relation.names[column_index]
        columns = {n: list(relation.column(n)) for n in relation.names}
        columns[name] = [-v for v in columns[name]]
        negated = Relation.from_columns(
            {n: columns[n] for n in relation.names})
        before = {str(fd) for fd in discover_ods(relation).fds}
        after = {str(fd) for fd in discover_ods(negated).fds}
        assert before == after


class TestSchemaTransformations:
    @settings(max_examples=60, deadline=None)
    @given(relations)
    def test_rename_maps_ods(self, relation):
        mapping = {name: f"{name}_r" for name in relation.names}
        renamed = relation.rename(mapping)
        original = _ods_as_strings(discover_ods(relation))
        rewritten = set()
        for text in original:
            for old, new in sorted(mapping.items(), reverse=True):
                text = text.replace(old, new)
            rewritten.add(text)
        assert rewritten == _ods_as_strings(discover_ods(renamed))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_projection_preserves_validity(self, relation, data):
        if relation.arity < 2:
            return
        keep = data.draw(st.integers(1, relation.arity - 1))
        kept_names = list(relation.names[:keep])
        projected = relation.project(kept_names)
        validator = CanonicalValidator(projected)
        for od in discover_ods(relation).all_ods:
            involved = set(od.context)
            if isinstance(od, CanonicalFD):
                involved.add(od.attribute)
            else:
                involved |= {od.left, od.right}
            if involved <= set(kept_names):
                assert validator.holds(od), str(od)


class TestColumnOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(relations, st.randoms(use_true_random=False))
    def test_schema_permutation_invariant(self, relation, rng):
        names = list(relation.names)
        rng.shuffle(names)
        permuted = relation.project(names)
        assert _ods_as_strings(discover_ods(relation)) == \
            _ods_as_strings(discover_ods(permuted))
