"""The delta job through the full service stack: WAL-first appends,
catalog re-keying, stale-result invalidation, and boot-time replay.
"""

from __future__ import annotations

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.deltalog import delta_log_path, read_delta_log
from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation
from repro.server.catalog import DatasetCatalog
from repro.server.http import ODService
from repro.server.jobs import JobError, JobScheduler
from repro.server.store import ResultStore

COLUMNS = ["a", "b", "c"]
ROWS = [[1, 10, 5], [2, 20, 5], [3, 30, 6], [4, 40, 6]]


def service(tmp_path, **kwargs):
    kwargs.setdefault("journal_dir", str(tmp_path / "journal"))
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    return ODService(port=0, workers=1, **kwargs)


def register(svc) -> str:
    status, entry = svc.register(
        {"columns": COLUMNS, "rows": ROWS, "name": "t"})
    assert status == 201
    return entry["fingerprint"]


class TestDeltaJob:
    def test_delta_rekeys_and_logs(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            job = svc.delta(fp, {"deletes": [[1, 10, 5]],
                                 "inserts": [[5, 50, 7]]})
            assert job["status"] == "done"
            assert job["lsn"] == 1
            assert job["report"]["n_deleted"] == 1
            assert job["report"]["n_appended"] == 1
            new_fp = job["fingerprint"]
            assert new_fp != fp
            entry = svc.catalog.get(fp)        # forwards resolve
            assert entry.fingerprint == new_fp
            assert entry.root_fingerprint == fp
            assert entry.delta_lsn == 1
            # the WAL has the batch, keyed by the ROOT fingerprint
            records = read_delta_log(delta_log_path(
                tmp_path / "journal", fp))
            assert len(records) == 1
            assert records[0].fp_before == fp
            assert records[0].fp_after == new_fp

    def test_delta_result_matches_direct_run(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            job = svc.delta(fp, {
                "updates": [[[2, 20, 5], [2, 21, 5]]]})
            mutated = Relation.from_rows(
                COLUMNS, [tuple(r) for r in ROWS if r[0] != 2]
                + [(2, 21, 5)])
            direct = FastOD(mutated, FastODConfig()).run().to_dict()
            assert job["result"]["fds"] == direct["fds"]
            assert job["result"]["ocds"] == direct["ocds"]
            assert job["fingerprint"] == fingerprint(mutated)

    def test_stale_results_invalidated_on_rekey(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            assert svc.submit({"kind": "discover", "fingerprint": fp,
                               "wait": True})["status"] == "done"
            config = FastODConfig()
            assert svc.store.get(fp, config) is not None
            disk = (tmp_path / "store" / fp)
            assert disk.is_dir() and list(disk.glob("*.json"))
            new_fp = svc.delta(fp, {"inserts": [[9, 90, 9]]})[
                "fingerprint"]
            # resident AND on-disk copies under the retired key gone
            assert svc.store.get(fp, config) is None
            assert not list(disk.glob("*.json"))
            assert svc.store.get(new_fp, config) is not None

    def test_rejects_empty_making_delta(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            job = svc.delta(fp, {"deletes": ROWS})
            assert job["status"] == "failed"
            assert "empty" in job["error"]
            # nothing was logged for the rejected batch
            assert read_delta_log(delta_log_path(
                tmp_path / "journal", fp)) == []
            assert svc.catalog.get(fp).fingerprint == fp

    def test_rejects_malformed_delta_at_submit(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            with pytest.raises(JobError):
                svc.delta(fp, {})
            with pytest.raises(JobError):
                svc.delta(fp, {"ops": [[2, [1, 2, 3]]]})
            with pytest.raises(JobError):
                svc.delta(fp, {"inserts": [[1, 2]]})   # arity

    def test_absent_row_delete_fails_the_job(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            job = svc.delta(fp, {"deletes": [[9, 9, 9]]})
            assert job["status"] == "failed"
            assert read_delta_log(delta_log_path(
                tmp_path / "journal", fp)) == []


class TestRecovery:
    def test_restart_replays_warm_state(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            first = svc.delta(fp, {
                "deletes": [[1, 10, 5]],
                "updates": [[[2, 20, 5], [2, 22, 5]]]})
            second = svc.delta(first["fingerprint"],
                               {"inserts": [[6, 60, 8]]})
            live_fp = second["fingerprint"]
            fds = second["result"]["fds"]

        with service(tmp_path) as svc:
            assert svc.recovered["datasets"] == 1
            assert svc.recovered["delta_batches"] == 2
            assert svc.recovered["delta_errors"] == 0
            entry = svc.catalog.get(fp)         # root fp forwards
            assert entry.fingerprint == live_fp
            assert entry.delta_lsn == 2
            assert entry.root_fingerprint == fp
            # intermediate fingerprint forwards too
            assert svc.catalog.get(
                first["fingerprint"]).fingerprint == live_fp
            # replayed content answers discovery identically
            job = svc.submit({"kind": "discover",
                              "fingerprint": live_fp, "wait": True})
            assert job["result"]["fds"] == fds
            # and the stream resumes at the next LSN
            resumed = svc.delta(live_fp, {"inserts": [[7, 70, 9]]})
            assert resumed["status"] == "done"
            assert resumed["lsn"] == 3

    def test_fp_mismatch_skips_the_dataset(self, tmp_path):
        with service(tmp_path) as svc:
            fp = register(svc)
            svc.delta(fp, {"inserts": [[5, 50, 7]]})
        # corrupt the replay source: change the WAL's recorded
        # fp_after so the replayed content cannot authenticate
        path = delta_log_path(tmp_path / "journal", fp)
        text = path.read_text(encoding="utf-8")
        assert "fp_after" in text
        import json as _json
        lsn, crc, payload = text.strip().split(" ", 2)
        record = _json.loads(payload)
        record["fp_after"] = "0" * 64
        import zlib
        body = _json.dumps(record, sort_keys=True,
                           separators=(",", ":"))
        crc = f"{zlib.crc32(body.encode('utf-8')) & 0xffffffff:08x}"
        path.write_text(f"{lsn} {crc} {body}\n", encoding="utf-8")
        with service(tmp_path) as svc:
            assert svc.recovered["delta_errors"] == 1
            assert svc.recovered["datasets"] == 0
            assert fp not in svc.catalog

    def test_no_journal_means_no_lsn(self, tmp_path):
        with ODService(port=0, workers=1) as svc:
            fp = register(svc)
            job = svc.delta(fp, {"inserts": [[5, 50, 7]]})
            assert job["status"] == "done"
            assert "lsn" not in job


class TestSchedulerDirect:
    def test_append_rides_the_delta_runner(self, tmp_path):
        catalog = DatasetCatalog()
        store = ResultStore()
        entry = catalog.register(
            Relation.from_rows(COLUMNS, [tuple(r) for r in ROWS]))
        with JobScheduler(catalog, store, workers=1,
                          delta_dir=tmp_path) as scheduler:
            job = scheduler.submit("append", entry.fingerprint,
                                   {"rows": [[5, 50, 7]]})
            job.wait(30.0)
            assert job.status == "done"
            assert job.payload["lsn"] == 1
            # pure-insert deltas land in the same per-dataset WAL
            records = read_delta_log(delta_log_path(
                tmp_path, entry.root_fingerprint))
            assert records[0].batch.ops == [(1, (5, 50, 7))]
        catalog.close()

    def test_rekey_after_append_alias_still_works(self):
        catalog = DatasetCatalog()
        entry = catalog.register(
            Relation.from_rows(COLUMNS, [tuple(r) for r in ROWS]))
        catalog.ensure_incremental(entry.fingerprint, FastODConfig())
        entry.incremental.append([(5, 50, 7)])
        new_fp = catalog.rekey_after_append(entry)
        assert new_fp == fingerprint(entry.incremental.relation)
        catalog.close()
