"""The observability surface of the service: /metrics, /stats,
/jobs/{id}/trace, and the extended /health fields."""

from __future__ import annotations

import urllib.request

import pytest

from repro.server import ODService, ServiceClient, ServiceClientError
from repro.server.http import PROMETHEUS_CONTENT_TYPE


@pytest.fixture(scope="module")
def service():
    with ODService(port=0, workers=1) as running:
        yield running


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


@pytest.fixture(scope="module")
def discovered(service):
    """One cold discover plus one store-served repeat, shared by the
    whole module so counters are guaranteed non-zero."""
    client = ServiceClient(service.url)
    fp = client.register_dataset("flight", n_rows=60, n_attrs=4,
                                 seed=21)["fingerprint"]
    cold = client.discover(fp)
    cached = client.discover(fp)
    assert cold["cached"] is False and cached["cached"] is True
    return {"fingerprint": fp, "cold": cold, "cached": cached}


class TestMetricsEndpoint:
    def test_prometheus_text(self, service, client, discovered):
        request = urllib.request.Request(service.url + "/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            content_type = response.headers.get("Content-Type")
            text = response.read().decode("utf-8")
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert text.endswith("\n")
        # the typed client decodes the same text
        assert client.metrics().startswith("# HELP")
        lines = text.splitlines()
        assert "# TYPE repro_jobs_finished_total counter" in lines
        assert "# TYPE repro_job_seconds histogram" in lines
        assert "# TYPE repro_jobs_queue_depth gauge" in lines

    def test_counters_reflect_traffic(self, client, discovered):
        text = client.metrics()
        families = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            families[name] = float(value)

        def total(prefix):
            return sum(v for k, v in families.items()
                       if k == prefix or k.startswith(prefix + "{"))

        assert total("repro_jobs_submitted_total") >= 2
        assert (families['repro_jobs_finished_total'
                         '{kind="discover",status="done"}'] >= 2)
        # the repeat was served from the result store
        assert (families['repro_store_lookups_total'
                         '{outcome="hit"}'] >= 1)
        assert total("repro_http_requests_total") >= 1
        assert total("repro_executor_tasks_total") >= 1

    def test_cached_rediscover_moves_hit_counter(self, client,
                                                 discovered):
        def store_hits():
            for line in client.metrics().splitlines():
                if line.startswith('repro_store_lookups_total'
                                   '{outcome="hit"}'):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        before = store_hits()
        repeat = client.discover(discovered["fingerprint"])
        assert repeat["cached"] is True
        assert store_hits() == before + 1


class TestStatsEndpoint:
    def test_shape(self, client, discovered):
        stats = client.stats()
        assert stats["uptime_seconds"] > 0
        assert stats["scheduler"]["jobs"].get("done", 0) >= 2
        assert stats["catalog"]["entries"] >= 1
        assert stats["store"]["resident"] >= 1
        snapshot = stats["metrics"]
        finished = snapshot["repro_jobs_finished_total"]
        assert finished["type"] == "counter"
        assert any(v["labels"] == {"kind": "discover",
                                   "status": "done"}
                   for v in finished["values"])
        hist = snapshot["repro_job_seconds"]["values"][0]
        assert hist["count"] >= 1 and "+Inf" in hist["buckets"]


class TestTraceEndpoint:
    def test_run_job_has_span_tree(self, client, discovered):
        payload = client.trace(discovered["cold"]["id"])
        assert payload["status"] == "done"
        spans = payload["spans"]
        names = [s["name"] for s in spans]
        assert names[0] == "job"
        assert "level" in names and "fd-check" in names
        root = spans[0]
        assert root["parent"] == 0
        by_id = {s["id"]: s for s in spans}
        for span in spans[1:]:
            assert span["parent"] in by_id
            assert span["seconds"] >= 0.0
        levels = [s for s in spans if s["name"] == "level"]
        assert all(s["seconds"] >= 0.0 for s in levels)
        assert {s["level"] for s in levels} == set(
            range(1, len(levels) + 1))

    def test_cached_job_has_no_spans(self, client, discovered):
        payload = client.trace(discovered["cached"]["id"])
        assert payload["spans"] == []

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client.trace("job-9999")
        assert caught.value.status == 404


class TestProfileEndpoint:
    def test_cold_job_profile_non_empty(self, client, discovered):
        folded = client.profile(discovered["cold"]["id"])
        assert folded
        for line in folded.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) >= 1
        # the run loop itself is on the coordinator's stack
        assert "jobs:_run_loop" in folded

    def test_cached_job_profile_empty(self, client, discovered):
        # store-served repeats never run, so there is nothing to sample
        assert client.profile(discovered["cached"]["id"]) == ""

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client.profile("job-9999")
        assert caught.value.status == 404


class TestResourceAccounting:
    def test_cold_job_reports_rusage(self, client, discovered):
        job = client.job(discovered["cold"]["id"])
        resources = job["resources"]
        assert resources["cpu_user_seconds"] >= 0.0
        assert resources["cpu_system_seconds"] >= 0.0
        assert resources["max_rss_bytes"] > 0
        coordinator = resources["coordinator"]
        assert coordinator["max_rss_bytes"] > 0
        workers = resources["workers"]
        # the module service runs workers=1 jobs; only shape is
        # guaranteed here, counts are covered by the pool suites
        assert set(workers) >= {"cpu_user_seconds",
                                "cpu_system_seconds",
                                "max_rss_bytes", "processes", "tasks"}
        assert resources["shm_bytes"] >= 0
        assert resources["zero_copy_bytes"] >= 0

    def test_job_trace_id_matches_trace_payload(self, client,
                                                discovered):
        job = client.job(discovered["cold"]["id"])
        payload = client.trace(discovered["cold"]["id"])
        assert job["trace_id"]
        assert payload["trace_id"] == job["trace_id"]

    def test_stats_reports_process_rusage(self, client, discovered):
        resources = client.stats()["resources"]
        assert set(resources) == {"self", "children"}
        assert resources["self"]["max_rss_bytes"] > 0
        assert resources["self"]["cpu_user_seconds"] >= 0.0


class TestHealthExtensions:
    def test_health_reports_usage(self, client, discovered):
        health = client.health()
        assert health["uptime_seconds"] > 0
        assert health["queue_depth"] == 0
        assert health["catalog_resident_bytes"] > 0
        # the module service is memory-only: nothing hits disk
        assert health["store_bytes_written"] == 0

    def test_disk_backed_store_counts_bytes(self, tmp_path):
        with ODService(port=0, workers=1,
                       store_dir=str(tmp_path)) as running:
            client = ServiceClient(running.url)
            fp = client.register_rows(
                ["u", "w"], [[1, 2], [2, 4], [3, 6]])["fingerprint"]
            assert client.discover(fp)["status"] == "done"
            assert client.health()["store_bytes_written"] > 0
