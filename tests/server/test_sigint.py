"""SIGINT/SIGTERM contract for long-running CLI commands (watch,
serve).

Both commands must exit with code 130 (128 + SIGINT) on interrupt and
143 (128 + SIGTERM) on termination — the latter is what supervisors
(systemd, Kubernetes) send first — tear their worker pools down
through the command's ``finally`` path, and leave no shared-memory
segments behind.  Regression tests spawn a real subprocess, wait for
its ready line, signal it, and inspect the exit status plus
``/dev/shm``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.relation.csvio import write_csv
from repro.server.smoke import shm_segments
from tests.conftest import make_relation

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def spawn_cli(*args, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["PYTHONUNBUFFERED"] = "1"
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)


def read_ready_line(process, marker: str, timeout: float = 30.0) -> str:
    """Block on stdout until the command announces readiness."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if marker in line:
            return line
        if process.poll() is not None:
            break
    pytest.fail(f"never saw {marker!r}; stderr: "
                f"{process.stderr.read()}")


def interrupt_and_wait(process, timeout: float = 30.0) -> int:
    process.send_signal(signal.SIGINT)
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail("process ignored SIGINT")


class TestWatchSigint:
    def test_watch_exits_130_without_leaks(self, tmp_path):
        csv = tmp_path / "watched.csv"
        write_csv(make_relation(
            2, [(1, 10), (2, 20), (3, 30)]), csv)
        before = shm_segments()
        process = spawn_cli("watch", str(csv), "--interval", "0.2")
        try:
            read_ready_line(process, "watching")
            code = interrupt_and_wait(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 130
        assert "interrupted" in process.stderr.read()
        assert shm_segments() <= before


class TestServeSigint:
    def test_serve_exits_130_without_leaks(self):
        before = shm_segments()
        # REPRO_WORKERS=2 forces the scheduler to build the shared
        # pool (and publish shm columns) on the first job — the
        # interesting teardown case
        process = spawn_cli("serve", "--port", "0",
                            extra_env={"REPRO_WORKERS": "2"})
        try:
            ready = read_ready_line(process, "listening on")
            url = ready.strip().rsplit(" ", 1)[-1]
            # drive one register + discover so the pool exists
            body = json.dumps({"columns": ["a", "b"],
                               "rows": [[1, 2], [2, 3], [3, 4]]}
                              ).encode()
            request = urllib.request.Request(
                url + "/datasets", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as resp:
                fp = json.loads(resp.read())["fingerprint"]
            job = json.dumps({"kind": "discover", "fingerprint": fp,
                              "wait": True}).encode()
            request = urllib.request.Request(
                url + "/jobs", data=job, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as resp:
                assert json.loads(resp.read())["status"] == "done"
            code = interrupt_and_wait(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 130
        assert "interrupted" in process.stderr.read()
        # every segment the server created (columns publish included)
        # must be unlinked by the finally-path teardown
        assert shm_segments() <= before


def terminate_and_wait(process, timeout: float = 30.0) -> int:
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        pytest.fail("process ignored SIGTERM")


class TestWatchSigterm:
    def test_watch_exits_143_without_leaks(self, tmp_path):
        csv = tmp_path / "watched.csv"
        write_csv(make_relation(
            2, [(1, 10), (2, 20), (3, 30)]), csv)
        before = shm_segments()
        process = spawn_cli("watch", str(csv), "--interval", "0.2")
        try:
            read_ready_line(process, "watching")
            code = terminate_and_wait(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 143
        assert "terminated" in process.stderr.read()
        assert shm_segments() <= before


class TestServeSigterm:
    def test_serve_exits_143_without_leaks(self):
        before = shm_segments()
        process = spawn_cli("serve", "--port", "0",
                            extra_env={"REPRO_WORKERS": "2"})
        try:
            read_ready_line(process, "listening on")
            code = terminate_and_wait(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 143
        assert "terminated" in process.stderr.read()
        assert shm_segments() <= before

    def test_serve_sigterm_closes_the_journal_cleanly(self, tmp_path):
        """The finally-path teardown runs on SIGTERM, so the journal's
        trusted prefix includes everything appended before the
        signal — a supervisor-restarted server recovers it all."""
        journal_dir = tmp_path / "journal"
        process = spawn_cli("serve", "--port", "0",
                            "--journal-dir", str(journal_dir))
        try:
            ready = read_ready_line(process, "listening on")
            url = ready.strip().rsplit(" ", 1)[-1]
            body = json.dumps({"columns": ["a", "b"],
                               "rows": [[1, 2], [2, 3], [3, 4]]}
                              ).encode()
            request = urllib.request.Request(
                url + "/datasets", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as resp:
                fp = json.loads(resp.read())["fingerprint"]
            code = terminate_and_wait(process)
        finally:
            if process.poll() is None:
                process.kill()
        assert code == 143
        from repro.server.journal import JobJournal

        journal = JobJournal(journal_dir)
        state = journal.recover()
        journal.close()
        assert fp in state.datasets
        assert state.crashed_jobs == []
