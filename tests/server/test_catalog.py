"""DatasetCatalog: registration, dedupe, eviction, append re-keying."""

from __future__ import annotations

import pytest

from repro.core.fastod import FastODConfig
from repro.datasets import make_dataset
from repro.relation.fingerprint import fingerprint
from repro.server.catalog import CatalogError, DatasetCatalog
from tests.conftest import make_relation


@pytest.fixture
def catalog():
    return DatasetCatalog()


def small(seed: int = 0):
    """Distinct ``seed`` -> distinct *rank structure* (the second
    column traces seed's bit pattern), hence distinct fingerprints —
    shifting all values uniformly would not change the encoding."""
    return make_relation(
        3, [(i, (seed >> i) & 1, 2) for i in range(4)])


class TestRegistration:
    def test_register_and_get(self, catalog):
        relation = small()
        entry = catalog.register(relation, name="tiny")
        assert entry.fingerprint == fingerprint(relation)
        assert catalog.get(entry.fingerprint) is entry
        assert entry.name == "tiny"
        assert len(catalog) == 1

    def test_same_content_dedupes(self, catalog):
        first = catalog.register(small())
        second = catalog.register(small())
        assert first is second
        assert len(catalog) == 1

    def test_unknown_fingerprint_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("deadbeef")

    def test_empty_relation_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.register(make_relation(2, []))

    def test_entry_holds_warm_state(self, catalog):
        entry = catalog.register(small())
        assert entry.encoded is entry.relation.encode()
        assert entry.cache.relation is entry.encoded
        # the warm cache is usable immediately
        assert entry.cache.get(0b11).n_rows == 4

    def test_to_dict_is_json_shaped(self, catalog):
        entry = catalog.register(small(), name="x")
        rendered = entry.to_dict()
        assert rendered["n_rows"] == 4
        assert rendered["attributes"] == ["c0", "c1", "c2"]
        assert rendered["streaming"] is False


class TestEviction:
    def test_lru_eviction_by_byte_budget(self):
        one_entry_bytes = small(0).encode().rank_nbytes
        catalog = DatasetCatalog(
            max_resident_bytes=2 * one_entry_bytes)
        a = catalog.register(small(0))
        b = catalog.register(small(10))
        catalog.get(a.fingerprint)          # refresh a's recency
        catalog.register(small(20))         # over budget: b is LRU
        assert a.fingerprint in catalog
        assert b.fingerprint not in catalog
        assert catalog.evictions == 1
        with pytest.raises(CatalogError):
            catalog.get(b.fingerprint)

    def test_oversized_entry_still_registers(self):
        catalog = DatasetCatalog(max_resident_bytes=1)
        entry = catalog.register(small())
        assert catalog.get(entry.fingerprint) is entry

    def test_unbounded_never_evicts(self, catalog):
        for seed in range(1, 9):
            catalog.register(small(seed))
        assert len(catalog) == 8
        assert catalog.evictions == 0


class TestAppendRekey:
    def test_rekey_after_append(self, catalog):
        entry = catalog.register(small())
        old_fp = entry.fingerprint
        engine = catalog.ensure_incremental(old_fp, FastODConfig())
        engine.append([(7, 7, 2)])
        new_fp = catalog.rekey_after_append(entry)
        assert new_fp != old_fp
        assert new_fp == fingerprint(engine.relation)
        # old fingerprint forwards to the live entry
        assert catalog.get(old_fp) is entry
        assert catalog.get(new_fp) is entry
        assert entry.retired_from == [old_fp]
        assert entry.relation.n_rows == 5
        # the warm cache followed the grown encoding
        assert entry.cache.relation is entry.encoded
        entry.close()

    def test_incremental_engine_is_reused(self, catalog):
        entry = catalog.register(small())
        engine = catalog.ensure_incremental(entry.fingerprint,
                                            FastODConfig())
        again = catalog.ensure_incremental(entry.fingerprint,
                                           FastODConfig(max_level=1))
        assert again is engine       # config fixed at creation
        entry.close()

    def test_reregistered_snapshot_outranks_forward(self, catalog):
        """Re-registering a retired snapshot must resolve to the new
        live entry, not be shadowed by the append forward."""
        entry = catalog.register(small())
        old_fp = entry.fingerprint
        engine = catalog.ensure_incremental(old_fp, FastODConfig())
        engine.append([(7, 7, 2)])
        catalog.rekey_after_append(entry)
        fresh = catalog.register(small())   # the original content again
        assert fresh is not entry
        assert catalog.get(old_fp) is fresh
        assert fresh.relation.n_rows == 4
        entry.close()

    def test_append_rechecks_the_byte_budget(self):
        base_bytes = small(0).encode().rank_nbytes
        catalog = DatasetCatalog(max_resident_bytes=3 * base_bytes)
        a = catalog.register(small(1))
        b = catalog.register(small(2))
        engine = catalog.ensure_incremental(b.fingerprint,
                                            FastODConfig())
        for _ in range(3):
            engine.append([(9, 4, 2)] * 4)      # grow b past budget
            catalog.rekey_after_append(b)
        # the growing streaming entry pushed the total over budget;
        # the idle entry was evicted even though nothing registered
        assert a.fingerprint not in catalog
        assert b.fingerprint in catalog
        b.close()

    def test_pinned_entries_survive_eviction(self):
        base_bytes = small(0).encode().rank_nbytes
        catalog = DatasetCatalog(max_resident_bytes=2 * base_bytes)
        a = catalog.register(small(1))
        catalog.pin(a)
        b = catalog.register(small(2))
        catalog.register(small(3))      # over budget: b (unpinned) goes
        assert a.fingerprint in catalog
        assert b.fingerprint not in catalog
        catalog.unpin(a)
        catalog.register(small(4))      # now a is fair game
        assert a.fingerprint not in catalog

    def test_append_matches_fresh_registration(self, catalog):
        """Appending rows and registering the grown content directly
        land on the same fingerprint."""
        entry = catalog.register(small())
        engine = catalog.ensure_incremental(
            entry.fingerprint, FastODConfig())
        engine.append([(9, 4, 2)])
        new_fp = catalog.rekey_after_append(entry)
        fresh = make_relation(3, [(0, 0, 2), (1, 0, 2), (2, 0, 2),
                                  (3, 0, 2), (9, 4, 2)])
        assert fingerprint(fresh) == new_fp
        entry.close()


class TestStats:
    def test_stats_shape(self, catalog):
        catalog.register(small())
        stats = catalog.stats()
        assert stats["entries"] == 1
        assert stats["resident_bytes"] > 0
        assert stats["evictions"] == 0

    def test_datasets_generate_distinct_fingerprints(self, catalog):
        fps = {
            catalog.register(make_dataset(
                "flight", n_rows=rows, n_attrs=4,
                seed=1)).fingerprint
            for rows in (50, 60, 70)
        }
        assert len(fps) == 3
