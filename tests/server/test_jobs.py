"""JobScheduler: lifecycle, caching, cancellation, telemetry."""

from __future__ import annotations

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.server.catalog import DatasetCatalog
from repro.server.jobs import (
    CACHED_EXECUTOR_STATS,
    JobError,
    JobScheduler,
    config_from_params,
)
from repro.server.store import ResultStore
from tests.conftest import make_relation


@pytest.fixture
def scheduler():
    catalog = DatasetCatalog()
    store = ResultStore()
    sched = JobScheduler(catalog, store, workers=1)
    yield sched
    sched.close()


def register(scheduler, relation):
    return scheduler._catalog.register(relation).fingerprint


def small():
    return make_relation(3, [(1, 10, 5), (2, 20, 5), (3, 30, 5),
                             (3, 30, 5)])


class TestConfigFromParams:
    def test_none_is_default(self):
        assert config_from_params(None) == FastODConfig()

    def test_fields_pass_through(self):
        config = config_from_params({"max_level": 2, "workers": 3})
        assert config.max_level == 2 and config.workers == 3

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError):
            config_from_params({"max_levle": 2})

    def test_timeout_not_a_config_field(self):
        # timeout is a job parameter, never part of the store key
        with pytest.raises(JobError):
            config_from_params({"timeout_seconds": 1.0})


class TestDiscoverJobs:
    def test_discover_matches_direct_api(self, scheduler):
        relation = small()
        fp = register(scheduler, relation)
        job = scheduler.wait(
            scheduler.submit("discover", fp).id, timeout=60)
        assert job.status == "done", job.error
        direct = FastOD(relation).run().to_dict()
        assert job.payload["result"]["fds"] == direct["fds"]
        assert job.payload["result"]["ocds"] == direct["ocds"]
        assert job.executor_stats is not None
        assert job.payload["stored"] is True

    def test_repeat_is_served_from_store_at_submit(self, scheduler):
        fp = register(scheduler, small())
        first = scheduler.wait(
            scheduler.submit("discover", fp).id, timeout=60)
        repeat = scheduler.submit("discover", fp)
        # no queue trip: terminal at submission, zero-task telemetry
        assert repeat.status == "done"
        assert repeat.cached is True
        assert repeat.executor_stats == CACHED_EXECUTOR_STATS
        assert repeat.executor_stats["phases"] == {}
        assert (repeat.payload["result"]["fds"]
                == first.payload["result"]["fds"])

    def test_distinct_config_recomputes(self, scheduler):
        fp = register(scheduler, small())
        scheduler.wait(scheduler.submit("discover", fp).id, timeout=60)
        other = scheduler.wait(
            scheduler.submit("discover", fp,
                             {"config": {"max_level": 1}}).id,
            timeout=60)
        assert other.cached is False

    def test_bad_config_fails_at_submit(self, scheduler):
        fp = register(scheduler, small())
        with pytest.raises(JobError):
            scheduler.submit("discover", fp, {"config": {"nope": 1}})
        assert scheduler.jobs() == []

    def test_unknown_kind_rejected(self, scheduler):
        fp = register(scheduler, small())
        with pytest.raises(JobError):
            scheduler.submit("mine", fp)

    def test_timeout_marks_result_and_skips_store(self, scheduler):
        relation = make_dataset("ncvoter", n_rows=2000, n_attrs=10,
                                seed=2)
        fp = register(scheduler, relation)
        job = scheduler.wait(
            scheduler.submit("discover", fp,
                             {"timeout": 1e-4}).id, timeout=120)
        assert job.status == "done"
        assert job.payload["result"]["timed_out"] is True
        assert job.payload["stored"] is False


class TestValidateAndViolations:
    def test_validate(self, scheduler):
        fp = register(scheduler, small())
        job = scheduler.wait(
            scheduler.submit("validate", fp,
                             {"dependency": "{}: [] -> c2"}).id,
            timeout=60)
        assert job.status == "done", job.error
        assert job.payload["report"]["holds"] is True
        assert job.executor_stats is not None

    def test_violations_with_witnesses(self, scheduler):
        fp = register(scheduler, make_relation(2, [(1, 2), (2, 1)]))
        job = scheduler.wait(
            scheduler.submit("violations", fp,
                             {"dependency": "[c0] ~ [c1]",
                              "witnesses": 1}).id, timeout=60)
        assert job.status == "done", job.error
        report = job.payload["report"]
        assert report["holds"] is False
        assert report["n_violating_pairs"] == 1
        assert len(report["witnesses"]) == 1

    def test_missing_dependency_fails_at_submit(self, scheduler):
        fp = register(scheduler, small())
        with pytest.raises(JobError, match="dependency"):
            scheduler.submit("validate", fp)
        assert scheduler.jobs() == []   # no stranded job record

    def test_bad_witnesses_fails_at_submit(self, scheduler):
        fp = register(scheduler, small())
        with pytest.raises(JobError, match="witnesses"):
            scheduler.submit("violations", fp,
                             {"dependency": "{}: [] -> c2",
                              "witnesses": "lots"})


class TestAppendJobs:
    def test_append_rekeys_and_stores(self, scheduler):
        fp = register(scheduler, small())
        job = scheduler.wait(
            scheduler.submit("append", fp,
                             {"rows": [[9, 90, 5]]}).id, timeout=60)
        assert job.status == "done", job.error
        new_fp = job.payload["fingerprint"]
        assert new_fp != fp
        # the maintained result was stored under the grown content:
        # a discover on the new fingerprint is a pure cache hit
        repeat = scheduler.submit("discover", new_fp)
        assert repeat.cached is True
        # and it matches a from-scratch run on the grown relation
        grown = small().append_rows([(9, 90, 5)])
        direct = FastOD(grown).run().to_dict()
        assert repeat.payload["result"]["fds"] == direct["fds"]
        assert repeat.payload["result"]["ocds"] == direct["ocds"]

    def test_append_through_old_fingerprint_forwards(self, scheduler):
        fp = register(scheduler, small())
        first = scheduler.wait(
            scheduler.submit("append", fp,
                             {"rows": [[9, 90, 5]]}).id, timeout=60)
        # submitting against the retired fingerprint still lands on
        # the live entry
        second = scheduler.wait(
            scheduler.submit("append", fp,
                             {"rows": [[11, 110, 5]]}).id, timeout=60)
        assert second.status == "done", second.error
        assert (second.payload["fingerprint"]
                != first.payload["fingerprint"])

    def test_empty_rows_fail_at_submit(self, scheduler):
        fp = register(scheduler, small())
        with pytest.raises(JobError, match="rows"):
            scheduler.submit("append", fp, {"rows": []})


class TestCancellation:
    def test_cancel_running_job_stops_traversal(self, scheduler):
        # big enough that discovery runs for many seconds — the cancel
        # below lands while the traversal is in flight
        relation = make_dataset("ncvoter", n_rows=4000, n_attrs=12,
                                seed=3)
        fp = register(scheduler, relation)
        job = scheduler.submit("discover", fp)
        # wait until the runner picked it up, then revoke its budget
        deadline = 100
        while job.status == "queued" and deadline:
            deadline -= 1
            job.wait(0.05)
        assert scheduler.cancel(job.id) is True
        scheduler.wait(job.id, timeout=120)
        assert job.status == "cancelled"
        assert job.payload["result"]["timed_out"] is True

    def test_cancel_finished_job_is_noop(self, scheduler):
        fp = register(scheduler, small())
        job = scheduler.wait(
            scheduler.submit("discover", fp).id, timeout=60)
        assert scheduler.cancel(job.id) is False
        assert job.status == "done"

    def test_unknown_job_id(self, scheduler):
        with pytest.raises(JobError):
            scheduler.cancel("job-404")


class TestLifecycle:
    def test_jobs_listing_is_fifo(self, scheduler):
        fp = register(scheduler, small())
        ids = [scheduler.submit("discover", fp).id for _ in range(3)]
        assert [job.id for job in scheduler.jobs()] == ids

    def test_submit_after_close_rejected(self):
        catalog = DatasetCatalog()
        sched = JobScheduler(catalog, ResultStore(), workers=1)
        fp = catalog.register(small()).fingerprint
        sched.close()
        with pytest.raises(JobError):
            sched.submit("discover", fp)

    def test_ledger_prunes_oldest_finished_jobs(self, scheduler,
                                                monkeypatch):
        from repro.server import jobs as jobs_module

        monkeypatch.setattr(jobs_module, "MAX_FINISHED_JOBS", 3)
        fp = register(scheduler, small())
        ids = []
        for _ in range(6):
            job = scheduler.submit("discover", fp)
            scheduler.wait(job.id, timeout=60)
            ids.append(job.id)
        assert len(scheduler.jobs()) <= 4
        with pytest.raises(JobError):
            scheduler.job(ids[0])       # pruned
        assert scheduler.job(ids[-1]).status == "done"

    def test_stats(self, scheduler):
        fp = register(scheduler, small())
        scheduler.wait(scheduler.submit("discover", fp).id, timeout=60)
        stats = scheduler.stats()
        assert stats["jobs"].get("done") == 1
        assert stats["workers"] == 1
        assert stats["pool_started"] is False
