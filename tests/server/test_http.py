"""The HTTP API + typed client against an in-process ODService."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.fastod import FastOD
from repro.relation.csvio import write_csv
from repro.server import ODService, ServiceClient, ServiceClientError
from tests.conftest import make_relation


@pytest.fixture(scope="module")
def service():
    with ODService(port=0, workers=1) as running:
        yield running


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def small():
    return make_relation(3, [(1, 10, 5), (2, 20, 5), (3, 30, 5),
                             (3, 30, 5)])


class TestHealthAndRegistration:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert "catalog" in health and "scheduler" in health

    def test_register_rows(self, client):
        entry = client.register_rows(
            ["a", "b"], [[1, 2], [3, 4]], name="pairs")
        assert entry["name"] == "pairs"
        assert entry["n_rows"] == 2
        assert client.dataset(entry["fingerprint"])["name"] == "pairs"

    def test_register_csv_path(self, client, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(small(), path)
        entry = client.register_csv(path)
        assert entry["n_rows"] == 4
        assert entry["attributes"] == ["c0", "c1", "c2"]

    def test_register_dataset_family(self, client):
        entry = client.register_dataset("flight", n_rows=40,
                                        n_attrs=4, seed=5)
        assert entry["n_rows"] == 40
        assert any(d["fingerprint"] == entry["fingerprint"]
                   for d in client.datasets())

    def test_register_without_source_is_400(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client._post("/datasets", {"name": "empty"})
        assert caught.value.status == 400

    def test_unknown_fingerprint_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client.dataset("feedface")
        assert caught.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client._get("/nope")
        assert caught.value.status == 404


class TestDiscoverOverHttp:
    def test_discover_and_cached_repeat(self, client):
        relation = small()
        fp = client.register_rows(
            list(relation.names),
            [list(map(int, row)) for row in relation.rows()]
        )["fingerprint"]
        job = client.discover(fp)
        assert job["status"] == "done", job.get("error")
        assert job["cached"] is False
        direct = FastOD(relation).run().to_dict()
        assert job["result"]["fds"] == direct["fds"]
        assert job["result"]["ocds"] == direct["ocds"]

        repeat = client.discover(fp)
        assert repeat["cached"] is True
        assert repeat["executor"]["phases"] == {}
        assert repeat["result"]["fds"] == direct["fds"]
        assert client.results(fp)[0]["fingerprint"] == fp

    def test_async_submit_and_poll(self, client):
        fp = client.register_dataset("flight", n_rows=60, n_attrs=4,
                                     seed=11)["fingerprint"]
        job = client.discover(fp, wait=False,
                              config={"max_level": 2})
        final = client.poll(job["id"], timeout=60)
        assert final["status"] == "done"
        assert final["id"] in {j["id"] for j in client.jobs()}

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client.job("job-9999")
        assert caught.value.status == 404

    def test_bad_config_is_400_not_404(self, client):
        fp = client.register_rows(
            ["k", "v"], [[1, 2], [3, 4]])["fingerprint"]
        with pytest.raises(ServiceClientError) as caught:
            client.discover(fp, config={"workerz": 1})
        assert caught.value.status == 400
        assert "unknown config field" in str(caught.value)

    def test_deep_results_path_is_404(self, client):
        with pytest.raises(ServiceClientError) as caught:
            client._get("/results/somefp/extra")
        assert caught.value.status == 404

    def test_duplicate_registration_returns_200_not_201(self, service):
        body = json.dumps({"columns": ["r", "s"],
                           "rows": [[1, 9], [2, 8]]}).encode()
        statuses = []
        for _ in range(2):
            request = urllib.request.Request(
                service.url + "/datasets", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as resp:
                statuses.append(resp.status)
        assert statuses == [201, 200]


class TestValidateViolationsAppend:
    def test_validate_and_violations(self, client):
        fp = client.register_rows(
            ["x", "y"], [[1, 2], [2, 1]])["fingerprint"]
        ok = client.validate(fp, "{}: [] -> x")
        assert ok["status"] == "done"
        assert ok["report"]["holds"] is False
        bad = client.violations(fp, "[x] ~ [y]", witnesses=3)
        assert bad["report"]["n_violating_pairs"] == 1
        assert bad["report"]["witnesses"]

    def test_append_flow(self, client):
        # distinct attribute names: the fingerprint keys a
        # discovery-equivalence class, and [[1, 10], [2, 20]] under
        # ["a", "b"] would dedupe onto test_register_rows's entry —
        # whose raw values would then seed the append
        fp = client.register_rows(
            ["base", "delta"], [[1, 10], [2, 20]])["fingerprint"]
        appended = client.append(fp, [[3, 5]])
        assert appended["status"] == "done", appended.get("error")
        new_fp = appended["fingerprint"]
        assert new_fp != fp
        # the swap landed: the OCD was invalidated incrementally
        assert ("{}: base ~ delta"
                in appended["report"]["invalidated"])
        # old fingerprint forwards to the grown entry
        assert client.dataset(fp)["fingerprint"] == new_fp
        assert client.dataset(fp)["n_rows"] == 3
        # a discover on the grown content is served from the store
        assert client.discover(new_fp)["cached"] is True

    def test_bad_dependency_fails_job(self, client):
        fp = client.register_rows(
            ["a", "b"], [[1, 10], [2, 20]])["fingerprint"]
        job = client.validate(fp, "this is not a dependency")
        assert job["status"] == "failed"
        assert "error" in job


class TestRawHttp:
    def test_plain_curl_shaped_request(self, service):
        """The documented curl flow: plain JSON over POST, no client."""
        body = json.dumps({
            "columns": ["p", "q"],
            "rows": [[1, 1], [2, 2]],
        }).encode()
        request = urllib.request.Request(
            service.url + "/datasets", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status in (200, 201)
            entry = json.loads(response.read())
        assert entry["n_rows"] == 2

    def test_invalid_json_is_400(self, service):
        request = urllib.request.Request(
            service.url + "/datasets", data=b"{oops", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30)
        assert caught.value.code == 400
