"""JobJournal: record format, torn-tail tolerance, replay semantics."""

from __future__ import annotations

import json

import pytest

from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation
from repro.server.http import ODService
from repro.server.journal import (
    JOURNAL_FILENAME,
    JobJournal,
    JournalError,
    read_records,
)

COLUMNS = ["c0", "c1", "c2"]
ROWS = [(1, 10, 5), (2, 20, 5), (3, 30, 6)]


def write_ledger(directory, *events):
    journal = JobJournal(directory)
    for method, args in events:
        getattr(journal, method)(*args)
    journal.close()
    return journal.path


class TestRecordFormat:
    def test_round_trip_in_lsn_order(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp", {"x": 1})),
            ("job_started", ("job-1",)),
            ("job_finished", ("job-1", "done")))
        records = read_records(path)
        assert [r["lsn"] for r in records] == [1, 2, 3]
        assert [r["type"] for r in records] == ["submitted", "started",
                                                "finished"]
        assert records[0]["params"] == {"x": 1}
        assert records[2]["status"] == "done"

    def test_missing_file_is_empty_log(self, tmp_path):
        assert read_records(tmp_path / "nope.log") == []

    def test_torn_tail_yields_clean_prefix(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp", {})),
            ("job_started", ("job-1",)))
        with path.open("ab") as handle:
            handle.write(b'3 deadbeef {"type": "fini')   # no newline
        assert [r["lsn"] for r in read_records(path)] == [1, 2]

    def test_corrupt_crc_ends_the_prefix(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp", {})),
            ("job_started", ("job-1",)),
            ("job_finished", ("job-1", "done")))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"started"', b'"statted"')
        path.write_bytes(b"".join(lines))
        # record 2's CRC no longer matches: records 2 AND 3 distrusted
        assert [r["lsn"] for r in read_records(path)] == [1]

    def test_out_of_sequence_lsn_ends_the_prefix(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp", {})))
        first = path.read_bytes()
        path.write_bytes(first + first.replace(b"1 ", b"5 ", 1))
        assert [r["lsn"] for r in read_records(path)] == [1]

    def test_unjournalable_params_dropped_not_fatal(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp",
                               {"ok": 1, "bad": object()})))
        assert read_records(path)[0]["params"] == {"ok": 1}


class TestReopen:
    def test_lsn_continues_across_processes(self, tmp_path):
        write_ledger(tmp_path,
                     ("job_submitted", ("job-1", "discover", "fp", {})))
        journal = JobJournal(tmp_path)
        journal.job_started("job-1")
        journal.close()
        assert [r["lsn"] for r in read_records(
            tmp_path / JOURNAL_FILENAME)] == [1, 2]

    def test_reopen_truncates_a_torn_tail(self, tmp_path):
        path = write_ledger(
            tmp_path,
            ("job_submitted", ("job-1", "discover", "fp", {})))
        with path.open("ab") as handle:
            handle.write(b"2 0000 {gar")
        journal = JobJournal(tmp_path)
        journal.job_started("job-1")
        journal.close()
        records = read_records(path)
        assert [r["lsn"] for r in records] == [1, 2]
        assert records[1]["type"] == "started"

    def test_unusable_directory_raises(self, tmp_path):
        blocker = tmp_path / "flat"
        blocker.write_text("not a directory", encoding="utf-8")
        with pytest.raises(JournalError, match="journal directory"):
            JobJournal(blocker)


class TestRecover:
    def test_job_phases_classified(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-1", "discover", "fp", {})
        journal.job_started("job-1")
        journal.job_finished("job-1", "done")
        journal.job_submitted("job-2", "append", "fp", {"rows": [[1]]})
        journal.job_started("job-2")          # crashed mid-run
        journal.job_submitted("job-3", "discover", "fp", {})
        journal.close()

        state = JobJournal(tmp_path).recover()
        assert state.finished_jobs == 1
        assert [j["id"] for j in state.crashed_jobs] == ["job-2"]
        assert [j["id"] for j in state.pending_jobs] == ["job-3"]
        assert state.crashed_jobs[0]["params"] == {"rows": [[1]]}
        assert state.max_job_id == 3
        assert state.last_lsn == 6

    def test_dataset_spool_round_trip(self, tmp_path):
        source = {"columns": COLUMNS,
                  "rows": [list(r) for r in ROWS], "name": "t"}
        journal = JobJournal(tmp_path)
        journal.dataset_registered("fp-1", "t", source)
        journal.close()

        reopened = JobJournal(tmp_path)
        state = reopened.recover()
        assert state.datasets["fp-1"]["name"] == "t"
        assert reopened.read_source("fp-1") == source
        reopened.close()

    def test_missing_spool_surfaces_as_none(self, tmp_path):
        write_ledger(tmp_path, ("dataset_registered",
                                ("fp-1", "t", None)))
        journal = JobJournal(tmp_path)
        state = journal.recover()
        journal.close()
        assert state.datasets["fp-1"]["source"] is None
        assert journal.read_source("fp-1") is None

    def test_corrupt_spool_surfaces_as_none(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.dataset_registered(
            "fp-1", "t", {"columns": COLUMNS, "rows": []})
        journal.dataset_spool("fp-1").write_text("[1, 2",
                                                 encoding="utf-8")
        assert journal.read_source("fp-1") is None
        journal.close()

    def test_recover_reads_the_open_time_prefix(self, tmp_path):
        """Appends after open are durable but recover() reports the
        prefix found at open — replay runs before the service acts."""
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-1", "discover", "fp", {})
        assert journal.recover().pending_jobs == []
        journal.close()
        reopened = JobJournal(tmp_path)
        assert [j["id"] for j in reopened.recover().pending_jobs] \
            == ["job-1"]
        reopened.close()


class TestServiceReplay:
    """In-process end-to-end: a second ODService on the same journal
    directory restores what the first one registered and owed."""

    def test_datasets_and_ledger_survive_restart(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        relation = Relation.from_rows(COLUMNS, ROWS)
        fp = fingerprint(relation)
        body = {"columns": COLUMNS,
                "rows": [list(r) for r in ROWS], "name": "t"}
        with ODService(port=0, journal_dir=journal_dir) as first:
            status, payload = first.register(body)
            assert payload["fingerprint"] == fp
            job = first.scheduler.submit("discover", fp)
            assert first.scheduler.wait(job.id, timeout=60.0).finished

        with ODService(port=0, journal_dir=journal_dir) as second:
            assert second.recovered == {"datasets": 1, "requeued": 0,
                                        "crashed": 0,
                                        "delta_batches": 0,
                                        "delta_errors": 0}
            assert second.catalog.get(fp).fingerprint == fp
            # finished jobs are ledger history, not restored records
            assert second.scheduler.jobs() == []
            # ids never collide with the journaled ones
            fresh = second.scheduler.submit("discover", fp)
            assert int(fresh.id.rsplit("-", 1)[-1]) > int(
                job.id.rsplit("-", 1)[-1])
            assert second.scheduler.wait(fresh.id,
                                         timeout=60.0).status == "done"

    def test_started_job_comes_back_crashed(self, tmp_path):
        journal_dir = tmp_path / "journal"
        relation = Relation.from_rows(COLUMNS, ROWS)
        fp = fingerprint(relation)
        journal = JobJournal(journal_dir)
        journal.dataset_registered(
            fp, "t", {"columns": COLUMNS,
                      "rows": [list(r) for r in ROWS], "name": "t"})
        journal.job_submitted("job-1", "discover", fp, {})
        journal.job_started("job-1")
        journal.close()

        with ODService(port=0, journal_dir=str(journal_dir)) as svc:
            assert svc.recovered["crashed"] == 1
            job = svc.scheduler.job("job-1")
            assert job.status == "crashed"
            assert job.finished
            assert "crash" in job.error
            # the crash verdict itself was journaled, so the NEXT
            # restart replays it as plain history
            health = svc.health()
            assert health["recovered"]["crashed"] == 1
        records = read_records(journal_dir / JOURNAL_FILENAME)
        assert records[-1] == {"type": "finished", "id": "job-1",
                               "status": "crashed",
                               "lsn": records[-1]["lsn"]}

    def test_lost_spool_skips_the_dataset(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal = JobJournal(journal_dir)
        journal.dataset_registered("fp-gone", "t", None)
        journal.close()
        with ODService(port=0, journal_dir=str(journal_dir)) as svc:
            assert svc.recovered["datasets"] == 0

    def test_register_spools_the_exact_body(self, tmp_path):
        journal_dir = tmp_path / "journal"
        body = {"columns": COLUMNS,
                "rows": [list(r) for r in ROWS], "name": "t"}
        with ODService(port=0, journal_dir=str(journal_dir)) as svc:
            svc.register(dict(body))
            fp = fingerprint(Relation.from_rows(COLUMNS, ROWS))
            spooled = json.loads(
                svc.journal.dataset_spool(fp).read_text(
                    encoding="utf-8"))
        assert spooled == body
