"""ResultStore: (fingerprint, canonical config) keyed result caching."""

from __future__ import annotations

from repro.core.fastod import FastOD, FastODConfig
from repro.relation.fingerprint import fingerprint
from repro.server.store import ResultStore
from tests.conftest import make_relation


def relation():
    return make_relation(3, [(1, 10, 5), (2, 20, 5), (3, 30, 5)])


class TestCanonicalKey:
    def test_default_key(self):
        assert FastODConfig().canonical_key() == "min1-lvl1-maxall"

    def test_work_shaping_knobs_ignored(self):
        base = FastODConfig()
        for variant in (FastODConfig(workers=8),
                        FastODConfig(key_pruning=False),
                        FastODConfig(parallel_min_grouped_rows=0),
                        FastODConfig(timeout_seconds=30.0)):
            assert variant.canonical_key() == base.canonical_key()

    def test_result_shaping_knobs_distinguish(self):
        keys = {FastODConfig().canonical_key(),
                FastODConfig(max_level=2).canonical_key(),
                FastODConfig(minimality_pruning=False,
                             level_pruning=False).canonical_key(),
                FastODConfig(level_pruning=False).canonical_key()}
        assert len(keys) == 4

    def test_level_pruning_normalised_when_minimality_off(self):
        # level pruning has no effect without minimality pruning, so
        # both spellings share one store entry
        assert (FastODConfig(minimality_pruning=False,
                             level_pruning=True).canonical_key()
                == FastODConfig(minimality_pruning=False,
                                level_pruning=False).canonical_key())


class TestMemoryStore:
    def test_roundtrip(self):
        store = ResultStore()
        rel = relation()
        fp = fingerprint(rel)
        config = FastODConfig()
        assert store.get(fp, config) is None
        result = FastOD(rel, config).run()
        assert store.put(fp, config, result) is True
        cached = store.get(fp, config)
        assert cached is result
        assert store.hits == 1 and store.misses == 1

    def test_config_partitions_the_key_space(self):
        store = ResultStore()
        rel = relation()
        fp = fingerprint(rel)
        store.put(fp, FastODConfig(), FastOD(rel).run())
        assert store.get(fp, FastODConfig(max_level=1)) is None

    def test_workers_share_the_entry(self):
        store = ResultStore()
        rel = relation()
        fp = fingerprint(rel)
        store.put(fp, FastODConfig(workers=2), FastOD(rel).run())
        assert store.get(fp, FastODConfig(workers=8)) is not None

    def test_timed_out_results_refused(self):
        store = ResultStore()
        rel = relation()
        result = FastOD(rel).run()
        result.timed_out = True
        assert store.put(fingerprint(rel), FastODConfig(),
                         result) is False
        assert len(store) == 0


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        rel = relation()
        fp = fingerprint(rel)
        config = FastODConfig()
        result = FastOD(rel, config).run()
        ResultStore(tmp_path).put(fp, config, result)

        reloaded = ResultStore(tmp_path).get(fp, config)
        assert reloaded is not None
        assert reloaded.same_ods(result)
        assert [str(fd) for fd in reloaded.fds] == [
            str(fd) for fd in sorted(
                result.fds, key=type(result.fds[0]).sort_key)]

    def test_file_layout(self, tmp_path):
        rel = relation()
        fp = fingerprint(rel)
        config = FastODConfig(max_level=2)
        ResultStore(tmp_path).put(fp, config, FastOD(rel, config).run())
        expected = tmp_path / fp / f"{config.canonical_key()}.json"
        assert expected.exists()

    def test_torn_file_recomputes(self, tmp_path):
        rel = relation()
        fp = fingerprint(rel)
        config = FastODConfig()
        path = tmp_path / fp / f"{config.canonical_key()}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ not json", encoding="utf-8")
        assert ResultStore(tmp_path).get(fp, config) is None

    def test_entries_lists_disk_and_resident(self, tmp_path):
        rel = relation()
        fp = fingerprint(rel)
        config = FastODConfig()
        ResultStore(tmp_path).put(fp, config, FastOD(rel, config).run())
        fresh = ResultStore(tmp_path)
        entries = fresh.entries()
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == fp
        assert entries[0]["resident"] is False
        fresh.get(fp, config)
        assert fresh.entries()[0]["resident"] is True
