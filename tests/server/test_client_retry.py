"""ServiceClient transport resilience: bounded retry + timeouts."""

from __future__ import annotations

import io
import json
import urllib.error

import pytest

from repro.server.client import (
    ServiceClient,
    ServiceClientError,
    _retryable_reason,
)


class TestRetryableShapes:
    def test_connection_failures_are_retryable(self):
        assert _retryable_reason(ConnectionRefusedError())
        assert _retryable_reason(ConnectionResetError())
        assert _retryable_reason(
            urllib.error.URLError(ConnectionRefusedError()))
        assert _retryable_reason(
            urllib.error.URLError(ConnectionResetError()))

    def test_other_failures_are_not(self):
        assert not _retryable_reason(
            urllib.error.URLError(TimeoutError()))
        assert not _retryable_reason(
            urllib.error.URLError("name resolution failed"))


def client_with_transport(monkeypatch, outcomes, retries=3):
    """A client whose urlopen pops scripted outcomes (exception
    instances raise, dicts become the JSON response body)."""
    client = ServiceClient("http://127.0.0.1:1", timeout=1.0,
                           retries=retries, retry_backoff=0.001)
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append(timeout)
        outcome = outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome

        class Response(io.BytesIO):
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        return Response(json.dumps(outcome).encode("utf-8"))

    monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
    return client, calls


class TestRetryLoop:
    def test_bridges_a_restarting_server(self, monkeypatch):
        client, calls = client_with_transport(monkeypatch, [
            urllib.error.URLError(ConnectionRefusedError()),
            urllib.error.URLError(ConnectionRefusedError()),
            {"status": "ok"},
        ])
        assert client.health() == {"status": "ok"}
        assert len(calls) == 3

    def test_budget_exhaustion_raises_typed_error(self, monkeypatch):
        client, calls = client_with_transport(monkeypatch, [
            urllib.error.URLError(ConnectionRefusedError())
            for _ in range(3)
        ], retries=2)
        with pytest.raises(ServiceClientError, match="GET /health"):
            client.health()
        assert len(calls) == 3          # 1 try + 2 retries

    def test_zero_retries_fails_fast(self, monkeypatch):
        client, calls = client_with_transport(monkeypatch, [
            urllib.error.URLError(ConnectionRefusedError()),
        ], retries=0)
        with pytest.raises(ServiceClientError):
            client.health()
        assert len(calls) == 1

    def test_non_retryable_urlerror_not_retried(self, monkeypatch):
        client, calls = client_with_transport(monkeypatch, [
            urllib.error.URLError(TimeoutError("socket timeout")),
            {"status": "ok"},
        ])
        with pytest.raises(ServiceClientError):
            client.health()
        assert len(calls) == 1

    def test_http_errors_are_answers_not_retried(self, monkeypatch):
        client, calls = client_with_transport(monkeypatch, [
            urllib.error.HTTPError(
                "http://x", 404, "not found", None,
                io.BytesIO(b'{"error": "no such job"}')),
            {"status": "ok"},
        ])
        with pytest.raises(ServiceClientError,
                           match="404: no such job") as exc_info:
            client.job("job-9")
        assert exc_info.value.status == 404
        assert len(calls) == 1


class TestTimeouts:
    def test_per_call_override_reaches_the_socket(self, monkeypatch):
        client, calls = client_with_transport(
            monkeypatch, [{"status": "ok"}, {"status": "ok"}])
        client.health()
        client.health(timeout=2.5)
        assert calls == [1.0, 2.5]
