"""Approximate ODs: g3 errors, the compatible-subset DP, discovery."""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.validation import CanonicalValidator
from repro.partitions.partition import StrippedPartition
from repro.violations import (
    approximate_discovery,
    error_rate,
    fd_removal_count,
    max_compatible_subset,
    ocd_removal_count,
)
from tests.conftest import make_relation, small_relations


def _brute_max_compatible(pairs):
    for size in range(len(pairs), -1, -1):
        for subset in itertools.combinations(range(len(pairs)), size):
            if not any(
                    pairs[i][0] < pairs[j][0] and pairs[i][1] > pairs[j][1]
                    or pairs[j][0] < pairs[i][0] and pairs[j][1] > pairs[i][1]
                    for i, j in itertools.combinations(subset, 2)):
                return size
    return 0


class TestMaxCompatibleSubset:
    def test_empty(self):
        assert max_compatible_subset([]) == 0

    def test_already_compatible(self):
        assert max_compatible_subset([(0, 0), (1, 1), (2, 2)]) == 3

    def test_full_reversal(self):
        assert max_compatible_subset([(0, 2), (1, 1), (2, 0)]) == 1

    def test_equal_a_block_kept_whole(self):
        # both (3,1) points can be kept together with (2,0)
        assert max_compatible_subset([(2, 0), (3, 1), (3, 1)]) == 3

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    max_size=9))
    def test_matches_exhaustive(self, pairs):
        assert max_compatible_subset(pairs) == _brute_max_compatible(pairs)


class TestRemovalCounts:
    def test_fd_removal(self):
        column = np.array([5, 5, 6, 7])
        partition = StrippedPartition([[0, 1, 2, 3]], 4)
        assert fd_removal_count(column, partition) == 2

    def test_ocd_removal(self):
        a = np.array([0, 1, 2])
        b = np.array([2, 1, 0])
        partition = StrippedPartition([[0, 1, 2]], 3)
        assert ocd_removal_count(a, b, partition) == 2

    def test_zero_when_holds(self):
        a = np.array([0, 1, 2])
        partition = StrippedPartition([], 3)
        assert fd_removal_count(a, partition) == 0
        assert ocd_removal_count(a, a, partition) == 0


class TestErrorRate:
    def test_zero_iff_holds_fd(self):
        relation = make_relation(2, [(1, 5), (1, 5), (2, 6)])
        assert error_rate(relation, CanonicalFD({"c0"}, "c1")) == 0.0
        relation2 = make_relation(2, [(1, 5), (1, 6)])
        assert error_rate(relation2, CanonicalFD({"c0"}, "c1")) == 0.5

    def test_paper_swap_example(self, employee_table):
        # removing 3 of 6 tuples makes [sal] ~ [subg] hold
        assert error_rate(employee_table, "[sal] ~ [subg]") == 0.5

    def test_trivial_zero(self):
        relation = make_relation(1, [(1,), (2,)])
        assert error_rate(relation, CanonicalFD({"c0"}, "c0")) == 0.0

    def test_empty_relation(self):
        relation = make_relation(2, [])
        assert error_rate(relation, CanonicalFD({"c0"}, "c1")) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_zero_iff_holds_property(self, relation):
        validator = CanonicalValidator(relation)
        names = list(relation.names)
        for attribute in names:
            context = frozenset(n for n in names if n != attribute)
            fd = CanonicalFD(context, attribute)
            assert (error_rate(relation, fd) == 0.0) == validator.holds(fd)
        if len(names) >= 2:
            ocd = CanonicalOCD(frozenset(names[2:]), names[0], names[1])
            assert (error_rate(relation, ocd) == 0.0) == \
                validator.holds(ocd)

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_monotone_in_context(self, relation):
        """Growing the context never increases the error."""
        names = list(relation.names)
        if len(names) < 2:
            return
        attribute = names[0]
        smaller = CanonicalFD(frozenset(), attribute)
        bigger = CanonicalFD(frozenset(names[1:]), attribute)
        assert error_rate(relation, bigger) <= \
            error_rate(relation, smaller)


class TestApproximateDiscovery:
    def test_threshold_zero_matches_exact(self):
        from repro import discover_ods

        relation = make_relation(
            3, [(1, 5, 1), (1, 5, 2), (2, 6, 2), (3, 6, 3)])
        approx = approximate_discovery(relation, max_error=0.0)
        exact = discover_ods(relation)
        assert {str(a.od) for a in approx.ods} == \
            {str(od) for od in exact.all_ods}

    def test_nearly_holding_fd_found(self):
        rows = [(1, 5)] * 9 + [(1, 6)]
        relation = make_relation(2, rows)
        approx = approximate_discovery(relation, max_error=0.15)
        assert "{c0}: [] -> c1" in {str(a.od) for a in approx.ods} or \
            "{}: [] -> c1" in {str(a.od) for a in approx.ods}

    def test_minimality_pruning(self):
        relation = make_relation(
            3, [(1, 5, 0), (2, 5, 1), (3, 6, 0), (4, 6, 1)])
        approx = approximate_discovery(relation, max_error=0.0)
        contexts = [a.od.context for a in approx.ods
                    if isinstance(a.od, CanonicalFD)
                    and a.od.attribute == "c1"]
        # no context should contain another
        for first in contexts:
            for second in contexts:
                assert first == second or not first < second

    def test_max_context_bound(self):
        relation = make_relation(3, [(1, 2, 3), (2, 3, 4)])
        approx = approximate_discovery(relation, max_error=1.0,
                                       max_context=1)
        assert all(len(a.od.context) <= 1 for a in approx.ods)

    def test_errors_reported_within_threshold(self):
        relation = make_relation(2, [(i, i % 3) for i in range(9)])
        approx = approximate_discovery(relation, max_error=0.4)
        assert all(a.error <= 0.4 for a in approx.ods)
        assert all("g3=" in str(a) for a in approx.ods)

    def test_fds_ocds_views(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        approx = approximate_discovery(relation, max_error=0.0)
        assert len(approx.fds) + len(approx.ocds) == len(approx.ods)
