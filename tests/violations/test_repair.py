"""Repair strategies: termination, cleanliness, optimality of the
closed-form FD repair."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.od import CanonicalFD
from repro.violations import (
    check_dependency,
    exact_fd_repair,
    greedy_repair,
    verify_repair,
)
from tests.conftest import make_relation, small_relations


class TestExactFdRepair:
    def test_keeps_majority(self):
        relation = make_relation(
            2, [(1, 5), (1, 5), (1, 6), (2, 7)])
        result = exact_fd_repair(relation, CanonicalFD({"c0"}, "c1"))
        assert result.removed_rows == [2]
        assert check_dependency(result.relation, "{c0}: [] -> c1").holds

    def test_already_clean(self):
        relation = make_relation(2, [(1, 5), (2, 6)])
        result = exact_fd_repair(relation, CanonicalFD({"c0"}, "c1"))
        assert result.removed_rows == []
        assert result.relation == relation

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=2, max_rows=10, max_domain=2))
    def test_result_clean_and_no_better_single_class(self, relation):
        if relation.arity < 2:
            return
        fd = CanonicalFD({relation.names[0]}, relation.names[1])
        result = exact_fd_repair(relation, fd)
        assert check_dependency(result.relation, fd).holds
        # optimality: per class we kept the majority, so removals <=
        # class size - 1 for every class; verify via recount
        from repro.violations.approximate import fd_removal_count
        from repro.partitions.cache import PartitionCache

        encoded = relation.encode()
        partition = PartitionCache(encoded).get(0b01)
        assert result.n_removed == fd_removal_count(
            encoded.column(1), partition)


class TestGreedyRepair:
    def test_fixes_swap(self):
        relation = make_relation(2, [(1, 2), (2, 1), (3, 3)])
        result = greedy_repair(relation, ["[c0] ~ [c1]"])
        assert result.clean
        assert verify_repair(result, ["[c0] ~ [c1]"])
        assert result.n_removed >= 1

    def test_multiple_dependencies(self, employee_table):
        deps = ["[sal] ~ [subg]", "{posit}: [] -> sal"]
        result = greedy_repair(employee_table, deps)
        assert result.clean
        assert verify_repair(result, deps)

    def test_removed_rows_reference_original(self):
        relation = make_relation(2, [(1, 2), (2, 1), (3, 3)])
        result = greedy_repair(relation, ["[c0] ~ [c1]"])
        survivors = relation.drop_rows(result.removed_rows)
        assert survivors == result.relation

    def test_round_budget(self):
        relation = make_relation(2, [(i, -i) for i in range(6)])
        result = greedy_repair(relation, ["[c0] ~ [c1]"], max_rounds=1)
        assert not result.clean
        assert result.rounds == 1

    def test_already_clean_zero_rounds(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        result = greedy_repair(relation, ["[c0] ~ [c1]"])
        assert result.rounds == 0
        assert result.n_removed == 0

    @settings(max_examples=30, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_always_terminates_clean(self, relation):
        if relation.arity < 2:
            return
        deps = [f"[{relation.names[0]}] ~ [{relation.names[1]}]"]
        result = greedy_repair(relation, deps)
        assert result.clean
        assert verify_repair(result, deps)
