"""Violation detection: witnesses are genuine, counts are exact."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.partitions.partition import StrippedPartition
from repro.violations import (
    ViolationDetector,
    check_dependency,
    count_split_pairs,
    count_swap_pairs,
)
from tests.conftest import make_relation, small_relations


class TestCountSplitPairs:
    def test_basic(self):
        column = np.array([1, 2, 2, 3])
        partition = StrippedPartition([[0, 1, 2, 3]], 4)
        # pairs differing on the column: C(4,2)=6 minus same-value (1)
        assert count_split_pairs(column, partition) == 5

    def test_no_splits(self):
        column = np.array([7, 7, 8])
        partition = StrippedPartition([[0, 1]], 3)
        assert count_split_pairs(column, partition) == 0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                    min_size=0, max_size=10))
    def test_matches_quadratic_count(self, rows):
        relation = make_relation(2, rows)
        encoded = relation.encode()
        c0, c1 = encoded.column(0), encoded.column(1)
        partition = StrippedPartition.from_ranks(c0)
        expected = sum(
            1 for i in range(len(rows)) for j in range(i + 1, len(rows))
            if c0[i] == c0[j] and c1[i] != c1[j])
        assert count_split_pairs(c1, partition) == expected


class TestCountSwapPairs:
    def test_basic(self):
        a = np.array([0, 1, 2])
        b = np.array([2, 1, 0])
        partition = StrippedPartition([[0, 1, 2]], 3)
        assert count_swap_pairs(a, b, partition) == 3

    def test_equal_a_pairs_ignored(self):
        a = np.array([1, 1])
        b = np.array([9, 0])
        partition = StrippedPartition([[0, 1]], 2)
        assert count_swap_pairs(a, b, partition) == 0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=0, max_size=12))
    def test_matches_quadratic_count(self, pairs):
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        partition = (StrippedPartition([list(range(len(pairs)))], len(pairs))
                     if len(pairs) >= 2 else StrippedPartition([], len(pairs)))
        expected = sum(
            1 for i in range(len(pairs)) for j in range(len(pairs))
            if a[i] < a[j] and b[i] > b[j])
        assert count_swap_pairs(a, b, partition) == expected


class TestDetector:
    def test_fd_report(self):
        relation = make_relation(2, [(1, 5), (1, 6), (2, 7)])
        report = check_dependency(relation, CanonicalFD({"c0"}, "c1"))
        assert not report.holds
        assert report.n_violating_pairs == 1
        witness = report.witnesses[0]
        assert relation.row(witness.row_s)[0] == \
            relation.row(witness.row_t)[0]

    def test_ocd_report(self):
        relation = make_relation(2, [(1, 2), (2, 1)])
        report = check_dependency(relation, CanonicalOCD(set(), "c0", "c1"))
        assert not report.holds
        assert report.n_violating_pairs == 1

    def test_string_dependency(self):
        relation = make_relation(2, [(1, 5), (2, 5)])
        report = check_dependency(relation, "{}: [] -> c1")
        assert report.holds

    def test_list_od_decomposed(self):
        relation = make_relation(2, [(1, 9), (1, 8), (2, 7)])
        report = check_dependency(relation, "[c0] -> [c1]")
        assert not report.holds
        assert report.parts  # Theorem 5 sub-reports present
        assert any(not part.holds for part in report.parts)

    def test_compatibility_dependency(self):
        relation = make_relation(2, [(1, 2), (2, 1)])
        report = check_dependency(relation, "[c0] ~ [c1]")
        assert not report.holds

    def test_trivial_dependency(self):
        relation = make_relation(1, [(1,), (2,)])
        assert check_dependency(relation, "{c0}: [] -> c0").holds

    def test_witness_limit(self):
        rows = [(i // 2, i) for i in range(20)]
        relation = make_relation(2, rows)
        report = ViolationDetector(relation).check(
            "{c0}: [] -> c1", max_witnesses=2)
        assert len(report.witnesses) == 2

    def test_unsupported_object(self):
        relation = make_relation(1, [(1,)])
        with pytest.raises(TypeError):
            ViolationDetector(relation).check(42)

    def test_report_str(self):
        relation = make_relation(2, [(1, 5), (1, 6)])
        report = check_dependency(relation, "{c0}: [] -> c1")
        text = str(report)
        assert "violated" in text and "split" in text

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_holds_agrees_with_validator(self, relation):
        from repro.core.validation import CanonicalValidator

        detector = ViolationDetector(relation)
        validator = CanonicalValidator(relation)
        names = list(relation.names)
        for attribute in names:
            fd = CanonicalFD(
                frozenset(n for n in names if n != attribute), attribute)
            assert detector.check(fd).holds == validator.holds(fd)
