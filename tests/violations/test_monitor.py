"""Incremental OD monitor: agrees with batch re-validation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import CanonicalFD
from repro.core.parser import parse
from repro.core.validation import CanonicalValidator
from repro.relation.table import Relation
from repro.violations import ODMonitor
from tests.conftest import make_relation


class TestFdMonitoring:
    def test_accepts_consistent(self):
        monitor = ODMonitor(["k", "v"], ["{k}: [] -> v"])
        assert monitor.insert((1, "a")) is None
        assert monitor.insert((2, "b")) is None
        assert monitor.insert((1, "a")) is None
        assert monitor.n_accepted == 3

    def test_rejects_split(self):
        monitor = ODMonitor(["k", "v"], ["{k}: [] -> v"])
        monitor.insert((1, "a"))
        rejected = monitor.insert((1, "b"))
        assert rejected is not None
        assert rejected.od == CanonicalFD({"k"}, "v")
        assert "constant" in rejected.reason

    def test_rejected_rows_not_folded_in(self):
        monitor = ODMonitor(["k", "v"], ["{k}: [] -> v"])
        monitor.insert((1, "a"))
        monitor.insert((1, "b"))           # rejected
        assert monitor.insert((1, "a")) is None  # 'a' is still the value

    def test_empty_context_constant(self):
        monitor = ODMonitor(["x"], ["{}: [] -> x"])
        assert monitor.insert((7,)) is None
        assert monitor.insert((8,)) is not None


class TestOcdMonitoring:
    def test_accepts_monotone(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        for row in [(1, 10), (3, 30), (2, 20), (3, 35)]:
            assert monitor.insert(row) is None

    def test_rejects_swap_below(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        monitor.insert((1, 10))
        rejected = monitor.insert((2, 5))
        assert rejected is not None
        assert "lower A-group" in rejected.reason

    def test_rejects_swap_above(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        monitor.insert((5, 50))
        rejected = monitor.insert((1, 60))
        assert rejected is not None
        assert "higher A-group" in rejected.reason

    def test_equal_a_widens_interval(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        assert monitor.insert((1, 10)) is None
        assert monitor.insert((1, 30)) is None   # same group, wider
        assert monitor.insert((2, 20)) is not None  # inside the gap

    def test_equal_b_boundaries_allowed(self):
        # swaps are strict: equal Bs across A groups are fine
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        assert monitor.insert((1, 10)) is None
        assert monitor.insert((2, 10)) is None

    def test_contextual(self):
        monitor = ODMonitor(["g", "a", "b"], ["{g}: a ~ b"])
        assert monitor.insert((0, 1, 9)) is None
        assert monitor.insert((1, 2, 1)) is None   # other class: fresh
        assert monitor.insert((0, 2, 1)) is not None


class TestApi:
    def test_insert_many(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        rejections = monitor.insert_many(
            [(1, 1), (2, 2), (3, 1), (4, 4)])
        assert len(rejections) == 1
        assert monitor.n_accepted == 3
        assert monitor.violations == rejections

    def test_from_relation(self):
        relation = make_relation(2, [(1, 10), (2, 20)])
        monitor = ODMonitor.from_relation(relation, ["{}: c0 ~ c1"])
        assert monitor.insert((3, 15)) is not None

    def test_from_relation_rejects_dirty_seed(self):
        relation = make_relation(2, [(1, 20), (2, 10)])
        with pytest.raises(ValueError):
            ODMonitor.from_relation(relation, ["{}: c0 ~ c1"])

    def test_unknown_attribute(self):
        with pytest.raises(KeyError):
            ODMonitor(["a"], ["{}: a ~ zzz"])

    def test_non_canonical_rejected(self):
        with pytest.raises(TypeError):
            ODMonitor(["a", "b"], [parse("[a] -> [b]")])

    def test_wrong_width(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        with pytest.raises(ValueError):
            monitor.insert((1,))

    def test_mixed_value_types(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        assert monitor.insert((1, None)) is None
        assert monitor.insert((2, "x")) is None   # None < str: fine
        assert monitor.insert((3, 5)) is not None  # number < str: swap


class TestDifferentialAgainstBatch:
    """The core guarantee: accept iff the accepted-so-far relation plus
    the new row still satisfies every dependency."""

    DEPS = ["{}: c0 ~ c1", "{c2}: [] -> c0", "{c2}: c0 ~ c1"]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.integers(0, 1)),
                    max_size=15))
    def test_matches_batch_validation(self, rows):
        monitor = ODMonitor(["c0", "c1", "c2"], self.DEPS)
        accepted = []
        parsed = [parse(d) for d in self.DEPS]
        for row in rows:
            candidate = Relation.from_rows(
                ["c0", "c1", "c2"], accepted + [row])
            validator = CanonicalValidator(candidate.encode())
            expected_ok = all(validator.holds(d) for d in parsed)
            actually_ok = monitor.insert(row) is None
            assert actually_ok == expected_ok, (row, accepted)
            if actually_ok:
                accepted.append(row)

    def test_long_random_stream(self):
        rng = random.Random(11)
        monitor = ODMonitor(["c0", "c1", "c2"], self.DEPS)
        accepted = []
        parsed = [parse(d) for d in self.DEPS]
        for _ in range(200):
            row = (rng.randint(0, 5), rng.randint(0, 5),
                   rng.randint(0, 2))
            ok = monitor.insert(row) is None
            if ok:
                accepted.append(row)
        final = Relation.from_rows(["c0", "c1", "c2"], accepted)
        validator = CanonicalValidator(final.encode())
        assert all(validator.holds(d) for d in parsed)


class TestEdgeCases:
    """Unseen values, duplicates, interleaved context classes."""

    def test_unseen_values_between_existing(self):
        monitor = ODMonitor(["a", "b"], ["{}: a ~ b"])
        assert monitor.insert((10, 100)) is None
        assert monitor.insert((30, 300)) is None
        # values strictly between everything seen so far
        assert monitor.insert((20, 200)) is None
        # and one that lands between on A but swaps on B
        rejected = monitor.insert((25, 150))
        assert rejected is not None

    def test_unseen_value_types_mix(self):
        monitor = ODMonitor(["k", "v"], ["{k}: [] -> v"])
        assert monitor.insert((1, "x")) is None
        assert monitor.insert((None, 2.5)) is None     # unseen kinds
        assert monitor.insert(("key", True)) is None
        assert monitor.insert((1, "x")) is None
        assert monitor.insert((None, 2.5)) is None

    def test_duplicate_rows_always_accepted(self):
        monitor = ODMonitor(["a", "b", "c"],
                            ["{c}: [] -> a", "{c}: a ~ b"])
        row = (1, 2, 3)
        for _ in range(5):
            assert monitor.insert(row) is None
        assert monitor.n_accepted == 5

    def test_interleaved_context_classes(self):
        # two context classes fed alternately; each stays independent
        monitor = ODMonitor(["ctx", "a", "b"], ["{ctx}: a ~ b"])
        stream = [("x", 1, 10), ("y", 9, 90), ("x", 2, 20),
                  ("y", 8, 80), ("x", 3, 30), ("y", 7, 70)]
        for row in stream:
            assert monitor.insert(row) is None
        # a swap inside class "x" only; "y" keeps accepting
        assert monitor.insert(("x", 4, 5)) is not None
        assert monitor.insert(("y", 10, 95)) is None

    def test_interleaved_constancy_classes(self):
        monitor = ODMonitor(["ctx", "v"], ["{ctx}: [] -> v"])
        for row in [("x", 1), ("y", 2), ("x", 1), ("y", 2)]:
            assert monitor.insert(row) is None
        assert monitor.insert(("x", 2)) is not None
        assert monitor.insert(("y", 2)) is None


class TestReplayedBatchEquivalence:
    """Replaying any accepted stream through ViolationDetector agrees:
    a batch is violation-free iff the detector says the dependency
    holds on the concatenated relation."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2),
                              st.integers(0, 1)),
                    min_size=1, max_size=12),
           st.sampled_from(["{}: c0 ~ c1", "{c2}: [] -> c0",
                            "{c2}: c0 ~ c1", "{c1,c2}: [] -> c0"]))
    def test_monitor_iff_detector(self, rows, dependency):
        from repro.violations.detect import ViolationDetector

        monitor = ODMonitor(["c0", "c1", "c2"], [dependency])
        rejections = monitor.insert_many(rows)
        relation = Relation.from_rows(["c0", "c1", "c2"], rows)
        report = ViolationDetector(relation).check(
            dependency, max_witnesses=0, count_pairs=False)
        assert (not rejections) == report.holds
