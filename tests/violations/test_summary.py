"""Dataset-level violation summaries."""

from __future__ import annotations

from repro.violations import summarize_violations
from tests.conftest import make_relation


class TestSummarizeViolations:
    def test_clean(self):
        relation = make_relation(2, [(1, 10), (2, 20)])
        summary = summarize_violations(
            relation, ["{}: c0 ~ c1", "{c0}: [] -> c1"])
        assert summary.clean
        assert summary.n_violated_rules == 0
        assert "CLEAN" in summary.render()

    def test_dirty(self):
        relation = make_relation(2, [(1, 20), (2, 10), (3, 30)])
        summary = summarize_violations(
            relation, ["{}: c0 ~ c1", "{c0}: [] -> c1"])
        assert not summary.clean
        assert summary.n_violated_rules == 1
        assert summary.total_violating_pairs == 1
        text = summary.render()
        assert "violating pair" in text

    def test_hot_rows_point_at_offenders(self):
        # row 3 is the out-of-order one; witnesses are representative
        # (one per offending class), so it appears at least once
        relation = make_relation(2, [(1, 1), (2, 2), (3, 3), (4, 0)])
        summary = summarize_violations(relation, ["{}: c0 ~ c1"])
        assert summary.hot_rows
        implicated = {row for row, _ in summary.hot_rows}
        assert 3 in implicated

    def test_multiple_rules_aggregate(self):
        relation = make_relation(
            3, [(1, 20, 5), (1, 10, 6), (2, 30, 5)])
        summary = summarize_violations(
            relation,
            ["{}: c0 ~ c1", "{c0}: [] -> c1", "{c0}: [] -> c2"])
        assert summary.n_violated_rules >= 2
        assert len(summary.verdicts) == 3
        assert len(summary.reports) == 3

    def test_accepts_parsed_and_string_rules(self):
        from repro.core.od import CanonicalFD

        relation = make_relation(2, [(1, 10), (2, 20)])
        summary = summarize_violations(
            relation, [CanonicalFD({"c0"}, "c1"), "{}: c0 ~ c1"])
        assert summary.clean

    def test_render_top_rows_limit(self):
        relation = make_relation(2, [(i, -i) for i in range(8)])
        summary = summarize_violations(relation, ["{}: c0 ~ c1"])
        text = summary.render(top_rows=2)
        listed = [line for line in text.splitlines()
                  if line.startswith("  row ")]
        assert len(listed) == 2
