"""Streaming generators: deterministic splits that reassemble exactly,
plus drift that really breaks planted structure."""

from __future__ import annotations

import pytest

from repro.core.fastod import FastOD
from repro.datasets import make_dataset
from repro.datasets.streaming import (
    drifting_stream,
    split_stream,
    stream_batches,
)


class TestSplitStream:
    def test_round_trips_the_relation(self):
        relation = make_dataset("flight", n_rows=97, n_attrs=6)
        base, batches = split_stream(relation, 7, base_fraction=0.4)
        accumulated = base
        for batch in batches:
            accumulated = accumulated.concat(batch)
        assert accumulated == relation

    def test_batch_count_and_sizes(self):
        relation = make_dataset("dbtesma", n_rows=100, n_attrs=5)
        base, batches = split_stream(relation, 10, base_fraction=0.5)
        assert base.n_rows == 50
        assert len(batches) == 10
        assert sum(b.n_rows for b in batches) == 50

    def test_rejects_bad_parameters(self):
        relation = make_dataset("flight", n_rows=10, n_attrs=4)
        with pytest.raises(ValueError):
            split_stream(relation, 0)
        with pytest.raises(ValueError):
            split_stream(relation, 2, base_fraction=0.0)

    def test_deterministic(self):
        one = stream_batches("ncvoter", n_rows=60, n_attrs=5, seed=9,
                             n_batches=4)
        two = stream_batches("ncvoter", n_rows=60, n_attrs=5, seed=9,
                             n_batches=4)
        assert one[0] == two[0]
        assert all(a == b for a, b in zip(one[1], two[1]))


class TestDriftingStream:
    def test_early_batches_are_clean(self):
        base, batches = drifting_stream(
            "flight", n_rows=80, n_attrs=5, n_batches=4,
            drift_after=0.5, drift=0.5)
        _, clean = stream_batches("flight", n_rows=80, n_attrs=5,
                                  n_batches=4)
        assert batches[0] == clean[0]
        assert batches[1] == clean[1]

    def test_drift_changes_late_batches(self):
        base, batches = drifting_stream(
            "flight", n_rows=80, n_attrs=5, n_batches=4,
            drift_after=0.5, drift=0.5)
        _, clean = stream_batches("flight", n_rows=80, n_attrs=5,
                                  n_batches=4)
        assert batches[2] != clean[2] or batches[3] != clean[3]

    def test_drift_invalidates_discovered_ods(self):
        base, batches = drifting_stream(
            "flight", n_rows=200, n_attrs=6, n_batches=6,
            drift_after=0.3, drift=0.1)
        before = {str(od) for od in FastOD(base).run().all_ods}
        accumulated = base
        for batch in batches:
            accumulated = accumulated.concat(batch)
        after = {str(od) for od in FastOD(accumulated).run().all_ods}
        assert before - after, "drift should invalidate some ODs"

    def test_zero_drift_is_clean(self):
        one = drifting_stream("dbtesma", n_rows=60, n_attrs=5,
                              n_batches=4, drift=0.0)
        two = stream_batches("dbtesma", n_rows=60, n_attrs=5,
                             n_batches=4)
        assert all(a == b for a, b in zip(one[1], two[1]))
