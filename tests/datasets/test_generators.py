"""Dataset generators: planted dependencies, determinism, shapes."""

from __future__ import annotations

import pytest

from repro import CanonicalValidator, parse
from repro.datasets import (
    date_dim,
    date_dim_planted,
    dataset_names,
    dbtesma_like,
    dbtesma_planted,
    employees,
    flight_like,
    flight_planted,
    hepatitis_like,
    make_dataset,
    ncvoter_like,
    ncvoter_planted,
    web_sales,
)
from repro.errors import ReproError


class TestEmployees:
    def test_table1_shape(self):
        rel = employees()
        assert rel.n_rows == 6
        assert rel.arity == 9
        assert rel.names[0] == "ID"

    def test_exact_values(self):
        rel = employees()
        assert rel.row(0) == (10, 16, "secr", 1, 5000, 20, 1000, "A", "III")


@pytest.mark.parametrize("generator,planted,kwargs", [
    (flight_like, flight_planted, {"n_rows": 300, "n_attrs": 10}),
    (ncvoter_like, ncvoter_planted, {"n_rows": 300, "n_attrs": 10}),
    (dbtesma_like, dbtesma_planted, {"n_rows": 300, "n_attrs": 10}),
])
class TestSyntheticFamilies:
    def test_planted_dependencies_hold(self, generator, planted, kwargs):
        rel = generator(**kwargs)
        validator = CanonicalValidator(rel.encode())
        for text in planted(kwargs["n_attrs"]):
            assert validator.holds(parse(text)), text

    def test_deterministic(self, generator, planted, kwargs):
        assert generator(**kwargs) == generator(**kwargs)

    def test_seed_changes_data(self, generator, planted, kwargs):
        first = generator(seed=1, **kwargs)
        second = generator(seed=2, **kwargs)
        assert first != second

    def test_requested_shape(self, generator, planted, kwargs):
        rel = generator(**kwargs)
        assert rel.n_rows == kwargs["n_rows"]
        assert rel.arity == kwargs["n_attrs"]


class TestWidthExtension:
    @pytest.mark.parametrize("generator", [
        flight_like, ncvoter_like, dbtesma_like, hepatitis_like])
    def test_wide_schemas(self, generator):
        rel = generator(n_rows=50, n_attrs=25)
        assert rel.arity == 25
        assert len(set(rel.names)) == 25

    @pytest.mark.parametrize("generator", [flight_like, dbtesma_like])
    def test_narrow_schemas(self, generator):
        rel = generator(n_rows=50, n_attrs=3)
        assert rel.arity == 3


class TestHepatitis:
    def test_mostly_small_domains(self):
        rel = hepatitis_like(155, 20)
        domains = [len(set(rel.column(name))) for name in rel.names]
        assert sum(1 for d in domains if d <= 3) >= 15

    def test_fd_rich_when_narrow_rows(self):
        from repro.baselines import discover_fds

        rel = hepatitis_like(40, 8)
        result = discover_fds(rel)
        assert result.n_fds > 0


class TestTpcds:
    def test_date_dim_planted(self):
        validator = CanonicalValidator(date_dim(500).encode())
        for text in date_dim_planted():
            assert validator.holds(parse(text)), text

    def test_date_dim_covers_years(self):
        rel = date_dim(731)
        assert set(rel.column("d_year")) == {2010, 2011, 2012}

    def test_web_sales_keys_reference_dim(self):
        dim = date_dim(100)
        fact = web_sales(200, 100)
        dim_keys = set(dim.column("d_date_sk"))
        assert set(fact.column("ws_sold_date_sk")) <= dim_keys


class TestRegistry:
    def test_names(self):
        assert "flight" in dataset_names()
        assert "employees" in dataset_names()

    def test_make_dataset(self):
        rel = make_dataset("flight", n_rows=100, n_attrs=6, seed=1)
        assert rel.n_rows == 100 and rel.arity == 6

    def test_fixed_shape_families(self):
        assert make_dataset("employees").n_rows == 6

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_dataset("nope")
