"""Bidirectional ODs: directed specs, validators, discovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.od import ListOD
from repro.core.validation import list_od_holds
from repro.errors import DependencyError
from repro.extensions import (
    BidirectionalOD,
    Direction,
    bidirectional_ocd_holds,
    bidirectional_od_holds,
    directed,
    discover_bidirectional_ocds,
)
from tests.conftest import make_relation, small_relations


class TestDirectedSpecs:
    def test_parse_strings(self):
        spec = directed("a", "b desc", ("c", "asc"))
        assert [str(d) for d in spec] == ["a asc", "b desc", "c asc"]

    def test_bad_inputs(self):
        with pytest.raises(DependencyError):
            directed("a b c")
        with pytest.raises(DependencyError):
            directed(42)

    def test_flip(self):
        assert Direction.ASC.flipped is Direction.DESC
        assert Direction.DESC.flipped is Direction.ASC

    def test_od_str(self):
        od = BidirectionalOD(directed("a"), directed("b desc"))
        assert str(od) == "[a asc] -> [b desc]"


class TestBidirectionalValidator:
    def test_ascending_matches_plain_od(self):
        relation = make_relation(2, [(1, 10), (2, 20), (3, 15)])
        plain = list_od_holds(relation, ListOD(["c0"], ["c1"]))
        bi = bidirectional_od_holds(
            relation, BidirectionalOD(directed("c0"), directed("c1")))
        assert plain == bi

    def test_inverse_column(self):
        relation = make_relation(2, [(1, 30), (2, 20), (3, 10)])
        asc = BidirectionalOD(directed("c0"), directed("c1"))
        desc = BidirectionalOD(directed("c0"), directed("c1 desc"))
        assert not bidirectional_od_holds(relation, asc)
        assert bidirectional_od_holds(relation, desc)

    def test_mixed_directions(self):
        rows = [(1, 9, 100), (2, 8, 200), (3, 7, 300)]
        relation = make_relation(3, rows)
        od = BidirectionalOD(
            directed("c0"), directed("c1 desc", "c2"))
        assert bidirectional_od_holds(relation, od)

    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_asc_asc_equals_unidirectional(self, relation):
        names = list(relation.names)
        od = ListOD([names[0]], names[1:2] or [names[0]])
        bi = BidirectionalOD(directed(names[0]),
                             directed(*(names[1:2] or [names[0]])))
        assert list_od_holds(relation, od) == \
            bidirectional_od_holds(relation, bi)


class TestBidirectionalOcd:
    def test_same_direction(self):
        relation = make_relation(2, [(1, 10), (2, 20)])
        assert bidirectional_ocd_holds(relation, [], "c0", "c1", True)
        assert not bidirectional_ocd_holds(relation, [], "c0", "c1", False)

    def test_opposite_direction(self):
        relation = make_relation(2, [(1, 20), (2, 10)])
        assert bidirectional_ocd_holds(relation, [], "c0", "c1", False)
        assert not bidirectional_ocd_holds(relation, [], "c0", "c1", True)

    def test_contextual(self):
        rows = [(0, 1, 2), (0, 2, 1), (1, 1, 1), (1, 2, 2)]
        relation = make_relation(3, rows)
        # within c0=0 the pair is inversely ordered; within c0=1 direct
        assert not bidirectional_ocd_holds(
            relation, ["c0"], "c1", "c2", True)
        assert not bidirectional_ocd_holds(
            relation, ["c0"], "c1", "c2", False)


class TestDiscovery:
    def test_finds_opposite_pair(self):
        rows = [(i, 100 - i, i % 2) for i in range(20)]
        relation = make_relation(3, rows)
        result = discover_bidirectional_ocds(relation, max_context=0)
        rendered = {str(o) for o in result.ocds}
        assert "{}: c0 ~desc c1" in rendered
        assert any(o for o in result.opposite_only
                   if {o.left, o.right} == {"c0", "c1"})

    def test_constants_pruned(self):
        relation = make_relation(2, [(5, 1), (5, 2)])
        result = discover_bidirectional_ocds(relation, max_context=0)
        assert result.ocds == []  # c0 constant => nothing minimal

    def test_minimality_subset_contexts(self):
        rows = [(0, 1, 2), (0, 2, 3), (1, 3, 1), (1, 4, 2)]
        relation = make_relation(3, rows)
        result = discover_bidirectional_ocds(relation, max_context=1)
        seen = [(o.left, o.right, o.same_direction, tuple(sorted(o.context)))
                for o in result.ocds]
        assert len(seen) == len(set(seen))
        # if a pair holds with empty context it must not reappear with
        # a larger one for the same polarity
        empties = {(left, right, same)
                   for left, right, same, ctx in seen if not ctx}
        for left, right, same, ctx in seen:
            if ctx:
                assert (left, right, same) not in empties

    def test_ncvoter_age_birth_year(self):
        from repro.datasets import ncvoter_like

        relation = ncvoter_like(150, 8)
        result = discover_bidirectional_ocds(relation, max_context=0)
        opposite = {(o.left, o.right) for o in result.opposite_only}
        assert ("age", "birth_year") in opposite
