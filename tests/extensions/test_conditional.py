"""Conditional OD discovery: genuine conditionals only, verified."""

from __future__ import annotations

from hypothesis import given, settings

from repro.extensions import (
    condition_text,
    discover_conditional_ods,
    verify_conditional,
)
from tests.conftest import make_relation, small_relations


def _partitioned_relation():
    """c1 ~ c2 holds within each c0 group but not globally; within
    c0=1 the pair is inverted so only the c0=0 fragment carries it."""
    rows = []
    for i in range(30):
        rows.append((0, i, i + 100))      # direct order
    for i in range(30):
        rows.append((1, i, -i))           # inverted order
    return make_relation(3, rows)


class TestDiscovery:
    def test_finds_fragment_ocd(self):
        relation = _partitioned_relation()
        result = discover_conditional_ods(relation, min_support=0.2)
        rendered = {(condition_text(c.condition), str(c.od))
                    for c in result.ods}
        assert ("c0=0", "{}: c1 ~ c2") in rendered

    def test_global_ods_excluded(self):
        # c1 ~ c2 globally: nothing conditional about it
        rows = [(i % 2, i, i) for i in range(20)]
        relation = make_relation(3, rows)
        result = discover_conditional_ods(relation, min_support=0.2)
        assert not any(str(c.od) == "{}: c1 ~ c2" for c in result.ods)

    def test_condition_attribute_artifacts_excluded(self):
        relation = _partitioned_relation()
        result = discover_conditional_ods(relation, min_support=0.2)
        for conditional in result.ods:
            condition_attrs = {a for a, _ in conditional.condition}
            od = conditional.od
            involved = set(od.context)
            involved |= ({od.attribute}
                         if hasattr(od, "attribute")
                         else {od.left, od.right})
            assert not involved & condition_attrs

    def test_support_reported(self):
        relation = _partitioned_relation()
        result = discover_conditional_ods(relation, min_support=0.2)
        assert all(0.2 <= c.support <= 1.0 for c in result.ods)

    def test_min_support_filters_fragments(self):
        rows = [(0, 1, 2)] * 18 + [(1, 5, 6), (1, 6, 5)]
        relation = make_relation(3, rows)
        result = discover_conditional_ods(relation, min_support=0.5)
        # the c0=1 fragment has support 0.1 and must never be examined
        assert all(("c0", 1) not in c.condition for c in result.ods)
        assert all(c.support >= 0.5 for c in result.ods)

    def test_wide_domains_not_used_as_conditions(self):
        # c0 is a key: too many values to condition on
        rows = [(i, i % 3, i % 5) for i in range(30)]
        relation = make_relation(3, rows)
        result = discover_conditional_ods(
            relation, min_support=0.01, max_condition_domain=5)
        assert all(attr != "c0"
                   for c in result.ods
                   for attr, _ in c.condition)

    def test_conjunctions(self):
        rows = []
        for i in range(12):
            rows.append((0, 0, i, i))       # direct within (0,0)
            rows.append((0, 1, i, -i))      # inverted elsewhere
            rows.append((1, 0, i, -i))
            rows.append((1, 1, i, -i))
        relation = make_relation(4, rows)
        result = discover_conditional_ods(
            relation, min_support=0.2, max_conjuncts=2)
        wanted = [c for c in result.ods
                  if len(c.condition) == 2 and str(c.od) == "{}: c2 ~ c3"]
        assert wanted
        assert wanted[0].condition == (("c0", 0), ("c1", 0))

    @settings(max_examples=25, deadline=None)
    @given(small_relations(max_cols=3, max_rows=10, max_domain=2))
    def test_everything_reported_verifies(self, relation):
        result = discover_conditional_ods(relation, min_support=0.2)
        for conditional in result.ods:
            assert verify_conditional(relation, conditional), \
                str(conditional)


class TestVerifyConditional:
    def test_rejects_global(self):
        from repro.core.od import CanonicalOCD
        from repro.extensions.conditional import ConditionalOD

        rows = [(0, i, i) for i in range(6)]
        relation = make_relation(3, rows)
        bogus = ConditionalOD(
            (("c0", 0),), CanonicalOCD(frozenset(), "c1", "c2"), 1.0)
        # holds on the fragment but also globally => not conditional
        assert not verify_conditional(relation, bogus)

    def test_condition_text(self):
        assert condition_text((("a", 1), ("b", "x"))) == "a=1 AND b='x'"
