"""Pointwise ODs: dominance semantics and their relationship to the
paper's lexicographic ODs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import ListOD
from repro.core.validation import list_od_holds
from repro.extensions import (
    PointwiseOD,
    discover_pointwise_ods,
    find_dominance_violation,
    pointwise_od_holds,
)
from tests.conftest import make_relation, small_relations


def _brute_holds(relation, od: PointwiseOD) -> bool:
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    lhs = [encoded.column(index[n]) for n in sorted(od.lhs)]
    rhs = [encoded.column(index[n]) for n in sorted(od.rhs)]
    n = relation.n_rows
    for s in range(n):
        for t in range(n):
            if all(col[s] <= col[t] for col in lhs) and \
                    not all(col[s] <= col[t] for col in rhs):
                return False
    return True


class TestSemantics:
    def test_monotone_pair(self):
        relation = make_relation(2, [(1, 10), (2, 20), (3, 30)])
        assert pointwise_od_holds(
            relation, PointwiseOD(frozenset({"c0"}), frozenset({"c1"})))

    def test_violated_by_inversion(self):
        relation = make_relation(2, [(1, 20), (2, 10)])
        od = PointwiseOD(frozenset({"c0"}), frozenset({"c1"}))
        assert not pointwise_od_holds(relation, od)
        witness = find_dominance_violation(relation, od)
        assert witness is not None

    def test_ties_must_agree(self):
        # pointwise: s <= t AND t <= s on X forces both orders on Y
        relation = make_relation(2, [(1, 5), (1, 6)])
        od = PointwiseOD(frozenset({"c0"}), frozenset({"c1"}))
        assert not pointwise_od_holds(relation, od)

    def test_empty_lhs_needs_constants(self):
        constant = make_relation(2, [(1, 7), (2, 7)])
        varying = make_relation(2, [(1, 7), (2, 8)])
        od = PointwiseOD(frozenset(), frozenset({"c1"}))
        assert pointwise_od_holds(constant, od)
        assert not pointwise_od_holds(varying, od)

    def test_multi_attribute_lhs_weaker(self):
        # {c0} -> {c2} fails, but {c0,c1} -> {c2} holds: fewer pairs
        # are dominated on two attributes.
        relation = make_relation(3, [(1, 2, 10), (2, 1, 5)])
        assert not pointwise_od_holds(
            relation, PointwiseOD(frozenset({"c0"}), frozenset({"c2"})))
        assert pointwise_od_holds(
            relation,
            PointwiseOD(frozenset({"c0", "c1"}), frozenset({"c2"})))

    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2),
           st.data())
    def test_matches_bruteforce(self, relation, data):
        names = list(relation.names)
        lhs_size = data.draw(st.integers(0, len(names)))
        rhs_size = data.draw(st.integers(1, len(names)))
        lhs = frozenset(data.draw(st.permutations(names))[:lhs_size])
        rhs = frozenset(data.draw(st.permutations(names))[:rhs_size])
        od = PointwiseOD(lhs, rhs)
        assert pointwise_od_holds(relation, od) == \
            _brute_holds(relation, od)
        witness = find_dominance_violation(relation, od)
        assert (witness is None) == _brute_holds(relation, od)


class TestRelationToLexicographic:
    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=2, max_rows=8, max_domain=3))
    def test_coincide_on_single_attributes(self, relation):
        """For |X| = |Y| = 1 the two OD notions are the same relation
        (both say: A-order implies B-order, ties forced)."""
        if relation.arity < 2:
            return
        a, b = relation.names[0], relation.names[1]
        lex = list_od_holds(relation, ListOD([a], [b]))
        point = pointwise_od_holds(
            relation, PointwiseOD(frozenset({a}), frozenset({b})))
        assert lex == point

    def test_diverge_beyond_singletons(self):
        """The notions diverge on composite left sides: rows that are
        pointwise *incomparable* (c0 up, c1 down) still have a strict
        lexicographic order, so the lexicographic OD can fail while the
        pointwise one holds vacuously — the paper's §2.1 distinction."""
        relation = make_relation(3, [(1, 9, 20), (2, 1, 10)])
        lex = list_od_holds(relation, ListOD(["c0", "c1"], ["c2"]))
        point = pointwise_od_holds(
            relation,
            PointwiseOD(frozenset({"c0", "c1"}), frozenset({"c2"})))
        assert not lex
        assert point


class TestDiscovery:
    def test_finds_monotone_pairs(self):
        relation = make_relation(2, [(1, 10), (2, 20), (3, 30)])
        result = discover_pointwise_ods(relation)
        rendered = {str(od) for od in result.ods}
        assert "{c0} pointwise-> {c1}" in rendered
        assert "{c1} pointwise-> {c0}" in rendered

    def test_minimality_smaller_lhs_wins(self):
        relation = make_relation(3, [(1, 1, 10), (2, 2, 20), (3, 3, 30)])
        result = discover_pointwise_ods(relation, max_lhs=2)
        # {c0} -> {c2} holds, so {c0,c1} -> {c2} must be pruned
        lhs_for_c2 = [od.lhs for od in result.ods
                      if od.rhs == frozenset({"c2"})]
        assert frozenset({"c0"}) in lhs_for_c2
        assert frozenset({"c0", "c1"}) not in lhs_for_c2

    @settings(max_examples=30, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_everything_reported_holds(self, relation):
        for od in discover_pointwise_ods(relation, max_lhs=2).ods:
            assert pointwise_od_holds(relation, od), str(od)
