"""Extensions on the unified engine == their pre-engine standalones.

The bidirectional/conditional/pointwise sweeps were ported onto the
planner/executor engine (candidate batches per level, resolved through
``run_validations``).  These property tests pin the port to reference
implementations that replicate the pre-refactor standalone algorithms
verbatim (direct per-candidate kernel calls, no batching), and assert
the ported code matches them — including under ``workers=2``, where
the same batches shard over the worker pool.
"""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings

from repro.core.validation import (
    is_compatible_in_classes,
    is_constant_in_classes,
)
from repro.extensions import (
    PointwiseOD,
    discover_bidirectional_ocds,
    discover_conditional_ods,
    discover_pointwise_ods,
    pointwise_od_holds,
)
from repro.partitions.cache import PartitionCache
from repro.relation.schema import bit_count, iter_bits
from tests.conftest import make_relation, random_relation, small_relations

WORKER_COUNTS = [None, 2]


# ----------------------------------------------------------------------
# reference implementations (the pre-engine standalone algorithms)
# ----------------------------------------------------------------------
def reference_bidirectional(relation, max_context):
    encoded = relation.encode()
    cache = PartitionCache(encoded)
    names = encoded.names
    arity = encoded.arity
    found = []
    emitted = {}
    constant_at = {}

    def covered(store, key, context_mask):
        return any(prior & context_mask == prior
                   for prior in store.get(key, []))

    for context_mask in sorted(range(1 << arity), key=bit_count):
        if bit_count(context_mask) > max_context:
            break
        partition = cache.get(context_mask)
        context = frozenset(names[i] for i in iter_bits(context_mask))
        outside = [a for a in range(arity)
                   if not context_mask & (1 << a)]
        for attribute in outside:
            if covered(constant_at, attribute, context_mask):
                continue
            if is_constant_in_classes(encoded.column(attribute),
                                      partition):
                constant_at.setdefault(attribute, []).append(
                    context_mask)
        for a, b in combinations(outside, 2):
            if covered(constant_at, a, context_mask) \
                    or covered(constant_at, b, context_mask):
                continue
            for same in (True, False):
                key = (a, b, same)
                if covered(emitted, key, context_mask):
                    continue
                column_b = (encoded.column(b) if same
                            else -encoded.column(b))
                if is_compatible_in_classes(encoded.column(a),
                                            column_b, partition):
                    found.append((context, names[a], names[b], same))
                    emitted.setdefault(key, []).append(context_mask)
    return found


def reference_pointwise(relation, max_lhs):
    names = relation.names
    found = []
    for size in range(1, min(max_lhs, len(names)) + 1):
        for lhs in combinations(names, size):
            for target in names:
                if target in lhs:
                    continue
                if any(prior.rhs == frozenset({target})
                       and prior.lhs < frozenset(lhs)
                       for prior in found):
                    continue
                od = PointwiseOD(frozenset(lhs), frozenset({target}))
                if pointwise_od_holds(relation, od):
                    found.append(od)
    return found


# ----------------------------------------------------------------------
# equivalence properties
# ----------------------------------------------------------------------
class TestBidirectionalEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_matches_reference(self, relation):
        expected = reference_bidirectional(relation, max_context=1)
        result = discover_bidirectional_ocds(relation, max_context=1)
        got = [(o.context, o.left, o.right, o.same_direction)
               for o in result.ocds]
        assert got == expected
        assert not result.timed_out

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", range(3))
    def test_workers_match_reference(self, seed, workers):
        relation = random_relation(seed + 40, n_cols=4, n_rows=60,
                                   domain=3)
        expected = reference_bidirectional(relation, max_context=2)
        result = discover_bidirectional_ocds(relation, max_context=2,
                                             workers=workers)
        got = [(o.context, o.left, o.right, o.same_direction)
               for o in result.ocds]
        assert got == expected

    def test_exposes_executor_stats(self):
        relation = random_relation(7, n_cols=3, n_rows=20, domain=2)
        result = discover_bidirectional_ocds(relation, max_context=1)
        assert result.executor_stats is not None
        # backend follows $REPRO_WORKERS (serial by default)
        assert result.executor_stats["backend"] in ("serial", "pool")


class TestPointwiseEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_matches_reference(self, relation):
        expected = reference_pointwise(relation, max_lhs=2)
        result = discover_pointwise_ods(relation, max_lhs=2)
        assert result.ods == expected
        assert not result.timed_out

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", range(3))
    def test_workers_match_reference(self, seed, workers):
        relation = random_relation(seed + 50, n_cols=5, n_rows=40,
                                   domain=3)
        expected = reference_pointwise(relation, max_lhs=2)
        result = discover_pointwise_ods(relation, max_lhs=2,
                                        workers=workers)
        assert result.ods == expected

    def test_every_emitted_od_holds(self):
        relation = random_relation(9, n_cols=4, n_rows=30, domain=2)
        result = discover_pointwise_ods(relation, max_lhs=2, workers=2)
        for od in result.ods:
            assert pointwise_od_holds(relation, od), str(od)


class TestConditionalEquivalence:
    """Conditional discovery re-runs FASTOD per fragment; on the
    engine, its outputs must be invariant to the worker count and its
    conditionals must still verify."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_workers_invariant(self, workers):
        rows = [(0, i, i + 100) for i in range(25)]
        rows += [(1, i, -i) for i in range(25)]
        relation = make_relation(3, rows)
        serial = discover_conditional_ods(relation, min_support=0.2)
        ported = discover_conditional_ods(relation, min_support=0.2,
                                          workers=workers)
        assert [str(c) for c in ported.ods] == \
            [str(c) for c in serial.ods]
        assert ported.n_fragments_examined == \
            serial.n_fragments_examined

    @settings(max_examples=15, deadline=None)
    @given(small_relations(max_cols=3, max_rows=10, max_domain=2))
    def test_workers2_matches_serial(self, relation):
        serial = discover_conditional_ods(relation, min_support=0.2)
        pooled = discover_conditional_ods(relation, min_support=0.2,
                                          workers=2)
        assert [str(c) for c in pooled.ods] == \
            [str(c) for c in serial.ods]
