"""Serial vs parallel engines must be byte-identical.

The property the whole parallel subsystem is built around: for any
relation, any `FastODConfig` ablation, and any worker count, the
discovered FD/OCD sets (and the per-level candidate counters) equal the
``workers=1`` run's exactly.  Thresholds are forced to 0 here so even
tiny relations really dispatch through the pool.
"""

from __future__ import annotations

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.core.hybrid import hybrid_discover
from repro.core.results import DiscoveryResult
from repro.core.validation import CanonicalValidator
from repro.datasets import employees, make_dataset
from repro.incremental import IncrementalFastOD
from repro.parallel.pool import resolve_workers
from repro.relation.table import Relation
from tests.conftest import make_relation

WORKER_COUNTS = [2, 4]


def od_strings(result: DiscoveryResult):
    return (sorted(str(od) for od in result.fds),
            sorted(str(od) for od in result.ocds))


def assert_identical(serial: DiscoveryResult,
                     parallel: DiscoveryResult) -> None:
    assert od_strings(serial) == od_strings(parallel)
    assert len(serial.level_stats) == len(parallel.level_stats)
    for left, right in zip(serial.level_stats, parallel.level_stats):
        assert left.n_nodes == right.n_nodes
        assert left.n_fd_candidates == right.n_fd_candidates
        assert left.n_ocd_candidates == right.n_ocd_candidates
        assert left.n_fds_found == right.n_fds_found
        assert left.n_ocds_found == right.n_ocds_found
        assert left.n_nodes_pruned == right.n_nodes_pruned


def run(relation: Relation, workers: int, **config_kwargs):
    config = FastODConfig(workers=workers,
                          parallel_min_grouped_rows=0, **config_kwargs)
    return FastOD(relation, config).run()


RELATIONS = {
    "employees": lambda: employees(),
    "flight": lambda: make_dataset("flight", n_rows=400, n_attrs=6,
                                   seed=11),
    "ncvoter": lambda: make_dataset("ncvoter", n_rows=300, n_attrs=5,
                                    seed=5),
    "tiny": lambda: make_relation(3, [(1, 2, 1), (1, 2, 2), (2, 1, 1),
                                      (2, 3, 2), (3, 1, 3)]),
}


class TestDiscoveryIdentity:
    @pytest.mark.parametrize("name", sorted(RELATIONS))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_default_config(self, name, workers):
        relation = RELATIONS[name]()
        assert_identical(run(relation, 1), run(relation, workers))

    @pytest.mark.parametrize("toggle", [
        {"minimality_pruning": False, "level_pruning": False},
        {"level_pruning": False},
        {"key_pruning": False},
        {"max_level": 3},
    ])
    def test_ablation_toggles(self, toggle):
        relation = RELATIONS["flight"]()
        assert_identical(run(relation, 1, **toggle),
                         run(relation, 2, **toggle))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_zero_row_relation(self, workers):
        relation = Relation.from_rows(["a", "b", "c"], [])
        assert_identical(run(relation, 1), run(relation, workers))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_one_row_relation(self, workers):
        relation = Relation.from_rows(["a", "b", "c"], [(1, 2, 3)])
        assert_identical(run(relation, 1), run(relation, workers))

    def test_injected_pool_is_reused_across_runs(self):
        from repro.parallel.pool import WorkerPool

        relation = RELATIONS["flight"]()
        encoded = relation.encode()
        serial = run(relation, 1)
        with WorkerPool(encoded, 2) as pool:
            for _ in range(2):
                config = FastODConfig(workers=2,
                                      parallel_min_grouped_rows=0)
                result = FastOD(relation, config, pool=pool).run()
                assert_identical(serial, result)
            assert pool.stats()["n_dispatches"] > 0

    def test_pool_must_wrap_same_encoding(self):
        from repro.parallel.pool import WorkerPool

        relation = RELATIONS["tiny"]()
        other = RELATIONS["employees"]()
        with WorkerPool(other.encode(), 2) as pool:
            with pytest.raises(ValueError):
                FastOD(relation, FastODConfig(workers=2), pool=pool)


class TestHybridIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_serial_hybrid_and_fastod(self, workers,
                                              monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module, "PARALLEL_MIN_ROWS", 0)
        relation = make_dataset("flight", n_rows=600, n_attrs=6, seed=3)
        baseline = FastOD(relation).run()
        serial = hybrid_discover(relation, workers=1)
        parallel = hybrid_discover(relation, workers=workers)
        assert od_strings(serial) == od_strings(baseline)
        assert od_strings(parallel) == od_strings(baseline)


class TestIncrementalIdentity:
    def test_pooled_append_path_matches_oracle(self):
        base = make_dataset("flight", n_rows=300, n_attrs=5, seed=2)
        batches = [list(make_dataset("flight", n_rows=40, n_attrs=5,
                                     seed=100 + i).rows())
                   for i in range(3)]
        config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
        engine = IncrementalFastOD(
            Relation.from_rows(base.names, list(base.rows())), config,
            verify_with_oracle=True)   # oracle asserts identity per batch
        try:
            for batch in batches:
                engine.append(batch)
        finally:
            engine.close()


class TestValidatorWorkers:
    def test_class_sharded_scans_agree(self, monkeypatch):
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module, "PARALLEL_MIN_GROUPED_ROWS", 0)
        relation = make_dataset("flight", n_rows=400, n_attrs=5, seed=8)
        serial = CanonicalValidator(relation.encode())
        pooled = CanonicalValidator(relation.encode(), workers=2)
        try:
            result = FastOD(relation).run()
            dependencies = result.all_ods
            assert dependencies
            for od in dependencies:
                assert pooled.holds(od) is True
                assert serial.holds(od) is True
            # and a dependency that (almost surely) fails
            from repro.core.parser import parse
            bad = parse("{%s}: [] -> %s" % (relation.names[1],
                                            relation.names[0]))
            assert pooled.holds(bad) == serial.holds(bad)
        finally:
            pooled.close()


class TestTimeoutPrecision:
    def test_expired_deadline_skips_ocd_phase(self, monkeypatch):
        """When the budget dies with the FD phase, the OCD scans of the
        level must not start: FDs found so far are kept, no OCD is
        emitted, and the run is flagged timed out."""
        from repro.engine import DeadlineBudget

        relation = employees()
        calls = {"n": 0}
        # budget checks before level 2's FD/OCD phase boundary:
        # level 1 FD phase (one per node = arity), the serial products
        # building level 2 (one per pair), then level 2's FD phase
        # (one per node = pairs); the next check is the boundary one —
        # make it the first to fire.
        arity = relation.arity
        level2_nodes = arity * (arity - 1) // 2
        boundary_call = arity + 2 * level2_nodes + 1

        def fake_hit(self):
            calls["n"] += 1
            return calls["n"] >= boundary_call

        monkeypatch.setattr(DeadlineBudget, "hit", fake_hit)
        result = FastOD(relation,
                        FastODConfig(timeout_seconds=1e9)).run()
        assert result.timed_out
        assert result.ocds == []
        # the employees instance has level-2 FDs; the FD phase ran
        assert any(len(fd.context) == 1 for fd in result.fds)

    def test_zero_timeout_returns_promptly(self):
        result = FastOD(employees(),
                        FastODConfig(timeout_seconds=0.0)).run()
        assert result.timed_out

    def test_workers_honour_cooperative_deadline(self):
        import time

        from repro.parallel.pool import WorkerPool

        relation = make_dataset("flight", n_rows=300, n_attrs=5, seed=4)
        encoded = relation.encode()
        from repro.partitions.partition import StrippedPartition
        context = StrippedPartition.single_class(encoded.n_rows)
        tasks = [((a, b), 0, "swap", a, b)
                 for a in range(5) for b in range(a + 1, 5)]
        with WorkerPool(encoded, 2) as pool:
            verdicts, timed_out = pool.run_scans(
                {0: context}, tasks,
                deadline=time.perf_counter() - 10.0)   # already expired
        assert timed_out
        assert verdicts == {}


class TestPeakMemoryAccounting:
    def test_level_stats_expose_peak_partition_bytes(self):
        result = FastOD(make_dataset("flight", n_rows=200, n_attrs=5,
                                     seed=1)).run()
        assert result.level_stats
        assert all(s.peak_partition_bytes >= 0
                   for s in result.level_stats)
        assert any(s.peak_partition_bytes > 0
                   for s in result.level_stats)
        payload = result.to_dict()
        assert all("peak_partition_bytes" in level
                   for level in payload["levels"])

    def test_serialize_round_trips_peak_bytes(self):
        from repro.core.serialize import result_from_dict, result_to_dict

        result = FastOD(employees()).run()
        reloaded = result_from_dict(result_to_dict(result))
        assert ([s.peak_partition_bytes for s in reloaded.level_stats]
                == [s.peak_partition_bytes for s in result.level_stats])

    def test_bounded_cache_drops_spent_levels(self):
        from repro.partitions.cache import PartitionCache

        relation = make_dataset("flight", n_rows=200, n_attrs=6, seed=9)
        encoded = relation.encode()
        cache = PartitionCache(encoded, max_entries=1000)
        result = FastOD(relation, FastODConfig(), cache=cache).run()
        assert len(result.level_stats) >= 4
        # size-2 contexts are consumed for the last time by level 4's
        # OCD scans; the engine must have invalidated (at least the
        # unpruned ones) from the bounded cache afterwards
        size2 = [m for m in range(1, 1 << encoded.arity)
                 if bin(m).count("1") == 2]
        assert any(cache.peek(mask) is None for mask in size2)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 1

    def test_clamps_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1

    def test_config_to_dict_carries_workers(self):
        config = FastODConfig(workers=4, parallel_min_grouped_rows=0)
        payload = config.to_dict()
        assert payload["workers"] == 4
        assert payload["parallel_min_grouped_rows"] == 0
