"""Concurrent service jobs on ONE injected WorkerPool == direct API.

The service scheduler runs every job — discover, append, validate —
on a single shared :class:`WorkerPool`, rebasing it between jobs.
This extends the serial-vs-parallel identity harness one level up:
an *interleaved job stream* (discover A, append B, discover B,
append A, ...) executed at ``workers=2`` through the scheduler must
produce byte-identical FD/OCD sets to running each operation alone
through the direct API with ``workers=1``.

Thresholds are forced to 0 via the per-job config, so even these
small relations really dispatch through the pool.
"""

from __future__ import annotations

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.incremental import IncrementalFastOD
from repro.server.catalog import DatasetCatalog
from repro.server.jobs import JobScheduler
from repro.server.store import ResultStore

POOL_CONFIG = {"parallel_min_grouped_rows": 0}


def od_strings(result_dict):
    return (result_dict["fds"], result_dict["ocds"])


def direct_serial(relation, **config_kwargs):
    """The oracle: a workers=1 direct-API run."""
    return FastOD(relation, FastODConfig(
        workers=1, **config_kwargs)).run().to_dict()


@pytest.fixture
def scheduler():
    catalog = DatasetCatalog()
    sched = JobScheduler(catalog, ResultStore(), workers=2)
    yield sched
    sched.close()


def relations():
    return {
        "flight": make_dataset("flight", n_rows=400, n_attrs=6,
                               seed=11),
        "ncvoter": make_dataset("ncvoter", n_rows=300, n_attrs=5,
                                seed=5),
    }


class TestInterleavedJobsIdentity:
    def test_discover_jobs_interleaved_across_datasets(self, scheduler):
        """Back-to-back discoveries of different relations force pool
        rebases between jobs; results must match serial oracles."""
        rels = relations()
        fps = {name: scheduler._catalog.register(rel).fingerprint
               for name, rel in rels.items()}
        # submit everything up front: the queue interleaves datasets
        jobs = []
        for _ in range(2):
            for name, fp in fps.items():
                jobs.append((name, scheduler.submit(
                    "discover", fp, {"config": dict(POOL_CONFIG)})))
        for name, job in jobs:
            scheduler.wait(job.id, timeout=300)
            assert job.status == "done", job.error
            oracle = direct_serial(rels[name],
                                   parallel_min_grouped_rows=0)
            assert od_strings(job.payload["result"]) == od_strings(
                oracle)
        # the pool really ran: at least one non-cached job dispatched
        # pooled tasks
        pooled = [job for _, job in jobs if not job.cached]
        assert pooled
        assert any(
            sum(phase["pool_tasks"]
                for phase in job.executor_stats["phases"].values()) > 0
            for job in pooled)
        # repeats were store hits, not re-traversals
        assert [job for _, job in jobs if job.cached]

    def test_interleaved_discover_and_append(self, scheduler):
        """discover A, append B, discover B', append A, discover A' —
        one pool, many rebases — equals direct-API runs."""
        flight = make_dataset("flight", n_rows=400, n_attrs=6, seed=11)
        voters = make_dataset("ncvoter", n_rows=300, n_attrs=5, seed=5)
        batch_f = [list(flight.row(i)) for i in range(5)]
        batch_v = [list(voters.row(i)) for i in range(5)]

        fp_f = scheduler._catalog.register(flight).fingerprint
        fp_v = scheduler._catalog.register(voters).fingerprint

        d1 = scheduler.submit("discover", fp_f,
                              {"config": dict(POOL_CONFIG)})
        a1 = scheduler.submit("append", fp_v,
                              {"rows": batch_v,
                               "config": dict(POOL_CONFIG)})
        a2 = scheduler.submit("append", fp_f,
                              {"rows": batch_f,
                               "config": dict(POOL_CONFIG)})
        for job in (d1, a1, a2):
            scheduler.wait(job.id, timeout=300)
            assert job.status == "done", job.error

        # oracle 1: plain discovery of flight
        assert od_strings(d1.payload["result"]) == od_strings(
            direct_serial(flight, parallel_min_grouped_rows=0))
        # oracle 2: serial incremental append on ncvoter
        oracle_v = IncrementalFastOD(voters, FastODConfig(workers=1))
        oracle_v.append(batch_v)
        assert od_strings(a1.payload["result"]) == od_strings(
            oracle_v.result.to_dict())
        oracle_v.close()
        # oracle 3: serial incremental append on flight
        oracle_f = IncrementalFastOD(flight.take(400),
                                     FastODConfig(workers=1))
        oracle_f.append(batch_f)
        assert od_strings(a2.payload["result"]) == od_strings(
            oracle_f.result.to_dict())
        oracle_f.close()
        # and the appended content equals a from-scratch run on the
        # grown relation
        grown = flight.append_rows(batch_f)
        assert od_strings(a2.payload["result"]) == od_strings(
            direct_serial(grown))

    def test_validate_jobs_share_the_pool(self, scheduler):
        relation = make_dataset("flight", n_rows=400, n_attrs=6,
                                seed=11)
        fp = scheduler._catalog.register(relation).fingerprint
        discover = scheduler.submit("discover", fp,
                                    {"config": dict(POOL_CONFIG)})
        scheduler.wait(discover.id, timeout=300)
        assert discover.status == "done", discover.error
        # every discovered OD must validate True through the service
        fds = discover.payload["result"]["fds"]
        checks = [scheduler.submit("validate", fp,
                                   {"dependency": fd})
                  for fd in fds[:4]]
        for job in checks:
            scheduler.wait(job.id, timeout=300)
            assert job.status == "done", job.error
            assert job.payload["report"]["holds"] is True
        assert scheduler.stats()["pool_started"] is True


class TestPoolLifecycleAcrossJobs:
    def test_one_pool_instance_survives_the_stream(self, scheduler):
        rels = relations()
        fps = [scheduler._catalog.register(rel).fingerprint
               for rel in rels.values()]
        for fp in fps:
            scheduler.wait(scheduler.submit(
                "discover", fp, {"config": dict(POOL_CONFIG)}).id,
                timeout=300)
        pool = scheduler._pool
        assert pool is not None and not pool.closed
        # a further job on either relation reuses the same object
        scheduler.wait(scheduler.submit(
            "discover", fps[0],
            {"config": {"parallel_min_grouped_rows": 0,
                        "max_level": 2}}).id, timeout=300)
        assert scheduler._pool is pool

    def test_close_tears_the_pool_down(self):
        catalog = DatasetCatalog()
        sched = JobScheduler(catalog, ResultStore(), workers=2)
        fp = catalog.register(
            make_dataset("flight", n_rows=400, n_attrs=5,
                         seed=3)).fingerprint
        sched.wait(sched.submit(
            "discover", fp, {"config": dict(POOL_CONFIG)}).id,
            timeout=300)
        pool = sched._pool
        sched.close()
        assert pool is None or pool.closed
        assert sched._pool is None
