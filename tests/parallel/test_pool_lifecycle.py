"""WorkerPool lifecycle: startup, rebase, crashes, and — above all —
never leaking a shared-memory segment, whatever kills the pool."""

from __future__ import annotations

import multiprocessing.shared_memory as shared_memory

import numpy as np
import pytest

from repro.core.validation import (
    is_compatible_in_classes,
    is_constant_in_classes,
)
from repro.datasets import make_dataset
from repro.parallel.pool import WorkerCrashError, WorkerPool
from repro.parallel.shm import SharedArrayBlock, attach
from repro.partitions.partition import StrippedPartition


@pytest.fixture()
def encoded():
    return make_dataset("flight", n_rows=300, n_attrs=5, seed=6).encode()


def live_block_names(pool: WorkerPool):
    return set(pool._live_blocks)


def assert_all_unlinked(names) -> None:
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def singleton_partitions(encoded):
    return {1 << a: StrippedPartition.for_attribute(encoded, a)
            for a in range(encoded.arity)}


class TestSharedArrayBlock:
    def test_publish_round_trips(self):
        arrays = {"a": np.arange(10, dtype=np.int64),
                  "b": np.array([], dtype=np.int64),
                  ("c", 1): np.array([7, 7, 7], dtype=np.int64)}
        block = SharedArrayBlock.publish(arrays)
        try:
            reader = attach(block.name)
            for key, expected in arrays.items():
                offset, length = block.layout[key]
                view = np.frombuffer(reader.buf, dtype=np.int64,
                                     offset=offset * 8, count=length)
                assert np.array_equal(view, expected)
                del view               # release before closing the map
            reader.close()
        finally:
            block.close_and_unlink()
        assert_all_unlinked([block.name])

    def test_unlink_is_idempotent(self):
        block = SharedArrayBlock.publish(
            {"x": np.arange(4, dtype=np.int64)})
        block.close_and_unlink()
        block.close_and_unlink()


class TestPoolOperations:
    def test_products_match_serial(self, encoded):
        parents = singleton_partitions(encoded)
        triples = [((1 << a) | (1 << b), 1 << a, 1 << b)
                   for a in range(encoded.arity)
                   for b in range(a + 1, encoded.arity)]
        with WorkerPool(encoded, 2) as pool:
            products, timed_out = pool.run_products(parents, triples)
            assert not timed_out
            for child, left, right in triples:
                serial = parents[left].product(parents[right])
                assert np.array_equal(serial.rows, products[child].rows)
                assert np.array_equal(serial.offsets,
                                      products[child].offsets)
                # the result carries a live shared replica pointer
                assert products[child]._shm_ref is not None

    def test_scans_match_serial(self, encoded):
        parents = singleton_partitions(encoded)
        tasks = [((a, b), 1 << a, "swap", a, b)
                 for a in range(encoded.arity)
                 for b in range(encoded.arity) if a != b]
        with WorkerPool(encoded, 2) as pool:
            verdicts, timed_out = pool.run_scans(parents, tasks)
        assert not timed_out
        for (a, b), verdict in verdicts.items():
            expected = is_compatible_in_classes(
                encoded.column(a), encoded.column(b), parents[1 << a])
            assert verdict == expected

    def test_class_scan_matches_serial(self, encoded):
        context = StrippedPartition.for_attribute(encoded, 0)
        with WorkerPool(encoded, 2) as pool:
            for mode, a, b in (("swap", 1, 2), ("const", 3, 0)):
                verdict, timed_out = pool.run_class_scan(
                    mode, a, b, context)
                if mode == "swap":
                    expected = is_compatible_in_classes(
                        encoded.column(a), encoded.column(b), context)
                else:
                    expected = is_constant_in_classes(
                        encoded.column(a), context)
                assert not timed_out
                assert verdict == expected

    def test_validations_match_serial(self, encoded):
        from repro.partitions.cache import PartitionCache

        cache = PartitionCache(encoded)
        tasks = [((mask, a, b), mask, "swap", a, b)
                 for mask in (1, 2, 3, 6)
                 for a, b in ((3, 4),)]
        with WorkerPool(encoded, 2) as pool:
            verdicts, _ = pool.run_validations(tasks)
        for (mask, a, b), verdict in verdicts.items():
            assert verdict == is_compatible_in_classes(
                encoded.column(a), encoded.column(b), cache.get(mask))

    def test_rebase_republishes_columns(self, encoded):
        bigger = make_dataset("flight", n_rows=450, n_attrs=5,
                              seed=7).encode()
        with WorkerPool(encoded, 2) as pool:
            parents = singleton_partitions(encoded)
            pool.run_scans(parents, [((0,), 1, "swap", 0, 1)])
            pool.rebase(bigger)
            assert pool.relation is bigger
            parents = singleton_partitions(bigger)
            verdicts, _ = pool.run_scans(
                parents, [((0,), 1, "swap", 0, 1)])
            assert verdicts[(0,)] == is_compatible_in_classes(
                bigger.column(0), bigger.column(1), parents[1])


class TestShutdownHygiene:
    def test_shutdown_unlinks_every_segment(self, encoded):
        pool = WorkerPool(encoded, 2)
        parents = singleton_partitions(encoded)
        triples = [(3, 1, 2), (5, 1, 4)]
        pool.run_products(parents, triples)
        names = live_block_names(pool)
        assert names                      # columns + retained partitions
        pool.shutdown()
        assert_all_unlinked(names)
        assert not pool._processes

    def test_shutdown_is_idempotent(self, encoded):
        pool = WorkerPool(encoded, 2)
        pool.shutdown()
        pool.shutdown()

    def test_keyboard_interrupt_in_with_block_cleans_up(self, encoded):
        names = set()
        with pytest.raises(KeyboardInterrupt):
            with WorkerPool(encoded, 2) as pool:
                pool.run_scans(singleton_partitions(encoded),
                               [((0,), 1, "swap", 0, 1)])
                names = live_block_names(pool)
                raise KeyboardInterrupt()
        assert names
        assert_all_unlinked(names)

    def test_worker_crash_raises_and_cleans_up(self, encoded):
        pool = WorkerPool(encoded, 2)
        parents = singleton_partitions(encoded)
        # warm the pool so worker processes exist
        pool.run_scans(parents, [((0,), 1, "swap", 0, 1)])
        names = live_block_names(pool)
        pool._processes[0].terminate()
        pool._processes[0].join()
        with pytest.raises(WorkerCrashError):
            # enough chunks that the dead worker's share goes missing
            pool.run_scans(parents, [((a, b), 1 << a, "swap", a, b)
                                     for a in range(5)
                                     for b in range(5) if a != b])
        assert_all_unlinked(names | live_block_names(pool))
        assert not pool._processes
        assert pool.closed
        # a crashed pool must refuse to restart rather than resolve
        # refs against unlinked segments
        with pytest.raises(WorkerCrashError):
            pool.run_scans(parents, [((0,), 1, "swap", 0, 1)])

    def test_class_scan_pool_recovers_from_crash(self, encoded,
                                                 monkeypatch):
        """Crash recovery lives in the engine's PoolExecutor now; the
        ClassScanPool shim (and every scan_partition consumer) must
        still rebuild a pool whose workers died mid-session."""
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module, "PARALLEL_MIN_GROUPED_ROWS", 0)
        from repro.parallel.pool import ClassScanPool

        scanner = ClassScanPool(encoded, workers=2)
        executor = scanner._executor
        # a context with at least two stripped classes, so the gate
        # actually routes through the pool
        context = next(
            p for p in (StrippedPartition.for_attribute(encoded, a)
                        for a in range(encoded.arity))
            if p.n_classes >= 2)
        expected = is_compatible_in_classes(
            encoded.column(1), encoded.column(2), context)
        try:
            assert scanner.scan("swap", 1, 2, context) == expected
            executor._owned.shutdown()      # simulate a crash teardown
            # next scan must rebuild the pool, not die on stale state
            assert scanner.scan("swap", 1, 2, context) == expected
            assert not executor._owned.closed
        finally:
            scanner.close()

    def test_worker_task_error_propagates_traceback(self, encoded):
        from repro.parallel.pool import WorkerTaskError

        pool = WorkerPool(encoded, 2)
        parents = singleton_partitions(encoded)
        names = live_block_names(pool)
        with pytest.raises(WorkerTaskError):
            # column index out of range explodes inside the worker
            pool.run_scans(parents, [((0,), 1, "swap", 0, 99)])
        assert_all_unlinked(names | live_block_names(pool))

    def test_finalizer_cleans_up_unclosed_pool(self, encoded):
        import gc

        pool = WorkerPool(encoded, 2)
        pool.run_scans(singleton_partitions(encoded),
                       [((0,), 1, "swap", 0, 1)])
        names = live_block_names(pool)
        del pool
        gc.collect()
        assert_all_unlinked(names)
