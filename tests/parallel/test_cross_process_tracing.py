"""Cross-process tracing: worker spans splice under dispatch spans,
the engine-level span tree is worker-count invariant, and payloads
stay lean when observability is off."""

from __future__ import annotations

import pickle

import pytest

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.obs import metrics, trace
from repro.parallel.pool import WorkerPool
from repro.partitions.partition import StrippedPartition

WORKER_SPAN_NAMES = ("task", "shm-attach", "kernel")


@pytest.fixture(scope="module")
def relation():
    return make_dataset("flight", n_rows=300, n_attrs=5, seed=11)


def traced_run(relation, workers):
    config = FastODConfig(workers=workers,
                          parallel_min_grouped_rows=0)
    buffer = trace.TraceBuffer()
    with trace.collect(buffer):
        result = FastOD(relation, config).run()
    return result, buffer.export()


def pruned_shape(spans):
    """The span tree as nested ``(name, children)`` tuples with every
    ``pool-dispatch`` subtree removed — what must be identical at any
    worker count."""
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span["parent"], []).append(span)

    def build(span):
        children = tuple(
            build(child) for child in by_parent.get(span["id"], ())
            if child["name"] != "pool-dispatch")
        return (span["name"], children)

    return tuple(build(root) for root in by_parent.get(0, ()))


class TestWorkerCountInvariance:
    def test_same_tree_shape_across_worker_counts(self, relation):
        # workers=0 clamps to serial; 2 and 4 shard across processes.
        # Dispatch subtrees legitimately vary (chunk counts follow the
        # worker count) — everything above them must not.
        shapes = {}
        results = {}
        for workers in (0, 2, 4):
            result, spans = traced_run(relation, workers)
            shapes[workers] = pruned_shape(spans)
            results[workers] = (sorted(map(str, result.fds)),
                                sorted(map(str, result.ocds)))
        assert shapes[0] == shapes[2] == shapes[4]
        assert results[0] == results[2] == results[4]


class TestWorkerSpanSplicing:
    @pytest.fixture(scope="class")
    def spans(self, relation):
        _, spans = traced_run(relation, 2)
        return spans

    def test_worker_spans_present(self, spans):
        names = {s["name"] for s in spans}
        assert "pool-dispatch" in names
        assert "task" in names
        assert "kernel" in names

    def test_worker_spans_nest_under_dispatch(self, spans):
        by_id = {s["id"]: s for s in spans}
        checked = 0
        for span in spans:
            if span["name"] not in WORKER_SPAN_NAMES:
                continue
            checked += 1
            node = span
            while node["parent"] != 0:
                node = by_id[node["parent"]]
                if node["name"] == "pool-dispatch":
                    break
            assert node["name"] == "pool-dispatch", (
                f"{span['name']} span not under a dispatch span")
        assert checked > 0

    def test_rebased_times_nest_strictly(self, spans):
        by_id = {s["id"]: s for s in spans}
        for span in spans:
            if span["name"] not in WORKER_SPAN_NAMES:
                continue
            parent = by_id[span["parent"]]
            assert span["start"] >= parent["start"] - 1e-9
            assert span["end"] <= parent["end"] + 1e-9
            assert span["seconds"] >= 0.0

    def test_task_spans_carry_worker_pid(self, spans):
        import os

        pids = {s["pid"] for s in spans if s["name"] == "task"}
        assert pids
        assert os.getpid() not in pids


def scan_fixture(relation):
    encoded = relation.encode()
    contexts = {1 << a: StrippedPartition.for_attribute(encoded, a)
                for a in range(encoded.arity)}
    tasks = [((a, b), 1 << a, "swap", a, b)
             for a in range(encoded.arity)
             for b in range(encoded.arity) if a != b]
    return encoded, contexts, tasks


class TestLeanPayloads:
    """The REPRO_OBS=0 guarantee: the obs context never rides out and
    no export ever rides back — payload bytes identical to a build
    without the feature."""

    # bound at import so back-to-back captures never chain spies
    _ORIGINAL_SUBMIT = WorkerPool._submit

    def run_captured(self, relation, monkeypatch, enabled):
        encoded, contexts, tasks = scan_fixture(relation)
        submitted = []
        original = TestLeanPayloads._ORIGINAL_SUBMIT

        def spy(self, kind, payload):
            submitted.append(payload)
            return original(self, kind, payload)

        monkeypatch.setattr(WorkerPool, "_submit", spy)
        metrics.set_enabled(enabled)
        try:
            with WorkerPool(encoded, 2) as pool:
                verdicts, _ = pool.run_scans(contexts, tasks)
        finally:
            metrics.set_enabled(True)
        assert len(verdicts) == len(tasks)
        assert submitted
        return submitted

    def test_disabled_payloads_have_no_obs_key(self, relation,
                                               monkeypatch):
        for payload in self.run_captured(relation, monkeypatch,
                                         enabled=False):
            assert "obs" not in payload
            assert "_obs" not in payload

    def test_disabled_payloads_do_not_grow(self, relation,
                                           monkeypatch):
        lean = self.run_captured(relation, monkeypatch, enabled=False)
        fat = self.run_captured(relation, monkeypatch, enabled=True)
        assert all("obs" in payload for payload in fat)
        # same dispatch plan either way: the only delta is the obs
        # context, so every lean chunk pickles strictly smaller
        assert len(lean) == len(fat)
        for lean_payload, fat_payload in zip(lean, fat):
            assert (set(fat_payload) - set(lean_payload)) == {"obs"}
            assert (len(pickle.dumps(lean_payload))
                    < len(pickle.dumps(fat_payload)))

    def test_enabled_results_are_scrubbed(self, relation, monkeypatch):
        # the coordinator absorbs "_obs" before results reach callers
        encoded, contexts, tasks = scan_fixture(relation)
        seen = []
        original = WorkerPool._dispatch

        def spy(self, kind, payloads):
            out = original(self, kind, payloads)
            seen.extend(out)
            return out

        monkeypatch.setattr(WorkerPool, "_dispatch", spy)
        with WorkerPool(encoded, 2) as pool:
            pool.run_scans(contexts, tasks)
        assert seen
        for chunk in seen:
            assert "_obs" not in chunk
