"""The sampling profiler: folding, merging, the sampler thread, and
the ambient (worker-side) instance."""

from __future__ import annotations

import threading
import time

from repro.obs import profiler
from repro.obs.profiler import SamplingProfiler


class TestFolding:
    def test_subtract_drops_unchanged_stacks(self):
        counts = {"a;b": 5, "a;c": 2, "d": 1}
        baseline = {"a;b": 3, "a;c": 2}
        assert profiler.subtract(counts, baseline) == {"a;b": 2, "d": 1}

    def test_subtract_never_goes_negative(self):
        assert profiler.subtract({"a": 1}, {"a": 9}) == {}

    def test_merge_counts_accumulates(self):
        into = {"a": 1}
        out = profiler.merge_counts(into, {"a": 2, "b": 3})
        assert out is into
        assert into == {"a": 3, "b": 3}

    def test_merge_counts_prefix_reroots(self):
        into = {}
        profiler.merge_counts(into, {"x;y": 4}, prefix="worker")
        assert into == {"worker;x;y": 4}

    def test_render_folded_heaviest_first(self):
        text = profiler.render_folded({"a;b": 1, "c": 9, "a;a": 1})
        assert text.splitlines() == ["c 9", "a;a 1", "a;b 1"]

    def test_render_folded_empty(self):
        assert profiler.render_folded({}) == ""


class TestSampler:
    def test_start_stop_collects_this_function(self):
        prof = SamplingProfiler(interval=0.001).start()
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:
            pass
        prof.stop()
        counts = prof.counts()
        assert counts
        # the sample-on-start guarantee means this very function is a
        # leaf frame of at least one folded stack
        assert any("test_start_stop_collects_this_function" in stack
                   for stack in counts)
        assert not prof.running

    def test_sample_once_without_thread(self):
        prof = SamplingProfiler()
        prof.sample_once()
        (stack,) = prof.counts()
        # sampling our own thread: the sampler's frame is the leaf,
        # this test the frame right above it
        frames = stack.split(";")
        assert frames[-1] == "profiler:sample_once"
        assert frames[-2] == (
            "test_sampling_profiler:test_sample_once_without_thread")

    def test_short_run_still_non_empty(self):
        # shorter than one tick: the synchronous start/stop samples
        # carry the profile
        prof = SamplingProfiler(interval=60.0).start()
        prof.stop()
        assert prof.counts()

    def test_stack_is_root_first(self):
        prof = SamplingProfiler()
        prof.sample_once()
        (stack,) = prof.counts()
        frames = stack.split(";")
        assert frames[-2].endswith("test_stack_is_root_first")
        assert len(frames) > 2          # callers fold in above it

    def test_retarget_samples_other_thread(self):
        ready = threading.Event()
        done = threading.Event()
        idents = {}

        def parked():
            idents["id"] = threading.get_ident()
            ready.set()
            done.wait(timeout=5.0)

        thread = threading.Thread(target=parked, daemon=True)
        thread.start()
        assert ready.wait(timeout=5.0)
        prof = SamplingProfiler()
        prof.retarget(idents["id"])
        prof.sample_once()
        done.set()
        thread.join(timeout=5.0)
        assert any("parked" in stack for stack in prof.counts())

    def test_clear_and_render(self):
        prof = SamplingProfiler()
        prof.sample_once()
        assert prof.render()
        prof.clear()
        assert prof.render() == ""

    def test_dead_target_samples_nothing(self):
        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()
        prof = SamplingProfiler(thread_id=thread.ident)
        prof.sample_once()
        assert prof.counts() == {}


class TestAmbient:
    def test_singleton_and_shutdown(self):
        first = profiler.ambient(interval=0.05)
        try:
            assert first.running
            assert profiler.ambient() is first
        finally:
            profiler.shutdown_ambient()
        assert not first.running
        # a fresh instance after shutdown
        second = profiler.ambient(interval=0.05)
        try:
            assert second is not first
        finally:
            profiler.shutdown_ambient()
