"""MetricsRegistry: instruments, registry semantics, renderings."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    BYTE_BUCKETS,
    DEFAULT_BUCKETS,
    MetricsRegistry,
)


def fresh() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self):
        registry = fresh()
        counter = registry.counter("t_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_key_children(self):
        registry = fresh()
        counter = registry.counter("t_total", "", ("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 1.0
        assert counter.value(kind="b") == 3.0
        assert counter.value(kind="never") == 0.0

    def test_missing_label_rejected(self):
        registry = fresh()
        counter = registry.counter("t_total", "", ("kind",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(other="x")


class TestGauge:
    def test_set_inc_dec(self):
        registry = fresh()
        gauge = registry.gauge("t_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6.0


class TestHistogram:
    def test_count_and_sum(self):
        registry = fresh()
        hist = registry.histogram("t_seconds")
        hist.observe(0.002)
        hist.observe(0.2)
        assert hist.count() == 2
        assert hist.sum() == pytest.approx(0.202)

    def test_bucket_bounds_are_inclusive(self):
        """A value equal to a bound lands in that bound's bucket —
        the Prometheus ``le`` (less-or-equal) contract."""
        registry = fresh()
        hist = registry.histogram("t_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        snapshot = registry.snapshot()["t_seconds"]["values"][0]
        assert snapshot["buckets"]["1"] == 1

    def test_overflow_lands_in_inf(self):
        registry = fresh()
        hist = registry.histogram("t_seconds", buckets=(1.0,))
        hist.observe(100.0)
        snapshot = registry.snapshot()["t_seconds"]["values"][0]
        assert snapshot["buckets"]["1"] == 0
        assert snapshot["buckets"]["+Inf"] == 1

    def test_byte_buckets_span_kib_to_gib(self):
        assert BYTE_BUCKETS[0] == 1024.0
        assert BYTE_BUCKETS[-1] == float(1 << 30)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            fresh().histogram("t_seconds", buckets=())


class TestRegistry:
    def test_family_constructors_are_idempotent(self):
        registry = fresh()
        first = registry.counter("t_total", "", ("kind",))
        second = registry.counter("t_total", "", ("kind",))
        assert first is second

    def test_shape_mismatch_raises(self):
        registry = fresh()
        registry.counter("t_total", "", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("t_total", "", ("other",))
        with pytest.raises(ValueError):
            registry.gauge("t_total", "", ("kind",))

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            fresh().counter("bad name")
        with pytest.raises(ValueError):
            fresh().counter("ok_total", "", ("bad-label",))

    def test_disabled_registry_short_circuits(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("t_total")
        hist = registry.histogram("t_seconds")
        counter.inc()
        hist.observe(0.5)
        assert counter.value() == 0.0
        assert hist.count() == 0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value() == 1.0

    def test_total_sums_label_subsets(self):
        registry = fresh()
        counter = registry.counter("t_total", "", ("phase", "mode"))
        counter.inc(2, phase="fd", mode="pool")
        counter.inc(3, phase="fd", mode="serial")
        counter.inc(5, phase="ocd", mode="serial")
        assert registry.total("t_total") == 10.0
        assert registry.total("t_total", phase="fd") == 5.0
        assert registry.total("t_total", mode="serial") == 8.0
        assert registry.total("t_missing") == 0.0

    def test_reset_zeroes_but_keeps_families(self):
        registry = fresh()
        counter = registry.counter("t_total")
        counter.inc(7)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("t_total") is counter


class TestRenderings:
    def build(self) -> MetricsRegistry:
        registry = fresh()
        registry.counter("t_jobs_total", "jobs", ("kind",)) \
            .inc(kind="discover")
        registry.gauge("t_depth", "queue depth").set(3)
        hist = registry.histogram("t_seconds", "latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_snapshot_is_json_ready(self):
        snapshot = self.build().snapshot()
        json.dumps(snapshot)
        assert snapshot["t_jobs_total"]["type"] == "counter"
        assert snapshot["t_jobs_total"]["values"][0] == {
            "labels": {"kind": "discover"}, "value": 1.0}
        entry = snapshot["t_seconds"]["values"][0]
        assert entry["count"] == 3
        assert entry["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_prometheus_text_shape(self):
        text = self.build().render_prometheus()
        lines = text.splitlines()
        assert "# TYPE t_jobs_total counter" in lines
        assert "# HELP t_seconds latency" in lines
        assert 't_jobs_total{kind="discover"} 1' in lines
        assert "t_depth 3" in lines
        assert 't_seconds_bucket{le="0.1"} 1' in lines
        assert 't_seconds_bucket{le="+Inf"} 3' in lines
        assert "t_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_prometheus_bucket_counts_are_monotone(self):
        text = self.build().render_prometheus()
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("t_seconds_bucket")]
        assert counts == sorted(counts)

    def test_label_values_are_escaped(self):
        registry = fresh()
        registry.counter("t_total", "", ("path",)) \
            .inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert r't_total{path="a\"b\\c\nd"} 1' in text

    def test_default_buckets_are_sorted_seconds(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] < 0.001 < 60.0 <= DEFAULT_BUCKETS[-1]
