"""Trace spans: nesting, collection, disabled no-op, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, trace


@pytest.fixture
def buffer():
    with trace.collect() as buf:
        yield buf


class TestSpans:
    def test_span_records_interval(self, buffer):
        with trace.span("work", level=3):
            pass
        (record,) = buffer.export()
        assert record["name"] == "work"
        assert record["level"] == 3
        assert record["parent"] == 0
        assert record["end"] >= record["start"]
        assert record["seconds"] >= 0.0
        json.dumps(record)            # JSON-ready

    def test_nested_spans_link_parents(self, buffer):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        spans = {s["name"]: s for s in buffer.export()}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["sibling"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] == 0

    def test_exception_propagates_and_tags_span(self, buffer):
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("x")
        (record,) = buffer.export()
        assert record["error"] == "RuntimeError"

    def test_disabled_registry_skips_recording(self, buffer):
        metrics.set_enabled(False)
        try:
            with trace.span("quiet"):
                pass
        finally:
            metrics.set_enabled(True)
        assert len(buffer) == 0

    def test_export_sorted_by_start(self, buffer):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        starts = [s["start"] for s in buffer.export()]
        assert starts == sorted(starts)


class TestBuffer:
    def test_ring_drops_oldest(self):
        buf = trace.TraceBuffer(capacity=2)
        with trace.collect(buf):
            for name in ("one", "two", "three"):
                with trace.span(name):
                    pass
        assert [s["name"] for s in buf.export()] == ["two", "three"]

    def test_collect_isolates_from_global(self, buffer):
        before = len(trace.GLOBAL_BUFFER)
        with trace.span("inside"):
            pass
        assert len(trace.GLOBAL_BUFFER) == before
        assert len(buffer) == 1

    def test_outside_collect_lands_in_global(self):
        # the global ring may already be full from earlier tests, so
        # assert on content, not length
        with trace.span("global-span-sentinel"):
            pass
        assert any(s["name"] == "global-span-sentinel"
                   for s in trace.GLOBAL_BUFFER.export())

    def test_current_buffer(self, buffer):
        assert trace.current_buffer() is buffer


class TestCorrelation:
    def test_buffers_carry_distinct_trace_ids(self):
        a, b = trace.TraceBuffer(), trace.TraceBuffer()
        assert len(a.trace_id) == 16
        assert a.trace_id != b.trace_id

    def test_explicit_trace_id_is_kept(self):
        assert trace.TraceBuffer(trace_id="abc").trace_id == "abc"

    def test_current_ids_inside_span(self, buffer):
        with trace.span("outer"):
            trace_id, span_id = trace.current_ids()
            assert trace_id == buffer.trace_id
            assert span_id == trace.current_span_id() == 1

    def test_current_ids_outside_span(self, buffer):
        assert trace.current_ids() == (None, 0)
        assert trace.current_span_id() == 0

    def test_record_leaf_parents_under_open_span(self, buffer):
        with trace.span("outer"):
            trace.record_leaf("kernel", 1.0, 1.5, kernel="swap")
        spans = {s["name"]: s for s in buffer.export()}
        leaf = spans["kernel"]
        assert leaf["parent"] == spans["outer"]["id"]
        assert leaf["seconds"] == 0.5
        assert leaf["kernel"] == "swap"

    def test_record_leaf_disabled_is_noop(self, buffer):
        metrics.set_enabled(False)
        try:
            trace.record_leaf("quiet", 0.0, 1.0)
        finally:
            metrics.set_enabled(True)
        assert len(buffer) == 0


class TestSplice:
    @staticmethod
    def worker_export():
        """What a worker task ships: a ``task`` root and one kernel
        leaf, on the worker's own clock (epoch near zero)."""
        return [
            {"id": 1, "parent": 0, "name": "task",
             "start": 0.1, "end": 0.9, "seconds": 0.8},
            {"id": 2, "parent": 1, "name": "kernel",
             "start": 0.2, "end": 0.4, "seconds": 0.2},
        ]

    def test_empty_export_is_noop(self):
        buf = trace.TraceBuffer()
        trace.splice(buf, [], parent_id=7, window=(1.0, 2.0))
        assert len(buf) == 0

    def test_reparents_and_remaps_ids(self):
        buf = trace.TraceBuffer()
        with trace.collect(buf):
            with trace.span("dispatch"):    # consumes buffer id 1
                pass
        trace.splice(buf, self.worker_export(), parent_id=7,
                     window=(10.0, 11.0), clock=(0.0, 1.0))
        spans = {s["name"]: s for s in buf.export()}
        task, kernel = spans["task"], spans["kernel"]
        assert task["parent"] == 7
        assert kernel["parent"] == task["id"]
        assert task["id"] != 1          # remapped through buffer ids

    def test_clock_rebase_midpoint(self):
        buf = trace.TraceBuffer()
        # worker clock (0, 1) against window (10, 11): offset 10
        trace.splice(buf, self.worker_export(), parent_id=0,
                     window=(10.0, 11.0), clock=(0.0, 1.0))
        task = next(s for s in buf.export() if s["name"] == "task")
        assert abs(task["start"] - 10.1) < 1e-9
        assert abs(task["end"] - 10.9) < 1e-9

    def test_skewed_clock_clamps_into_window(self):
        buf = trace.TraceBuffer()
        # a wildly skewed worker clock must still land inside the
        # coordinator-observed (submit, ack) window
        trace.splice(buf, self.worker_export(), parent_id=0,
                     window=(10.0, 10.5), clock=(500.0, 501.0))
        for record in buf.export():
            assert 10.0 <= record["start"] <= 10.5
            assert record["start"] <= record["end"] <= 10.5
            assert record["seconds"] >= 0.0

    def test_no_clock_means_no_offset(self):
        buf = trace.TraceBuffer()
        spans = [{"id": 1, "parent": 0, "name": "task",
                  "start": 1.25, "end": 1.75, "seconds": 0.5}]
        trace.splice(buf, spans, parent_id=0, window=(1.0, 2.0))
        (record,) = buf.export()
        assert record["start"] == 1.25 and record["end"] == 1.75

    def test_unknown_parent_falls_back_to_dispatch(self):
        buf = trace.TraceBuffer()
        # a child whose parent fell off the worker's ring re-parents
        # onto the dispatch span instead of dangling
        spans = [{"id": 5, "parent": 3, "name": "kernel",
                  "start": 0.0, "end": 0.1, "seconds": 0.1}]
        trace.splice(buf, spans, parent_id=9, window=(0.0, 1.0))
        (record,) = buf.export()
        assert record["parent"] == 9


class TestRenderTimeline:
    def test_empty(self):
        assert trace.render_timeline([]) == "(no spans recorded)"

    def test_bars_and_depth(self, buffer):
        with trace.span("outer"):
            with trace.span("inner", level=2):
                pass
        lines = trace.render_timeline(buffer.export()).splitlines()
        assert len(lines) == 2
        assert "outer" in lines[0]
        assert "  inner" in lines[1]        # depth-indented
        assert all("#" in line for line in lines)
        assert "level=2" in lines[1]
