"""Trace spans: nesting, collection, disabled no-op, rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, trace


@pytest.fixture
def buffer():
    with trace.collect() as buf:
        yield buf


class TestSpans:
    def test_span_records_interval(self, buffer):
        with trace.span("work", level=3):
            pass
        (record,) = buffer.export()
        assert record["name"] == "work"
        assert record["level"] == 3
        assert record["parent"] == 0
        assert record["end"] >= record["start"]
        assert record["seconds"] >= 0.0
        json.dumps(record)            # JSON-ready

    def test_nested_spans_link_parents(self, buffer):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        spans = {s["name"]: s for s in buffer.export()}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["sibling"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] == 0

    def test_exception_propagates_and_tags_span(self, buffer):
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("x")
        (record,) = buffer.export()
        assert record["error"] == "RuntimeError"

    def test_disabled_registry_skips_recording(self, buffer):
        metrics.set_enabled(False)
        try:
            with trace.span("quiet"):
                pass
        finally:
            metrics.set_enabled(True)
        assert len(buffer) == 0

    def test_export_sorted_by_start(self, buffer):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        starts = [s["start"] for s in buffer.export()]
        assert starts == sorted(starts)


class TestBuffer:
    def test_ring_drops_oldest(self):
        buf = trace.TraceBuffer(capacity=2)
        with trace.collect(buf):
            for name in ("one", "two", "three"):
                with trace.span(name):
                    pass
        assert [s["name"] for s in buf.export()] == ["two", "three"]

    def test_collect_isolates_from_global(self, buffer):
        before = len(trace.GLOBAL_BUFFER)
        with trace.span("inside"):
            pass
        assert len(trace.GLOBAL_BUFFER) == before
        assert len(buffer) == 1

    def test_outside_collect_lands_in_global(self):
        # the global ring may already be full from earlier tests, so
        # assert on content, not length
        with trace.span("global-span-sentinel"):
            pass
        assert any(s["name"] == "global-span-sentinel"
                   for s in trace.GLOBAL_BUFFER.export())

    def test_current_buffer(self, buffer):
        assert trace.current_buffer() is buffer


class TestRenderTimeline:
    def test_empty(self):
        assert trace.render_timeline([]) == "(no spans recorded)"

    def test_bars_and_depth(self, buffer):
        with trace.span("outer"):
            with trace.span("inner", level=2):
                pass
        lines = trace.render_timeline(buffer.export()).splitlines()
        assert len(lines) == 2
        assert "outer" in lines[0]
        assert "  inner" in lines[1]        # depth-indented
        assert all("#" in line for line in lines)
        assert "level=2" in lines[1]
