"""Structured event log: one JSON line per emit, never raises."""

from __future__ import annotations

import json

import pytest

from repro.obs import events, trace


@pytest.fixture
def captured():
    lines = []
    events.set_sink(lines.append)
    try:
        yield lines
    finally:
        events.set_sink(None)


class TestEmit:
    def test_one_json_line(self, captured):
        events.emit("scheduler.degraded", reason="too many rebuilds")
        (line,) = captured
        assert "\n" not in line
        payload = json.loads(line)
        assert payload["event"] == "scheduler.degraded"
        assert payload["reason"] == "too many rebuilds"
        assert payload["ts"] > 0

    def test_keys_are_sorted(self, captured):
        events.emit("x", zebra=1, alpha=2)
        keys = list(json.loads(captured[0]))
        assert keys == sorted(keys)

    def test_unserializable_fields_degrade_to_str(self, captured):
        events.emit("x", payload=object())
        assert "object object at" in json.loads(captured[0])["payload"]

    def test_broken_sink_never_raises(self):
        def broken(line):
            raise OSError("pipe closed")

        events.set_sink(broken)
        try:
            events.emit("x", field=1)    # must not raise
        finally:
            events.set_sink(None)


class TestTraceCorrelation:
    def test_emit_inside_span_carries_ids(self, captured):
        with trace.collect() as buffer:
            with trace.span("outer"):
                events.emit("x")
        payload = json.loads(captured[0])
        assert payload["trace_id"] == buffer.trace_id
        assert payload["span_id"] == 1

    def test_emit_outside_span_has_no_ids(self, captured):
        events.emit("x")
        payload = json.loads(captured[0])
        assert "trace_id" not in payload
        assert "span_id" not in payload

    def test_caller_fields_win_on_collision(self, captured):
        with trace.collect():
            with trace.span("outer"):
                events.emit("x", trace_id="explicit")
        assert json.loads(captured[0])["trace_id"] == "explicit"
