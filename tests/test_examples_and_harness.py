"""Smoke tests: every example script runs; the bench harness renders."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


class TestExamples:
    @pytest.mark.parametrize(
        "script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
    def test_runs_cleanly(self, script):
        completed = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=300, cwd=REPO)
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()   # says something

    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLES) >= 3


class TestHarnessReporter:
    def test_render_alignment(self):
        sys.path.insert(0, str(REPO))
        from benchmarks.harness import Reporter

        reporter = Reporter("t", "Title", ["a", "long_column"])
        reporter.add(a=1, long_column="x")
        reporter.add(a=22, long_column="yy")
        table = reporter.render()
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "long_column" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2  # aligned

    def test_finish_writes_file(self, tmp_path, monkeypatch, capsys):
        sys.path.insert(0, str(REPO))
        import benchmarks.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        reporter = harness.Reporter("unit", "T", ["c"])
        reporter.add(c="v")
        reporter.finish()
        assert (tmp_path / "unit.txt").read_text().startswith("T")
        assert "v" in capsys.readouterr().out

    def test_formatters(self):
        sys.path.insert(0, str(REPO))
        from benchmarks.harness import DNF, fmt_counts, fmt_seconds

        assert fmt_seconds(0.5) == "500ms"
        assert fmt_seconds(None) == "-"
        assert fmt_seconds(1.0, dnf=True) == DNF
        assert fmt_counts(None) == "-"

    def test_dataset_cache(self):
        sys.path.insert(0, str(REPO))
        from benchmarks.harness import dataset

        assert dataset("flight", 50, 5) is dataset("flight", 50, 5)

    def test_write_bench_json_merges_sections(self, tmp_path):
        sys.path.insert(0, str(REPO))
        import json

        from benchmarks.harness import write_bench_json

        write_bench_json("unit", [{"n_rows": 1}], section="sweep",
                         directory=tmp_path)
        target = write_bench_json("unit", [{"kernel": "product"}],
                                  section="kernels", directory=tmp_path)
        loaded = json.loads(target.read_text())
        assert loaded["sweep"] == [{"n_rows": 1}]
        assert loaded["kernels"] == [{"kernel": "product"}]
        # re-writing a section replaces only that section
        write_bench_json("unit", [{"n_rows": 2}], section="sweep",
                         directory=tmp_path)
        loaded = json.loads(target.read_text())
        assert loaded["sweep"] == [{"n_rows": 2}]
        assert loaded["kernels"] == [{"kernel": "product"}]
