"""Hybrid (sample-then-validate) discovery: exact equality to FASTOD."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import discover_ods
from repro.core.hybrid import hybrid_discover
from repro.core.results import diff_results
from tests.conftest import make_relation, random_relation, small_relations


class TestExactness:
    """The headline property: hybrid == exact FASTOD, always."""

    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=4, max_rows=12, max_domain=3),
           st.integers(1, 6), st.integers(0, 3))
    def test_equals_fastod(self, relation, sample_size, seed):
        exact = discover_ods(relation)
        hybrid = hybrid_discover(relation, sample_size=sample_size,
                                 seed=seed)
        assert exact.same_ods(hybrid), diff_results(exact, hybrid)

    @pytest.mark.parametrize("seed", range(6))
    def test_taller_tables(self, seed):
        relation = random_relation(seed + 70, n_cols=5, n_rows=120,
                                   domain=3)
        exact = discover_ods(relation)
        hybrid = hybrid_discover(relation, sample_size=20, seed=seed)
        assert exact.same_ods(hybrid), diff_results(exact, hybrid)

    def test_tiny_sample_still_exact(self):
        relation = random_relation(99, n_cols=4, n_rows=60, domain=2)
        hybrid = hybrid_discover(relation, sample_size=1, seed=0)
        assert discover_ods(relation).same_ods(hybrid)

    def test_sample_larger_than_table(self):
        relation = make_relation(3, [(1, 2, 3), (2, 3, 4), (2, 3, 5)])
        hybrid = hybrid_discover(relation, sample_size=1000)
        assert discover_ods(relation).same_ods(hybrid)


class TestEdgeCases:
    def test_empty_relation(self):
        relation = make_relation(2, [])
        assert discover_ods(relation).same_ods(
            hybrid_discover(relation))

    def test_constant_columns(self):
        relation = make_relation(2, [(5, 5)] * 4)
        hybrid = hybrid_discover(relation, sample_size=2)
        assert {str(fd) for fd in hybrid.fds} == {
            "{}: [] -> c0", "{}: [] -> c1"}
        assert hybrid.ocds == []

    def test_key_column(self):
        relation = make_relation(2, [(i, i % 3) for i in range(30)])
        hybrid = hybrid_discover(relation, sample_size=5)
        assert discover_ods(relation).same_ods(hybrid)

    def test_metadata(self):
        relation = make_relation(2, [(1, 2), (2, 3)])
        hybrid = hybrid_discover(relation, sample_size=7, seed=3)
        assert hybrid.algorithm == "FASTOD-Hybrid"
        assert hybrid.config == {"sample_size": 7, "seed": 3,
                                 "workers": None,
                                 "timeout_seconds": None}
        assert hybrid.elapsed_seconds > 0
        assert hybrid.executor_stats is not None
        # backend follows $REPRO_WORKERS (serial by default)
        assert hybrid.executor_stats["backend"] in ("serial", "pool")


class TestSampleMisleading:
    """Adversarial layouts: the interesting rows hide at the end, so a
    head-biased sample would lie; our uniform sample plus escalation
    must still land on the exact answer."""

    def test_late_swap(self):
        rows = [(i, i) for i in range(50)] + [(50, 0)]
        relation = make_relation(2, rows)
        hybrid = hybrid_discover(relation, sample_size=10, seed=1)
        assert discover_ods(relation).same_ods(hybrid)
        assert "{}: c0 ~ c1" not in {str(o) for o in hybrid.ocds}

    def test_late_split(self):
        rows = [(i % 5, i % 5, 0) for i in range(40)] + [(0, 4, 1)]
        relation = make_relation(3, rows)
        hybrid = hybrid_discover(relation, sample_size=8, seed=2)
        assert discover_ods(relation).same_ods(hybrid)

    def test_pair_hidden_behind_sample_constant(self):
        # In a small sample c1 may look constant (Propagate hides the
        # OCD); full data reveals the pair — the FD-based pair seeding
        # must recover it.
        rows = [(i, 0) for i in range(20)] + [(20 + i, 1 + i)
                                              for i in range(20)]
        relation = make_relation(2, rows)
        for seed in range(4):
            hybrid = hybrid_discover(relation, sample_size=3, seed=seed)
            assert discover_ods(relation).same_ods(hybrid), seed
