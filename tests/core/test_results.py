"""Tests for result containers and reporting."""

from __future__ import annotations

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import (
    DiscoveryResult,
    LevelStats,
    diff_results,
    od_set,
)


def _result(algorithm="X", fds=(), ocds=()):
    return DiscoveryResult(
        algorithm=algorithm, attribute_names=("a", "b", "c"), n_rows=5,
        fds=list(fds), ocds=list(ocds))


class TestDiscoveryResult:
    def test_counts_and_paper_format(self):
        result = _result(fds=[CanonicalFD(set(), "a")],
                         ocds=[CanonicalOCD(set(), "b", "c")])
        assert result.n_ods == 2
        assert result.paper_counts() == "2 (1 + 1)"

    def test_all_ods_sorted_small_contexts_first(self):
        big = CanonicalFD({"a", "b"}, "c")
        small = CanonicalFD(set(), "a")
        result = _result(fds=[big, small])
        assert result.all_ods == [small, big]

    def test_constants(self):
        constant = CanonicalFD(set(), "a")
        contextual = CanonicalFD({"b"}, "a")
        result = _result(fds=[constant, contextual])
        assert result.constants == [constant]

    def test_level_filters(self):
        result = _result(
            fds=[CanonicalFD(set(), "a"), CanonicalFD({"b"}, "a")],
            ocds=[CanonicalOCD({"c"}, "a", "b")])
        assert len(result.fds_at_level(0)) == 1
        assert len(result.fds_at_level(1)) == 1
        assert len(result.ocds_at_level(1)) == 1

    def test_summary_mentions_everything(self):
        result = _result()
        result.level_stats.append(LevelStats(level=1, n_nodes=3))
        result.timed_out = True
        text = result.summary()
        assert "TIMED OUT" in text and "L1" in text

    def test_to_dict_round_trips_strings(self):
        result = _result(fds=[CanonicalFD({"b"}, "a")])
        payload = result.to_dict()
        assert payload["fds"] == ["{b}: [] -> a"]
        assert payload["n_fds"] == 1

    def test_same_ods_ignores_order(self):
        fd1, fd2 = CanonicalFD(set(), "a"), CanonicalFD({"b"}, "c")
        assert _result(fds=[fd1, fd2]).same_ods(_result(fds=[fd2, fd1]))


class TestLevelStats:
    def test_totals(self):
        stats = LevelStats(level=2, n_fds_found=3, n_ocds_found=4)
        assert stats.n_ods_found == 7
        assert "L2" in str(stats)


class TestDiff:
    def test_none_when_equal(self):
        fd = CanonicalFD(set(), "a")
        assert diff_results(_result(fds=[fd]), _result(fds=[fd])) is None

    def test_reports_both_sides(self):
        left = _result("L", fds=[CanonicalFD(set(), "a")])
        right = _result("R", ocds=[CanonicalOCD(set(), "a", "b")])
        text = diff_results(left, right)
        assert "only in L" in text and "only in R" in text

    def test_od_set(self):
        fd = CanonicalFD(set(), "a")
        ocd = CanonicalOCD(set(), "a", "b")
        assert od_set([fd], [ocd]) == {fd, ocd}
