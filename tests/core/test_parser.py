"""Tests for the dependency text syntax."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.core.parser import parse, parse_equivalence
from repro.errors import ParseError

_names = st.text(alphabet="abcxyz_", min_size=1, max_size=4)


class TestParseCanonical:
    def test_fd(self):
        assert parse("{a,b}: [] -> c") == CanonicalFD({"a", "b"}, "c")

    def test_fd_empty_context(self):
        assert parse("{}: [] -> c") == CanonicalFD(set(), "c")

    def test_fd_unicode_arrow(self):
        assert parse("{a}: [] ↦ b") == CanonicalFD({"a"}, "b")

    def test_fd_bar_arrow(self):
        assert parse("{a}: [] |-> b") == CanonicalFD({"a"}, "b")

    def test_ocd(self):
        assert parse("{x}: a ~ b") == CanonicalOCD({"x"}, "a", "b")

    def test_whitespace_insensitive(self):
        assert parse("  { a , b } :  [] ->  c ") == \
            CanonicalFD({"a", "b"}, "c")

    @pytest.mark.parametrize("bad", [
        "{a}: b -> c",          # FD left side must be []
        "{a}: [] -> c,d",       # one attribute only
        "{a} [] -> c",          # missing colon
        "{a}: [] ->",           # empty right side
        "{a}: ~ b",             # empty OCD side
        "{a}: []",              # no operator
    ])
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestParseListForms:
    def test_list_od(self):
        assert parse("[a,b] -> [c]") == ListOD(["a", "b"], ["c"])

    def test_compat(self):
        assert parse("[a] ~ [b,c]") == OrderCompatibility(["a"], ["b", "c"])

    def test_empty_lhs(self):
        assert parse("[] -> [c]") == ListOD([], ["c"])

    def test_equivalence_needs_dedicated_entry(self):
        with pytest.raises(ParseError):
            parse("[a] <-> [b]")
        forward, backward = parse_equivalence("[a] <-> [b]")
        assert forward == ListOD(["a"], ["b"])
        assert backward == ListOD(["b"], ["a"])

    def test_parse_equivalence_rejects_plain(self):
        with pytest.raises(ParseError):
            parse_equivalence("[a] -> [b]")

    @pytest.mark.parametrize("bad", ["", "a -> b", "[a] [b]", "[a,] -> [b]"])
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestRoundTrips:
    """parse(str(dep)) == dep for every dependency family."""

    @given(st.sets(_names, max_size=3), _names)
    def test_fd(self, context, attribute):
        fd = CanonicalFD(context, attribute)
        assert parse(str(fd)) == fd

    @given(st.sets(_names, max_size=3), _names, _names)
    def test_ocd(self, context, left, right):
        ocd = CanonicalOCD(context, left, right)
        assert parse(str(ocd)) == ocd

    @given(st.lists(_names, max_size=3),
           st.lists(_names, min_size=1, max_size=3))
    def test_list_od(self, lhs, rhs):
        od = ListOD(lhs, rhs)
        assert parse(str(od)) == od

    @given(st.lists(_names, min_size=1, max_size=3),
           st.lists(_names, min_size=1, max_size=3))
    def test_compat(self, lhs, rhs):
        compat = OrderCompatibility(lhs, rhs)
        assert parse(str(compat)) == compat
