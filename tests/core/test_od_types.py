"""Tests for dependency data types."""

from __future__ import annotations

import pytest

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    as_spec,
    format_context,
)
from repro.errors import DependencyError


class TestOrderSpec:
    def test_str(self):
        assert str(OrderSpec(["a", "b"])) == "[a,b]"
        assert str(OrderSpec()) == "[]"

    def test_concat_and_prefix(self):
        spec = OrderSpec(["a"]).concat(OrderSpec(["b", "c"]))
        assert spec.attrs == ("a", "b", "c")
        assert spec.prefix(2).attrs == ("a", "b")

    def test_normalized_removes_repeats(self):
        spec = OrderSpec(["a", "b", "a", "c", "b"])
        assert spec.normalized().attrs == ("a", "b", "c")

    def test_as_set(self):
        assert OrderSpec(["a", "b", "a"]).as_set == frozenset({"a", "b"})

    def test_is_empty(self):
        assert OrderSpec().is_empty
        assert not OrderSpec(["x"]).is_empty

    def test_sequence_protocol(self):
        spec = OrderSpec(["a", "b"])
        assert len(spec) == 2
        assert spec[0] == "a"
        assert list(spec) == ["a", "b"]

    def test_equality_hash(self):
        assert OrderSpec(["a"]) == OrderSpec(["a"])
        assert OrderSpec(["a", "b"]) != OrderSpec(["b", "a"])
        assert hash(OrderSpec(["a"])) == hash(OrderSpec(["a"]))

    def test_bad_names(self):
        with pytest.raises(DependencyError):
            OrderSpec([""])
        with pytest.raises(DependencyError):
            OrderSpec([7])

    def test_as_spec_coercion(self):
        assert as_spec(["a"]) == OrderSpec(["a"])
        spec = OrderSpec(["a"])
        assert as_spec(spec) is spec


class TestListOD:
    def test_str(self):
        assert str(ListOD(["a"], ["b", "c"])) == "[a] -> [b,c]"

    def test_reversed(self):
        od = ListOD(["a"], ["b"])
        assert od.reversed() == ListOD(["b"], ["a"])

    def test_equality(self):
        assert ListOD(["a"], ["b"]) == ListOD(["a"], ["b"])
        assert ListOD(["a"], ["b"]) != ListOD(["b"], ["a"])


class TestOrderCompatibility:
    def test_str(self):
        assert str(OrderCompatibility(["a"], ["b"])) == "[a] ~ [b]"

    def test_equality(self):
        assert OrderCompatibility(["a"], ["b"]) == \
            OrderCompatibility(["a"], ["b"])


class TestCanonicalFD:
    def test_str_sorted_context(self):
        fd = CanonicalFD({"z", "a"}, "m")
        assert str(fd) == "{a,z}: [] -> m"

    def test_trivial(self):
        assert CanonicalFD({"a"}, "a").is_trivial
        assert not CanonicalFD({"a"}, "b").is_trivial

    def test_constant(self):
        assert CanonicalFD(set(), "a").is_constant
        assert not CanonicalFD({"b"}, "a").is_constant

    def test_sort_key_orders_by_context_size(self):
        small = CanonicalFD(set(), "a")
        big = CanonicalFD({"x", "y"}, "a")
        assert small.sort_key() < big.sort_key()

    def test_format_context(self):
        assert format_context(frozenset()) == "{}"
        assert format_context(frozenset({"b", "a"})) == "{a,b}"


class TestCanonicalOCD:
    def test_pair_is_unordered(self):
        assert CanonicalOCD({"x"}, "b", "a") == CanonicalOCD({"x"}, "a", "b")
        assert str(CanonicalOCD(set(), "b", "a")) == "{}: a ~ b"

    def test_trivial_identity(self):
        assert CanonicalOCD(set(), "a", "a").is_trivial

    def test_trivial_normalization(self):
        assert CanonicalOCD({"a"}, "a", "b").is_trivial
        assert CanonicalOCD({"b"}, "a", "b").is_trivial

    def test_nontrivial(self):
        assert not CanonicalOCD({"c"}, "a", "b").is_trivial

    def test_pair_property(self):
        assert CanonicalOCD(set(), "b", "a").pair == frozenset({"a", "b"})

    def test_hash_commutative(self):
        assert hash(CanonicalOCD({"x"}, "a", "b")) == \
            hash(CanonicalOCD({"x"}, "b", "a"))
