"""Tests for validators and violation witnesses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.core.validation import (
    CanonicalValidator,
    find_split,
    find_swap,
    is_compatible_in_classes,
    is_constant_in_classes,
    list_od_holds,
    order_compatible,
    order_equivalent,
)
from repro.partitions.partition import StrippedPartition
from tests.conftest import make_relation, small_relations


class TestConstantChecks:
    def test_constant(self):
        column = np.array([5, 5, 7, 7])
        partition = StrippedPartition([[0, 1], [2, 3]], 4)
        assert is_constant_in_classes(column, partition)

    def test_not_constant(self):
        column = np.array([5, 6, 7, 7])
        partition = StrippedPartition([[0, 1], [2, 3]], 4)
        assert not is_constant_in_classes(column, partition)
        witness = find_split(column, partition, "a")
        assert witness is not None
        assert column[witness.row_s] != column[witness.row_t]

    def test_singletons_never_split(self):
        column = np.array([1, 2, 3])
        partition = StrippedPartition([], 3)  # superkey context
        assert is_constant_in_classes(column, partition)
        assert find_split(column, partition, "a") is None


class TestCompatibilityChecks:
    def test_compatible(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([0, 0, 1, 2])
        partition = StrippedPartition([[0, 1, 2, 3]], 4)
        assert is_compatible_in_classes(a, b, partition)

    def test_swap(self):
        a = np.array([0, 1])
        b = np.array([1, 0])
        partition = StrippedPartition([[0, 1]], 2)
        assert not is_compatible_in_classes(a, b, partition)
        swap = find_swap(a, b, partition, "a", "b")
        assert swap is not None
        # witness is oriented: row_s precedes in A, follows in B
        assert a[swap.row_s] < a[swap.row_t]
        assert b[swap.row_s] > b[swap.row_t]

    def test_equal_a_never_swaps(self):
        a = np.array([1, 1, 1])
        b = np.array([3, 1, 2])
        partition = StrippedPartition([[0, 1, 2]], 3)
        assert is_compatible_in_classes(a, b, partition)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=2, max_size=10))
    def test_scan_matches_pairwise_definition(self, pairs):
        a = np.array([p[0] for p in pairs])
        b = np.array([p[1] for p in pairs])
        partition = StrippedPartition([list(range(len(pairs)))], len(pairs))
        expected = not any(
            a[i] < a[j] and b[i] > b[j]
            for i in range(len(pairs)) for j in range(len(pairs)))
        assert is_compatible_in_classes(a, b, partition) == expected
        witness = find_swap(a, b, partition, "a", "b")
        assert (witness is None) == expected
        if witness is not None:
            assert a[witness.row_s] < a[witness.row_t]
            assert b[witness.row_s] > b[witness.row_t]


class TestListValidators:
    def test_empty_lhs_requires_constant_rhs(self):
        rel = make_relation(2, [(1, 5), (2, 5)])
        assert list_od_holds(rel, ListOD([], ["c1"]))
        assert not list_od_holds(rel, ListOD([], ["c0"]))

    def test_empty_relation_everything_holds(self):
        rel = make_relation(2, [])
        assert list_od_holds(rel, ListOD(["c0"], ["c1"]))
        assert order_compatible(rel, OrderCompatibility(["c0"], ["c1"]))

    def test_single_row(self):
        rel = make_relation(2, [(1, 2)])
        assert list_od_holds(rel, ListOD(["c0"], ["c1"]))

    def test_od_with_duplicates_in_spec(self):
        rel = make_relation(2, [(1, 9), (1, 8), (2, 7)])
        # c0 -> c0,c1 fails: rows 0,1 tie on c0 but differ on c1
        assert not list_od_holds(rel, ListOD(["c0"], ["c0", "c1"]))

    def test_order_equivalent(self):
        rel = make_relation(2, [(1, 10), (2, 20), (3, 30)])
        assert order_equivalent(rel, ["c0"], ["c1"])
        rel2 = make_relation(2, [(1, 10), (2, 20), (2, 30)])
        assert not order_equivalent(rel2, ["c1"], ["c0"])

    def test_compatibility_weaker_than_od(self):
        # compatible but not an OD (ties on lhs with differing rhs)
        rel = make_relation(2, [(1, 1), (1, 2), (2, 3)])
        assert order_compatible(rel, OrderCompatibility(["c0"], ["c1"]))
        assert not list_od_holds(rel, ListOD(["c0"], ["c1"]))


class TestCanonicalValidator:
    def test_trivial_always_hold(self):
        rel = make_relation(2, [(1, 2), (2, 1)])
        validator = CanonicalValidator(rel)
        assert validator.holds(CanonicalFD({"c0"}, "c0"))
        assert validator.holds(CanonicalOCD({"c0"}, "c0", "c1"))
        assert validator.witness(CanonicalFD({"c0"}, "c0")) is None
        assert validator.witness(CanonicalOCD({"c1"}, "c1", "c0")) is None

    def test_unknown_attribute(self):
        rel = make_relation(1, [(1,)])
        validator = CanonicalValidator(rel)
        with pytest.raises(KeyError):
            validator.holds(CanonicalFD({"zzz"}, "c0"))

    def test_accepts_relation_or_encoded(self):
        rel = make_relation(2, [(1, 1), (2, 2)])
        assert CanonicalValidator(rel).holds(
            CanonicalOCD(set(), "c0", "c1"))
        assert CanonicalValidator(rel.encode()).holds(
            CanonicalOCD(set(), "c0", "c1"))

    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_witness_iff_not_holds(self, relation):
        validator = CanonicalValidator(relation)
        names = relation.names
        for attribute in names:
            context = frozenset(n for n in names if n != attribute)
            fd = CanonicalFD(context, attribute)
            assert (validator.witness(fd) is None) == validator.holds(fd)
        if len(names) >= 2:
            ocd = CanonicalOCD(frozenset(names[2:]), names[0], names[1])
            assert (validator.witness(ocd) is None) == validator.holds(ocd)


class TestTheorem2:
    """X -> Y (FD) iff the OD X ↦ XY, on data."""

    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_fd_od_correspondence(self, relation):
        names = list(relation.names)
        if len(names) < 2:
            return
        lhs, rhs = [names[0]], [names[1]]
        od_form = list_od_holds(relation, ListOD(lhs, lhs + rhs))
        fd_form = CanonicalValidator(relation).holds(
            CanonicalFD(frozenset(lhs), rhs[0]))
        assert od_form == fd_form
