"""FASTOD correctness: completeness + minimality (Theorem 8), pruning
invariance (Lemmas 11-13), statistics, budgets, and edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import FastOD, FastODConfig, discover_ods
from repro.baselines import (
    all_valid_canonical_ods,
    minimal_canonical_ods,
    validate_result_is_sound,
)
from repro.core.od import CanonicalFD
from repro.core.results import diff_results
from tests.conftest import make_relation, random_relation, small_relations


class TestAgainstBruteForce:
    """FASTOD output == definition-level minimal set (Theorem 8)."""

    @settings(max_examples=120, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_matches_oracle(self, relation):
        fast = discover_ods(relation)
        truth = minimal_canonical_ods(relation)
        assert fast.same_ods(truth), diff_results(fast, truth)

    @pytest.mark.parametrize("seed", range(8))
    def test_five_attribute_sweep(self, seed):
        relation = random_relation(seed, n_cols=5, n_rows=12, domain=2)
        fast = discover_ods(relation)
        truth = minimal_canonical_ods(relation)
        assert fast.same_ods(truth), diff_results(fast, truth)

    def test_employee_table(self, employee_table):
        fast = discover_ods(employee_table)
        truth = minimal_canonical_ods(employee_table)
        assert fast.same_ods(truth)
        assert not validate_result_is_sound(employee_table, fast)


class TestPruningInvariance:
    """Disabling any pruning family never changes the *minimal* output
    (Lemma 11 for level pruning; Lemmas 12-13 for key pruning)."""

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_level_pruning_invariant(self, relation):
        with_pruning = discover_ods(relation, level_pruning=True)
        without = discover_ods(relation, level_pruning=False)
        assert with_pruning.same_ods(without)

    @settings(max_examples=60, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_key_pruning_invariant(self, relation):
        with_keys = discover_ods(relation, key_pruning=True)
        without = discover_ods(relation, key_pruning=False)
        assert with_keys.same_ods(without)

    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_no_pruning_mode_finds_all_valid(self, relation):
        """minimality_pruning=False enumerates exactly the valid,
        non-trivial canonical ODs (the Exp-6 'non-minimal' counts)."""
        everything = discover_ods(relation, minimality_pruning=False)
        valid_fds, valid_ocds = all_valid_canonical_ods(relation)
        assert set(everything.fds) == valid_fds
        assert set(everything.ocds) == valid_ocds
        assert not everything.minimal

    @settings(max_examples=50, deadline=None)
    @given(small_relations(max_cols=4, max_rows=8, max_domain=2))
    def test_no_pruning_superset_of_minimal(self, relation):
        minimal = discover_ods(relation)
        everything = discover_ods(relation, minimality_pruning=False)
        assert set(minimal.fds) <= set(everything.fds)
        assert set(minimal.ocds) <= set(everything.ocds)


class TestEdgeCases:
    def test_empty_relation(self):
        result = discover_ods(make_relation(2, []))
        # vacuously, both attributes are constants
        assert {str(fd) for fd in result.fds} == {
            "{}: [] -> c0", "{}: [] -> c1"}
        assert result.ocds == []

    def test_single_row(self):
        result = discover_ods(make_relation(3, [(1, 2, 3)]))
        assert len(result.fds) == 3
        assert all(fd.is_constant for fd in result.fds)
        assert result.ocds == []

    def test_single_attribute(self):
        result = discover_ods(make_relation(1, [(1,), (2,)]))
        assert result.n_ods == 0

    def test_single_constant_attribute(self):
        result = discover_ods(make_relation(1, [(5,), (5,)]))
        assert [str(fd) for fd in result.fds] == ["{}: [] -> c0"]

    def test_all_rows_identical(self):
        result = discover_ods(make_relation(2, [(1, 2)] * 5))
        assert {str(fd) for fd in result.fds} == {
            "{}: [] -> c0", "{}: [] -> c1"}
        assert result.ocds == []  # propagated away, not minimal

    def test_key_column(self):
        # c0 is a key: c0 determines c1 minimally; no deeper FDs
        result = discover_ods(
            make_relation(2, [(1, 7), (2, 7), (3, 9)]))
        assert CanonicalFD({"c0"}, "c1") in result.fds

    def test_two_copies_of_same_column(self):
        result = discover_ods(
            make_relation(2, [(1, 1), (2, 2), (3, 3)]))
        found = {str(od) for od in result.all_ods}
        assert "{c0}: [] -> c1" in found
        assert "{c1}: [] -> c0" in found
        assert "{}: c0 ~ c1" in found


class TestConfig:
    def test_max_level_truncates(self):
        relation = random_relation(3, n_cols=5, n_rows=20, domain=2)
        capped = discover_ods(relation, max_level=2)
        full = discover_ods(relation)
        assert max(s.level for s in capped.level_stats) <= 2
        # level<=2 output is a subset of the full minimal output
        assert set(capped.fds) <= set(full.fds)
        assert set(capped.ocds) <= set(full.ocds)

    def test_timeout_flags_result(self):
        relation = random_relation(1, n_cols=8, n_rows=300, domain=1)
        result = discover_ods(relation, timeout_seconds=0.0)
        assert result.timed_out

    def test_config_recorded(self):
        relation = make_relation(1, [(1,)])
        result = discover_ods(relation, max_level=3)
        assert result.config["max_level"] == 3
        assert result.algorithm == "FASTOD"

    def test_no_pruning_algorithm_name(self):
        relation = make_relation(1, [(1,)])
        result = discover_ods(relation, minimality_pruning=False)
        assert result.algorithm == "FASTOD-NoPruning"

    def test_explicit_config_object(self):
        relation = make_relation(2, [(1, 2), (2, 1)])
        result = FastOD(relation, FastODConfig(max_level=1)).run()
        assert max(s.level for s in result.level_stats) == 1


class TestStatistics:
    def test_level_stats_shape(self):
        relation = random_relation(5, n_cols=4, n_rows=30, domain=2)
        result = discover_ods(relation)
        assert result.level_stats[0].level == 1
        assert result.level_stats[0].n_nodes == 4
        assert result.level_stats[1].n_nodes == 6  # C(4,2)
        total = sum(s.n_ods_found for s in result.level_stats)
        assert total == result.n_ods

    def test_ods_attributed_to_correct_level(self):
        relation = random_relation(5, n_cols=4, n_rows=30, domain=2)
        result = discover_ods(relation)
        for stats in result.level_stats:
            # FDs found at level l have context size l-1
            assert len(result.fds_at_level(stats.level - 1)) == \
                stats.n_fds_found or stats.n_fds_found >= 0

    def test_elapsed_positive(self):
        result = discover_ods(make_relation(2, [(1, 2), (2, 3)]))
        assert result.elapsed_seconds > 0


class TestSoundnessLargerSweep:
    """Wider/duplicate-heavy relations, re-validated OD by OD."""

    @pytest.mark.parametrize("seed,cols,rows,domain", [
        (11, 6, 25, 2), (12, 6, 40, 3), (13, 7, 15, 1), (14, 5, 60, 4),
    ])
    def test_sound(self, seed, cols, rows, domain):
        relation = random_relation(seed, cols, rows, domain)
        result = discover_ods(relation)
        assert validate_result_is_sound(relation, result) == []
