"""Tests for the Theorem 5 mapping, including the central equivalence
property: a list OD holds iff all of its canonical images hold."""

from __future__ import annotations

from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    map_compatibility_part,
    map_fd_part,
    map_list_od,
)
from repro.core.od import CanonicalFD, CanonicalOCD, ListOD
from repro.core.validation import (
    list_od_holds,
    list_od_holds_via_canonical,
)
from tests.conftest import small_relations


class TestMappingShape:
    def test_fd_part(self):
        fds = map_fd_part(["a", "b"], ["c", "d"])
        assert set(fds) == {
            CanonicalFD({"a", "b"}, "c"), CanonicalFD({"a", "b"}, "d")}

    def test_fd_part_drops_trivial(self):
        assert map_fd_part(["a"], ["a"]) == []
        assert map_fd_part(["a"], ["a"], drop_trivial=False) == [
            CanonicalFD({"a"}, "a")]

    def test_compat_part_contexts(self):
        ocds = map_compatibility_part(["a", "b"], ["c", "d"])
        assert set(ocds) == {
            CanonicalOCD(set(), "a", "c"),
            CanonicalOCD({"a"}, "b", "c"),
            CanonicalOCD({"c"}, "a", "d"),
            CanonicalOCD({"a", "c"}, "b", "d"),
        }

    def test_size_is_quadratic(self):
        # |X| * |Y| OCDs before trivia removal
        ocds = map_compatibility_part(
            ["a", "b", "c"], ["d", "e"], drop_trivial=False)
        assert len(ocds) == 6

    def test_empty_sides(self):
        image = map_list_od(ListOD([], ["a"]))
        assert [str(od) for od in image.fds] == ["{}: [] -> a"]
        assert image.ocds == ()

    def test_repeated_attribute_fd_form(self):
        # X -> XY: the pure-FD shape; the OCD part is all trivial
        image = map_list_od(ListOD(["a"], ["a", "b"]))
        assert [str(od) for od in image.fds] == ["{a}: [] -> b"]
        assert all(o.is_trivial for o in map_compatibility_part(
            ["a"], ["a", "b"], drop_trivial=False))

    def test_image_len_and_str(self):
        image = map_list_od(ListOD(["a"], ["b"]))
        assert len(image) == 2
        assert "{a}: [] -> b" in str(image)


class TestTheorem5Equivalence:
    """The paper's central claim, checked on data by two *independent*
    validators: list-definition vs canonical-partition."""

    @settings(max_examples=120, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2),
           st.data())
    def test_holds_iff_canonical_holds(self, relation, data):
        names = list(relation.names)
        lhs_len = data.draw(st.integers(0, min(2, len(names))))
        rhs_len = data.draw(st.integers(1, min(2, len(names))))
        lhs = data.draw(st.permutations(names)) [:lhs_len]
        rhs = data.draw(st.permutations(names))[:rhs_len]
        od = ListOD(list(lhs), list(rhs))
        assert list_od_holds(relation, od) == \
            list_od_holds_via_canonical(relation, od)

    def test_exhaustive_on_employee_projection(self, employee_table):
        rel = employee_table.project(["yr", "bin", "sal", "subg"])
        names = rel.names
        specs = [list(p) for n in (1, 2) for p in permutations(names, n)]
        for lhs in specs:
            for rhs in specs:
                od = ListOD(lhs, rhs)
                assert list_od_holds(rel, od) == \
                    list_od_holds_via_canonical(rel, od), str(od)
