"""Serialization round trips for dependencies and results."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro import discover_ods
from repro.core.serialize import (
    dependency_from_text,
    dependency_to_text,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.errors import DependencyError
from tests.conftest import make_relation, small_relations


class TestDependencyText:
    def test_round_trip_all_kinds(self):
        from repro.core.parser import parse

        for text in ["{a}: [] -> b", "{}: a ~ b", "[a,b] -> [c]",
                     "[a] ~ [b]"]:
            dependency = parse(text)
            assert dependency_from_text(
                dependency_to_text(dependency)) == dependency


class TestResultRoundTrip:
    def test_file_round_trip(self, tmp_path):
        relation = make_relation(
            3, [(1, 5, 7), (2, 5, 7), (3, 6, 7)])
        result = discover_ods(relation)
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.same_ods(result)
        assert loaded.algorithm == result.algorithm
        assert loaded.n_rows == result.n_rows
        assert loaded.minimal == result.minimal
        assert len(loaded.level_stats) == len(result.level_stats)

    def test_file_is_plain_json(self, tmp_path):
        relation = make_relation(2, [(1, 1), (2, 2)])
        path = tmp_path / "result.json"
        save_result(discover_ods(relation), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert all(isinstance(line, str) for line in payload["fds"])

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_dict_round_trip_property(self, relation):
        result = discover_ods(relation)
        assert result_from_dict(result_to_dict(result)).same_ods(result)

    def test_config_preserved(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        result = discover_ods(relation, max_level=2)
        loaded = result_from_dict(result_to_dict(result))
        assert loaded.config["max_level"] == 2


class TestBadInput:
    def test_unknown_version(self):
        with pytest.raises(DependencyError):
            result_from_dict({"format_version": 99})

    def test_wrong_dependency_kind(self):
        payload = {"format_version": 1, "fds": ["{}: a ~ b"],
                   "ocds": [], "attributes": ["a", "b"], "n_rows": 0}
        with pytest.raises(DependencyError):
            result_from_dict(payload)

    def test_ocd_slot_rejects_fd(self):
        payload = {"format_version": 1, "fds": [],
                   "ocds": ["{a}: [] -> b"], "attributes": ["a", "b"],
                   "n_rows": 0}
        with pytest.raises(DependencyError):
            result_from_dict(payload)
