"""Soundness of the set-based axiomatization (Figure 2) on data, plus
the inference engine.

Soundness property: for random instances, whenever all premises of an
axiom hold on the instance, the conclusion holds too (Theorem 6 is the
syntactic counterpart)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axioms_set import (
    InferenceEngine,
    augmentation_fd,
    augmentation_ocd,
    chain,
    commutativity,
    identity,
    is_minimal_in,
    normalization,
    propagate,
    reflexivity,
    strengthen,
)
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.validation import CanonicalValidator
from repro.errors import DependencyError
from tests.conftest import small_relations

relations = small_relations(max_cols=4, max_rows=8, max_domain=2)


def _contexts(names, data, max_size=2):
    size = data.draw(st.integers(0, min(max_size, len(names))))
    return frozenset(data.draw(st.permutations(list(names)))[:size])


class TestAxiomConstructors:
    def test_reflexivity_all_trivial(self):
        for fd in reflexivity({"a", "b"}):
            assert fd.is_trivial

    def test_identity_trivial(self):
        assert identity({"x"}, "a").is_trivial

    def test_commutativity_identity_of_representation(self):
        ocd = CanonicalOCD({"x"}, "a", "b")
        assert commutativity(ocd) == ocd

    def test_strengthen_shape(self):
        conclusion = strengthen(CanonicalFD({"x"}, "a"),
                                CanonicalFD({"x", "a"}, "b"))
        assert conclusion == CanonicalFD({"x"}, "b")

    def test_strengthen_rejects_mismatch(self):
        with pytest.raises(DependencyError):
            strengthen(CanonicalFD({"x"}, "a"),
                       CanonicalFD({"y"}, "b"))

    def test_propagate_shape(self):
        assert propagate(CanonicalFD({"x"}, "a"), "b") == \
            CanonicalOCD({"x"}, "a", "b")

    def test_augmentations(self):
        assert augmentation_fd(CanonicalFD({"x"}, "a"), {"z"}) == \
            CanonicalFD({"x", "z"}, "a")
        assert augmentation_ocd(CanonicalOCD({"x"}, "a", "b"), {"z"}) == \
            CanonicalOCD({"x", "z"}, "a", "b")

    def test_normalization_all_trivial(self):
        for ocd in normalization({"a", "b"}):
            assert ocd.is_trivial

    def test_chain_simple(self):
        context = frozenset({"x"})
        conclusion = chain(
            CanonicalOCD(context, "a", "b"), [],
            CanonicalOCD(context, "b", "c"),
            [CanonicalOCD(context | {"b"}, "a", "c")])
        assert conclusion == CanonicalOCD(context, "a", "c")

    def test_chain_missing_bridge(self):
        context = frozenset({"x"})
        with pytest.raises(DependencyError):
            chain(CanonicalOCD(context, "a", "b"), [],
                  CanonicalOCD(context, "b", "c"), [])

    def test_chain_context_mismatch(self):
        with pytest.raises(DependencyError):
            chain(CanonicalOCD({"x"}, "a", "b"), [],
                  CanonicalOCD({"y"}, "b", "c"), [])

    def test_chain_disconnected(self):
        context = frozenset()
        with pytest.raises(DependencyError):
            chain(CanonicalOCD(context, "a", "b"), [],
                  CanonicalOCD(context, "c", "d"),
                  [CanonicalOCD({"q"}, "a", "d")])


class TestAxiomSoundnessOnData:
    """Premises hold on the instance => conclusion holds (Theorem 6)."""

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_strengthen(self, relation, data):
        names = relation.names
        if len(names) < 2:
            return
        validator = CanonicalValidator(relation)
        context = _contexts(names, data)
        a = data.draw(st.sampled_from(list(names)))
        b = data.draw(st.sampled_from(list(names)))
        first = CanonicalFD(context, a)
        second = CanonicalFD(context | {a}, b)
        if validator.holds(first) and validator.holds(second):
            assert validator.holds(strengthen(first, second))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_propagate(self, relation, data):
        names = relation.names
        validator = CanonicalValidator(relation)
        context = _contexts(names, data)
        a = data.draw(st.sampled_from(list(names)))
        b = data.draw(st.sampled_from(list(names)))
        fd = CanonicalFD(context, a)
        if validator.holds(fd):
            assert validator.holds(propagate(fd, b))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_augmentation_fd(self, relation, data):
        names = relation.names
        validator = CanonicalValidator(relation)
        context = _contexts(names, data, max_size=1)
        extra = _contexts(names, data, max_size=2)
        a = data.draw(st.sampled_from(list(names)))
        fd = CanonicalFD(context, a)
        if validator.holds(fd):
            assert validator.holds(augmentation_fd(fd, extra))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_augmentation_ocd(self, relation, data):
        names = relation.names
        if len(names) < 2:
            return
        validator = CanonicalValidator(relation)
        context = _contexts(names, data, max_size=1)
        extra = _contexts(names, data, max_size=2)
        a, b = list(names)[0], list(names)[1]
        ocd = CanonicalOCD(context, a, b)
        if validator.holds(ocd):
            assert validator.holds(augmentation_ocd(ocd, extra))

    @settings(max_examples=80, deadline=None)
    @given(relations, st.data())
    def test_chain(self, relation, data):
        names = list(relation.names)
        if len(names) < 3:
            return
        validator = CanonicalValidator(relation)
        a, b, c = data.draw(st.permutations(names))[:3]
        context = frozenset()
        premises = [
            CanonicalOCD(context, a, b),
            CanonicalOCD(context, b, c),
            CanonicalOCD(context | {b}, a, c),
        ]
        if all(validator.holds(p) for p in premises):
            conclusion = chain(premises[0], [], premises[1],
                               [premises[2]])
            assert validator.holds(conclusion)


class TestInferenceEngine:
    def test_fd_closure(self):
        engine = InferenceEngine([
            CanonicalFD({"a"}, "b"), CanonicalFD({"b"}, "c")])
        assert engine.attribute_closure({"a"}) == {"a", "b", "c"}
        assert engine.implies_fd(CanonicalFD({"a"}, "c"))
        assert not engine.implies_fd(CanonicalFD({"c"}, "a"))

    def test_constant_propagates_everywhere(self):
        engine = InferenceEngine([CanonicalFD(set(), "k")])
        assert engine.implies_fd(CanonicalFD({"z"}, "k"))
        assert engine.implies_ocd(CanonicalOCD({"z"}, "k", "m"))

    def test_ocd_augmentation(self):
        engine = InferenceEngine([CanonicalOCD({"x"}, "a", "b")])
        assert engine.implies_ocd(CanonicalOCD({"x", "y"}, "a", "b"))
        assert not engine.implies_ocd(CanonicalOCD(set(), "a", "b"))

    def test_ocd_via_derived_constant_context(self):
        # context attribute derivable via FD closure
        engine = InferenceEngine([
            CanonicalFD({"x"}, "y"),
            CanonicalOCD({"x", "y"}, "a", "b"),
        ])
        assert engine.implies_ocd(CanonicalOCD({"x"}, "a", "b"))

    def test_trivia_always_implied(self):
        engine = InferenceEngine([])
        assert engine.implies(CanonicalFD({"a"}, "a"))
        assert engine.implies(CanonicalOCD({"a"}, "a", "b"))

    def test_chain_inference(self):
        context = frozenset()
        engine = InferenceEngine([
            CanonicalOCD(context, "a", "b"),
            CanonicalOCD(context, "b", "c"),
            CanonicalOCD(frozenset({"b"}), "a", "c"),
        ])
        assert engine.implies_ocd(CanonicalOCD(context, "a", "c"))

    def test_rejects_non_od(self):
        with pytest.raises(DependencyError):
            InferenceEngine(["not an od"])

    @settings(max_examples=50, deadline=None)
    @given(relations)
    def test_complete_for_instance_covers(self, relation):
        """Every valid canonical OD follows from the discovered minimal
        cover — the completeness half of Theorem 8 seen through the
        inference engine."""
        from repro import discover_ods
        from repro.baselines import all_valid_canonical_ods

        result = discover_ods(relation)
        engine = InferenceEngine([*result.fds, *result.ocds])
        valid_fds, valid_ocds = all_valid_canonical_ods(relation)
        for fd in valid_fds:
            assert engine.implies_fd(fd), str(fd)
        for ocd in valid_ocds:
            assert engine.implies_ocd(ocd), str(ocd)


class TestMinimalityHelper:
    def test_fd_minimality(self):
        valid = {CanonicalFD({"a"}, "c"), CanonicalFD({"a", "b"}, "c")}
        assert is_minimal_in(CanonicalFD({"a"}, "c"), valid, set())
        assert not is_minimal_in(CanonicalFD({"a", "b"}, "c"), valid, set())

    def test_ocd_blocked_by_constant(self):
        fds = {CanonicalFD({"x"}, "a")}
        ocd = CanonicalOCD({"x"}, "a", "b")
        assert not is_minimal_in(ocd, fds, {ocd})

    def test_trivial_never_minimal(self):
        assert not is_minimal_in(CanonicalFD({"a"}, "a"), set(), set())
