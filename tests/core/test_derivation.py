"""Derivations: every implied OD gets a sound explanation."""

from __future__ import annotations

from hypothesis import given, settings

from repro import discover_ods
from repro.core.axioms_set import InferenceEngine
from repro.core.derivation import Explainer, explain
from repro.core.od import CanonicalFD, CanonicalOCD
from tests.conftest import small_relations


class TestFdDerivations:
    def test_trivial(self):
        derivation = explain(CanonicalFD({"a"}, "a"), [])
        assert derivation is not None
        assert "Reflexivity" in derivation.steps[0]

    def test_direct_cover_hit(self):
        fd = CanonicalFD({"a"}, "b")
        derivation = explain(fd, [fd])
        assert derivation is not None
        assert derivation.premises == [fd]

    def test_augmentation(self):
        cover = [CanonicalFD({"a"}, "b")]
        derivation = explain(CanonicalFD({"a", "z"}, "b"), cover)
        assert derivation is not None
        assert any("Augmentation-I" in step for step in derivation.steps)

    def test_transitive_chain(self):
        cover = [CanonicalFD({"a"}, "b"), CanonicalFD({"b"}, "c")]
        derivation = explain(CanonicalFD({"a"}, "c"), cover)
        assert derivation is not None
        assert set(derivation.premises) == set(cover)
        assert any("Strengthen" in step for step in derivation.steps)

    def test_unimplied_returns_none(self):
        assert explain(CanonicalFD({"a"}, "b"), []) is None


class TestOcdDerivations:
    def test_trivial_identity(self):
        derivation = explain(CanonicalOCD(set(), "a", "a"), [])
        assert "Identity" in derivation.steps[0]

    def test_trivial_normalization(self):
        derivation = explain(CanonicalOCD({"a"}, "a", "b"), [])
        assert "Normalization" in derivation.steps[0]

    def test_propagate(self):
        cover = [CanonicalFD({"x"}, "a")]
        derivation = explain(CanonicalOCD({"x"}, "a", "b"), cover)
        assert derivation is not None
        assert any("Propagate" in step for step in derivation.steps)

    def test_augmentation_ii(self):
        cover = [CanonicalOCD({"x"}, "a", "b")]
        derivation = explain(CanonicalOCD({"x", "y"}, "a", "b"), cover)
        assert derivation is not None
        assert any("Augmentation-II" in step
                   for step in derivation.steps)
        assert cover[0] in derivation.premises

    def test_derived_context_constant(self):
        cover = [CanonicalFD({"x"}, "y"),
                 CanonicalOCD({"x", "y"}, "a", "b")]
        derivation = explain(CanonicalOCD({"x"}, "a", "b"), cover)
        assert derivation is not None
        assert any("constant" in step for step in derivation.steps)

    def test_chain(self):
        cover = [
            CanonicalOCD(set(), "a", "b"),
            CanonicalOCD(set(), "b", "c"),
            CanonicalOCD(frozenset({"b"}), "a", "c"),
        ]
        derivation = explain(CanonicalOCD(set(), "a", "c"), cover)
        assert derivation is not None
        assert any("Chain" in step for step in derivation.steps)

    def test_unimplied_returns_none(self):
        assert explain(CanonicalOCD(set(), "a", "b"), []) is None

    def test_str_rendering(self):
        cover = [CanonicalOCD({"x"}, "a", "b")]
        derivation = explain(CanonicalOCD({"x", "y"}, "a", "b"), cover)
        text = str(derivation)
        assert text.startswith("derivation of")
        assert "1." in text


class TestAgreementWithEngine:
    """explain(od) is not None  <=>  engine.implies(od), and every
    cited premise is either in the cover, trivial, or itself implied."""

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=3, max_rows=8, max_domain=2))
    def test_explains_exactly_the_implied(self, relation):
        from repro.baselines import all_valid_canonical_ods

        result = discover_ods(relation)
        cover = [*result.fds, *result.ocds]
        explainer = Explainer(cover)
        engine = InferenceEngine(cover)
        valid_fds, valid_ocds = all_valid_canonical_ods(relation)
        for od in list(valid_fds) + list(valid_ocds):
            derivation = explainer.explain(od)
            assert (derivation is not None) == engine.implies(od), str(od)
            if derivation is not None:
                for premise in derivation.premises:
                    assert premise in cover or premise.is_trivial \
                        or engine.implies(premise), str(premise)
