"""Soundness of the list-based axiomatization (Figure 1) on data."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axioms_list import (
    chain,
    downward_closure,
    normalization,
    prefix,
    reflexivity,
    replace,
    suffix,
    theorem1_decomposition,
    theorem2_fd_form,
    transitivity,
    union,
)
from repro.core.od import ListOD, OrderCompatibility
from repro.core.validation import (
    list_od_holds,
    order_compatible,
)
from repro.errors import DependencyError
from tests.conftest import small_relations

relations = small_relations(max_cols=4, max_rows=8, max_domain=2)


def _spec(names, data, max_len=2, min_len=0):
    length = data.draw(st.integers(min_len, min(max_len, len(names))))
    return list(data.draw(st.permutations(list(names)))[:length])


class TestConstructors:
    def test_reflexivity(self):
        od = reflexivity(["a"], ["b"])
        assert od == ListOD(["a", "b"], ["a"])

    def test_prefix(self):
        od = prefix(["z"], ListOD(["a"], ["b"]))
        assert od == ListOD(["z", "a"], ["z", "b"])

    def test_transitivity_checks_middle(self):
        with pytest.raises(DependencyError):
            transitivity(ListOD(["a"], ["b"]), ListOD(["c"], ["d"]))
        od = transitivity(ListOD(["a"], ["b"]), ListOD(["b"], ["c"]))
        assert od == ListOD(["a"], ["c"])

    def test_normalization_shape(self):
        forward, backward = normalization(["w"], ["x"], ["y"], ["v"])
        assert forward.lhs.attrs == ("w", "x", "y", "x", "v")
        assert forward.rhs.attrs == ("w", "x", "y", "v")
        assert backward == forward.reversed()

    def test_suffix_shape(self):
        forward, backward = suffix(ListOD(["a"], ["b"]))
        assert forward == ListOD(["a"], ["b", "a"])
        assert backward == ListOD(["b", "a"], ["a"])

    def test_union_checks_lhs(self):
        with pytest.raises(DependencyError):
            union(ListOD(["a"], ["b"]), ListOD(["c"], ["d"]))
        od = union(ListOD(["a"], ["b"]), ListOD(["a"], ["c"]))
        assert od == ListOD(["a"], ["b", "c"])

    def test_chain_shape(self):
        links = [OrderCompatibility(["a"], ["b"]),
                 OrderCompatibility(["b"], ["c"])]
        bridges = [OrderCompatibility(["b", "a"], ["b", "c"])]
        conclusion = chain(links, bridges)
        assert conclusion == OrderCompatibility(["a"], ["c"])

    def test_chain_missing_bridge(self):
        links = [OrderCompatibility(["a"], ["b"]),
                 OrderCompatibility(["b"], ["c"])]
        with pytest.raises(DependencyError):
            chain(links, [])

    def test_chain_broken_links(self):
        with pytest.raises(DependencyError):
            chain([OrderCompatibility(["a"], ["b"]),
                   OrderCompatibility(["x"], ["c"])], [])

    def test_chain_empty(self):
        with pytest.raises(DependencyError):
            chain([], [])

    def test_downward_closure(self):
        compat = OrderCompatibility(["a", "b"], ["c", "d"])
        assert downward_closure(compat, 1, 1) == \
            OrderCompatibility(["a"], ["c"])

    def test_replace(self):
        forward, backward = replace(["x"], ["m"], ["n"], ["z"])
        assert forward == ListOD(["x", "m", "z"], ["x", "n", "z"])
        assert backward == forward.reversed()


class TestSoundnessOnData:
    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_reflexivity(self, relation, data):
        names = list(relation.names)
        lhs = _spec(names, data)
        extra = _spec(names, data)
        assert list_od_holds(relation, reflexivity(lhs, extra))

    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_prefix(self, relation, data):
        names = list(relation.names)
        od = ListOD(_spec(names, data), _spec(names, data, min_len=1))
        if list_od_holds(relation, od):
            front = _spec(names, data)
            assert list_od_holds(relation, prefix(front, od))

    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_transitivity(self, relation, data):
        names = list(relation.names)
        x = _spec(names, data)
        y = _spec(names, data, min_len=1)
        z = _spec(names, data, min_len=1)
        first, second = ListOD(x, y), ListOD(y, z)
        if list_od_holds(relation, first) and \
                list_od_holds(relation, second):
            assert list_od_holds(relation, transitivity(first, second))

    @settings(max_examples=40, deadline=None)
    @given(relations, st.data())
    def test_normalization(self, relation, data):
        names = list(relation.names)
        forward, backward = normalization(
            _spec(names, data, 1), _spec(names, data, 1),
            _spec(names, data, 1), _spec(names, data, 1))
        assert list_od_holds(relation, forward)
        assert list_od_holds(relation, backward)

    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_suffix(self, relation, data):
        names = list(relation.names)
        od = ListOD(_spec(names, data), _spec(names, data, min_len=1))
        if list_od_holds(relation, od):
            forward, backward = suffix(od)
            assert list_od_holds(relation, forward)
            assert list_od_holds(relation, backward)

    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_union(self, relation, data):
        names = list(relation.names)
        x = _spec(names, data)
        first = ListOD(x, _spec(names, data, min_len=1))
        second = ListOD(x, _spec(names, data, min_len=1))
        if list_od_holds(relation, first) and \
                list_od_holds(relation, second):
            assert list_od_holds(relation, union(first, second))

    @settings(max_examples=60, deadline=None)
    @given(relations, st.data())
    def test_chain(self, relation, data):
        names = list(relation.names)
        if len(names) < 3:
            return
        a, b, c = data.draw(st.permutations(names))[:3]
        links = [OrderCompatibility([a], [b]),
                 OrderCompatibility([b], [c])]
        bridges = [OrderCompatibility([b, a], [b, c])]
        premises_hold = all(
            order_compatible(relation, link) for link in links
        ) and all(order_compatible(relation, bridge) for bridge in bridges)
        if premises_hold:
            assert order_compatible(relation, chain(links, bridges))

    @settings(max_examples=50, deadline=None)
    @given(relations, st.data())
    def test_theorem1_decomposition(self, relation, data):
        names = list(relation.names)
        od = ListOD(_spec(names, data), _spec(names, data, min_len=1))
        fd_part, compat_part = theorem1_decomposition(od)
        assert list_od_holds(relation, od) == (
            list_od_holds(relation, fd_part)
            and order_compatible(relation, compat_part))

    def test_theorem2_fd_form_shape(self):
        od = theorem2_fd_form(["a"], ["b", "c"])
        assert od == ListOD(["a"], ["a", "b", "c"])
