"""Unit tests for candidate-set computations (Algorithm 3 lines 1-8)."""

from __future__ import annotations

from repro.core.candidates import (
    LatticeNode,
    all_pairs,
    compute_cc,
    compute_cs,
    context_names,
    initial_cs_level2,
    mask_from_attributes,
    ordered_pair,
)
from repro.partitions.partition import StrippedPartition


def _node(mask, cc=0, cs=None):
    return LatticeNode(mask, StrippedPartition([], 0), cc=cc, cs=cs or set())


class TestComputeCc:
    def test_intersection(self):
        previous = {
            0b01: _node(0b01, cc=0b111),
            0b10: _node(0b10, cc=0b011),
        }
        assert compute_cc(0b11, previous) == 0b011

    def test_empty_short_circuit(self):
        previous = {
            0b01: _node(0b01, cc=0b100),
            0b10: _node(0b10, cc=0b011),
        }
        assert compute_cc(0b11, previous) == 0


class TestComputeCs:
    def test_level2_initial(self):
        assert initial_cs_level2(0b101) == {(0, 2)}

    def test_level3_requires_all_parents(self):
        pair = (0, 1)
        previous = {
            0b011: _node(0b011, cs={pair}),   # X \ {c2}
            0b101: _node(0b101, cs=set()),
            0b110: _node(0b110, cs=set()),
        }
        # {A,B} must be in C_s+(X\D) for every D outside the pair;
        # here D = c2 only, and the pair is present there.
        assert compute_cs(0b111, previous) == {pair}

    def test_level3_missing_parent(self):
        previous = {
            0b011: _node(0b011, cs=set()),    # pair (0,1) dropped here
            0b101: _node(0b101, cs={(0, 2)}),
            0b110: _node(0b110, cs={(1, 2)}),
        }
        survivors = compute_cs(0b111, previous)
        # (0,1) is gone (its only qualifying parent dropped it); the
        # other two pairs each appear in their single qualifying parent
        assert (0, 1) not in survivors
        assert survivors == {(0, 2), (1, 2)}

    def test_level4_counting(self):
        pair = (0, 1)
        # X = {0,1,2,3}; parents X\{2} and X\{3} must both carry pair
        previous = {
            0b0111: _node(0b0111, cs={pair}),
            0b1011: _node(0b1011, cs={pair}),
            0b1101: _node(0b1101, cs=set()),
            0b1110: _node(0b1110, cs=set()),
        }
        assert compute_cs(0b1111, previous) == {pair}
        previous[0b1011].cs = set()
        assert compute_cs(0b1111, previous) == set()


class TestHelpers:
    def test_ordered_pair(self):
        assert ordered_pair(3, 1) == (1, 3)
        assert ordered_pair(1, 3) == (1, 3)

    def test_all_pairs(self):
        assert all_pairs(0b1011) == {(0, 1), (0, 3), (1, 3)}

    def test_context_names(self):
        assert context_names(0b101, ("a", "b", "c")) == frozenset(
            {"a", "c"})

    def test_mask_from_attributes(self):
        assert mask_from_attributes([0, 2]) == 0b101

    def test_node_level(self):
        assert _node(0b1011).level == 3
