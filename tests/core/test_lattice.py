"""Unit tests for level generation (Algorithm 2)."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import (
    next_level_masks,
    parents_for_partition,
    single_attr_diff_blocks,
)
from repro.relation.schema import bit_count


class TestBlocks:
    def test_grouped_by_shared_prefix(self):
        masks = [0b011, 0b101, 0b110]
        blocks = single_attr_diff_blocks(masks)
        # 0b011 -> prefix 0b001; 0b101 -> 0b001; 0b110 -> 0b010
        assert blocks == {0b001: [0b010, 0b100], 0b010: [0b100]}


class TestNextLevel:
    def test_full_level(self):
        level1 = [0b001, 0b010, 0b100]
        assert next_level_masks(level1) == [0b011, 0b101, 0b110]

    def test_apriori_filter(self):
        # {a,b}, {a,c} present but {b,c} missing: {a,b,c} not generated
        assert next_level_masks([0b011, 0b101]) == []

    def test_complete_level2_to_3(self):
        level2 = [0b011, 0b101, 0b110]
        assert next_level_masks(level2) == [0b111]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 4))
    def test_matches_specification(self, arity, level):
        """next_level == all (l+1)-sets whose l-subsets are all present,
        for a random sub-collection of the full level."""
        import random

        full_level = [sum(1 << i for i in combo)
                      for combo in combinations(range(arity), level)]
        rng = random.Random(arity * 10 + level)
        kept = [m for m in full_level if rng.random() < 0.7]
        expected = []
        for combo in combinations(range(arity), level + 1):
            mask = sum(1 << i for i in combo)
            subsets = [mask ^ (1 << i) for i in combo]
            if all(s in kept for s in subsets):
                expected.append(mask)
        assert next_level_masks(kept) == sorted(expected)

    def test_each_candidate_generated_once(self):
        level = [0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]
        result = next_level_masks(level)
        assert len(result) == len(set(result))
        assert all(bit_count(m) == 3 for m in result)


class TestParentsForPartition:
    def test_drops_two_lowest(self):
        left, right = parents_for_partition(0b1011)
        assert left == 0b1010   # minus lowest (bit 0)
        assert right == 0b1001  # minus second-lowest (bit 1)
        assert left | right == 0b1011

    def test_covers_mask(self):
        for mask in [0b11, 0b110, 0b10101, 0b111111]:
            left, right = parents_for_partition(mask)
            assert left | right == mask
            assert bit_count(left) == bit_count(mask) - 1
            assert bit_count(right) == bit_count(mask) - 1
