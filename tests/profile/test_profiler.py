"""The one-call profiler: pipeline wiring and report rendering."""

from __future__ import annotations

import pytest

from repro.profile import profile_relation
from tests.conftest import make_relation


@pytest.fixture
def relation():
    return make_relation(
        3, [(1, 5, 7), (2, 5, 7), (3, 6, 7), (4, 6, 7)])


class TestProfileRelation:
    def test_pipeline_fields(self, relation):
        profile = profile_relation(relation)
        assert profile.n_rows == 4
        assert profile.keys.n_keys >= 1
        assert profile.n_dependencies == profile.ods.n_ods
        assert profile.elapsed_seconds > 0
        assert profile.approximate is None

    def test_constants_surfaced(self, relation):
        profile = profile_relation(relation)
        assert profile.constants == ["c2"]

    def test_approximate_optional(self, relation):
        profile = profile_relation(relation, approximate_error=0.5)
        assert profile.approximate is not None
        assert profile.approximate.max_error == 0.5

    def test_max_level_respected(self, relation):
        profile = profile_relation(relation, max_level=1)
        assert all(len(od.context) == 0 for od in profile.ods.all_ods)

    def test_render_text(self, relation):
        text = profile_relation(relation).render_text()
        assert "Keys" in text
        assert "Constant attributes: c2" in text
        assert "coverage=" in text

    def test_render_markdown(self, relation):
        markdown = profile_relation(relation).render_markdown()
        assert markdown.startswith("# Data profile")
        assert "| dependency | coverage | context |" in markdown
        assert "`c2`" in markdown

    def test_ranked_matches_ods(self, relation):
        profile = profile_relation(relation)
        assert len(profile.ranked) == profile.ods.n_ods

    def test_report_top_limit(self, relation):
        text = profile_relation(relation).render_text(top=1)
        # only one ranked OD line is shown
        ranked_lines = [line for line in text.splitlines()
                        if "coverage=" in line]
        assert len(ranked_lines) == 1
