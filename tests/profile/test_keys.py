"""Minimal key discovery: matches a brute-force definition check."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings

from repro.profile import discover_keys
from tests.conftest import make_relation, small_relations


def _brute_minimal_keys(relation):
    names = relation.names
    rows = list(relation.rows())
    index = {name: i for i, name in enumerate(names)}

    def is_superkey(attrs):
        seen = set()
        for row in rows:
            key = tuple(row[index[a]] for a in attrs)
            if key in seen:
                return False
            seen.add(key)
        return True

    keys = []
    for size in range(0, len(names) + 1):
        for attrs in combinations(names, size):
            if is_superkey(attrs) and not any(
                    set(prior) <= set(attrs) for prior in keys):
                keys.append(attrs)
    return {frozenset(k) for k in keys}


class TestDiscoverKeys:
    def test_single_key_column(self):
        relation = make_relation(2, [(1, 5), (2, 5), (3, 6)])
        result = discover_keys(relation)
        assert set(result.keys) == {frozenset({"c0"})}

    def test_composite_key(self):
        relation = make_relation(
            2, [(1, 1), (1, 2), (2, 1), (2, 2)])
        result = discover_keys(relation)
        assert set(result.keys) == {frozenset({"c0", "c1"})}

    def test_no_key(self):
        relation = make_relation(1, [(1,), (1,)])
        result = discover_keys(relation)
        assert result.keys == []

    def test_empty_relation_empty_key(self):
        relation = make_relation(2, [])
        result = discover_keys(relation)
        assert result.keys == [frozenset()]

    def test_single_row_empty_key(self):
        relation = make_relation(2, [(1, 2)])
        assert discover_keys(relation).keys == [frozenset()]

    def test_max_size(self):
        relation = make_relation(
            2, [(1, 1), (1, 2), (2, 1), (2, 2)])
        result = discover_keys(relation, max_size=1)
        assert result.keys == []

    def test_is_superkey_helper(self):
        relation = make_relation(2, [(1, 5), (2, 5), (3, 6)])
        result = discover_keys(relation)
        assert result.is_superkey({"c0", "c1"})
        assert result.is_superkey({"c0"})
        assert not result.is_superkey({"c1"})

    def test_rendered_sorted_by_size(self):
        relation = make_relation(
            3, [(1, 0, 0), (2, 0, 1), (3, 1, 0), (4, 1, 1)])
        rendered = discover_keys(relation).rendered()
        assert rendered[0] == "(c0)"

    @settings(max_examples=80, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=3))
    def test_matches_bruteforce(self, relation):
        result = discover_keys(relation)
        assert set(result.keys) == _brute_minimal_keys(relation)

    @settings(max_examples=40, deadline=None)
    @given(small_relations(max_cols=4, max_rows=10, max_domain=2))
    def test_agrees_with_fastod_key_fds(self, relation):
        """For each minimal key K and attribute A outside it, the FD
        K: [] -> A is valid — consistency with Lemma 12."""
        from repro.core.od import CanonicalFD
        from repro.core.validation import CanonicalValidator

        validator = CanonicalValidator(relation)
        for key in discover_keys(relation).keys:
            for attribute in relation.names:
                if attribute not in key:
                    assert validator.holds(CanonicalFD(key, attribute))
