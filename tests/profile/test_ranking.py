"""Ranking: coverage semantics and ordering stability."""

from __future__ import annotations

from repro import discover_ods
from repro.profile import rank_ods, top_ods
from tests.conftest import make_relation


class TestRanking:
    def test_empty_context_has_full_coverage(self):
        relation = make_relation(
            2, [(1, 10), (1, 20), (2, 30), (2, 40)])
        result = discover_ods(relation)
        ranked = rank_ods(result, relation)
        for item in ranked:
            if not item.od.context:
                assert item.coverage == 1.0

    def test_key_context_has_zero_coverage(self):
        # c0 is a key: FD {c0}: [] -> c1 constrains no tuple pair
        relation = make_relation(2, [(1, 9), (2, 3), (3, 5)])
        result = discover_ods(relation)
        ranked = {str(r.od): r for r in rank_ods(result, relation)}
        assert ranked["{c0}: [] -> c1"].coverage == 0.0

    def test_partial_coverage(self):
        # context c0: rows 0,1 grouped; rows 2,3 singletons
        relation = make_relation(
            2, [(1, 5), (1, 5), (2, 6), (3, 7)])
        result = discover_ods(relation)
        by_od = {str(r.od): r for r in rank_ods(result, relation)}
        fd = by_od.get("{c0}: [] -> c1")
        if fd is not None:
            assert fd.coverage == 0.5

    def test_sorted_best_first(self):
        relation = make_relation(
            3, [(1, 1, 0), (2, 2, 0), (3, 3, 1), (3, 3, 1)])
        ranked = rank_ods(discover_ods(relation), relation)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self):
        relation = make_relation(
            3, [(1, 1, 0), (2, 2, 0), (3, 3, 1), (3, 3, 1)])
        result = discover_ods(relation)
        first = [str(r.od) for r in rank_ods(result, relation)]
        second = [str(r.od) for r in rank_ods(result, relation)]
        assert first == second

    def test_top_limits(self):
        relation = make_relation(2, [(1, 1), (2, 2), (3, 3)])
        result = discover_ods(relation)
        assert len(top_ods(result, relation, limit=1)) == 1

    def test_str_renders_signals(self):
        relation = make_relation(2, [(1, 1), (2, 2)])
        ranked = rank_ods(discover_ods(relation), relation)
        assert "coverage=" in str(ranked[0])
