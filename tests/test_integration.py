"""End-to-end integration tests across module boundaries."""

from __future__ import annotations

import json


from repro import Relation, discover_ods, parse
from repro.cli import main
from repro.core.serialize import load_result, save_result
from repro.datasets import date_dim, flight_like, web_sales
from repro.optimizer import (
    ODIndex,
    RangePredicate,
    StarQuery,
    compare_plans,
    simplify_order_by,
)
from repro.profile import profile_relation
from repro.relation.csvio import read_csv, write_csv
from repro.violations import check_dependency, greedy_repair, verify_repair


class TestDiscoverSerializeOptimize:
    """discover -> save -> load -> index -> rewrite, no re-discovery."""

    def test_pipeline(self, tmp_path):
        dim = date_dim(365)
        result = discover_ods(dim)
        path = tmp_path / "date_dim_ods.json"
        save_result(result, path)

        loaded = load_result(path)
        index = ODIndex.from_result(loaded)
        assert index.implies_list_od(["d_date_sk"], ["d_year"])

        fact = web_sales(400, 365)
        query = StarQuery("ws_sold_date_sk", "d_date_sk",
                          RangePredicate("d_month", 3, 6))
        comparison = compare_plans(fact, dim, query, index)
        assert comparison.elimination.applied
        assert comparison.equivalent


class TestCsvRoundTripDiscovery:
    """generate -> CSV -> reload -> discovery results identical."""

    def test_generated_csv_discovery_identical(self, tmp_path):
        original = flight_like(200, 8)
        path = tmp_path / "flight.csv"
        write_csv(original, path)
        reloaded = read_csv(path)
        first = discover_ods(original)
        second = discover_ods(reloaded)
        assert first.same_ods(second)


class TestCliToLibrary:
    """CLI JSON output parses back into library objects."""

    def test_json_ods_parse(self, tmp_path, capsys):
        relation = flight_like(100, 6)
        path = tmp_path / "data.csv"
        write_csv(relation, path)
        assert main(["discover", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.core.validation import CanonicalValidator

        validator = CanonicalValidator(relation.encode())
        for line in payload["fds"] + payload["ocds"]:
            assert validator.holds(parse(line)), line


class TestCleanThenDiscover:
    """repair -> rediscovery finds the repaired rule as exact."""

    def test_repair_recovers_dependency(self):
        rows = [(i, i) for i in range(12)]
        rows[5] = (5, 0)  # one corrupted pair breaks c0 ~ c1
        relation = Relation.from_rows(["c0", "c1"], rows)
        assert not check_dependency(relation, "[c0] ~ [c1]").holds

        repair = greedy_repair(relation, ["[c0] ~ [c1]"])
        assert verify_repair(repair, ["[c0] ~ [c1]"])
        rediscovered = discover_ods(repair.relation)
        assert "{}: c0 ~ c1" in {str(o) for o in rediscovered.ocds}


class TestProfileDrivesOptimizer:
    """profiler output feeds the optimizer without re-running FASTOD."""

    def test_profile_to_simplification(self):
        dim = date_dim(365)
        profile = profile_relation(dim)
        index = ODIndex.from_result(profile.ods)
        simplified = simplify_order_by(
            index, ["d_year", "d_quarter", "d_month"])
        assert list(simplified.simplified) == ["d_quarter", "d_month"]

    def test_profile_keys_match_superkey_contexts(self):
        relation = flight_like(150, 6)
        profile = profile_relation(relation)
        # flight_sk is the key; every other attribute is determined
        assert profile.keys.is_superkey({"flight_sk"})
        determined = {fd.attribute for fd in profile.ods.fds
                      if fd.context == frozenset({"flight_sk"})}
        index = ODIndex.from_result(profile.ods)
        closure = index.attribute_closure({"flight_sk"})
        assert closure == set(relation.names)
        assert determined <= closure
