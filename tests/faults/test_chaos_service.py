"""Chaos at the service layer: jobs, store, and graceful degradation.

An in-process :class:`ODService` is driven through its scheduler with
faults armed; whatever the injection does to the pool or the disk, the
discovery *answer* must match the clean run, and the service must
keep answering.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.datasets import make_dataset
from repro.faults import FaultPlan
from repro.server.http import ODService
from repro.server.jobs import DEGRADE_REBUILD_THRESHOLD

#: Force tiny relations over the pool so injected pool faults are
#: actually on the dispatch path.
POOLED_CONFIG = {"workers": 2, "parallel_min_grouped_rows": 0}


@pytest.fixture()
def service(tmp_path):
    with ODService(port=0, workers=2,
                   store_dir=str(tmp_path / "store")) as svc:
        yield svc


def register(service) -> str:
    relation = make_dataset("flight", n_rows=300, n_attrs=5, seed=6)
    entry = service.catalog.register(relation, name="chaos")
    return entry.fingerprint


def run_discover(service, fingerprint: str, **params):
    job = service.scheduler.submit(
        "discover", fingerprint,
        params={"config": dict(POOLED_CONFIG), **params})
    assert service.scheduler.wait(job.id, timeout=120.0).finished
    return job


def dependency_sets(job):
    result = job.payload["result"]
    return (result["fds"], result["ocds"])


class TestChaosDiscovery:
    def test_worker_crash_job_still_byte_identical(self, tmp_path):
        with ODService(port=0, workers=2,
                       store_dir=str(tmp_path / "clean")) as clean_svc:
            fp = register(clean_svc)
            clean = dependency_sets(run_discover(clean_svc, fp))
        # the kill races the victim's task pickup — re-arm on a fresh
        # service (fresh store, so nothing is cached) until a dispatch
        # actually loses work and the retry path runs
        for attempt in range(20):
            plan = FaultPlan(seed=0, rates={"pool.worker.kill": 1.0},
                             limits={"pool.worker.kill": 1})
            store = tmp_path / f"chaos-{attempt}"
            with ODService(port=0, workers=2,
                           store_dir=str(store)) as svc:
                fp = register(svc)
                with faults.injected(plan):
                    job = run_discover(svc, fp)
            assert job.status == "done"
            assert plan.fired.get("pool.worker.kill") == 1
            assert dependency_sets(job) == clean
            if job.executor_stats["retries"] >= 1:
                return
        pytest.fail("worker kill never landed mid-dispatch")

    def test_store_write_fault_does_not_fail_the_job(self, service):
        fp = register(service)
        plan = FaultPlan(seed=0, rates={"store.write": 1.0},
                         limits={"store.write": 1})
        with faults.injected(plan):
            job = run_discover(service, fp)
        assert job.status == "done"
        assert service.store.stats()["write_errors"] == 1
        # the in-memory tier still serves the result as a cache hit
        cached = run_discover(service, fp)
        assert cached.cached


class TestStoreQuarantine:
    def test_corrupt_result_file_is_quarantined(self, service):
        from repro.core.fastod import FastODConfig

        fp = register(service)
        run_discover(service, fp)
        store = service.store
        # the pooled config's work-shaping knobs share the default key
        config = FastODConfig()
        path = store._path(store.key(fp, config))
        assert path.exists()
        path.write_text("{torn", encoding="utf-8")
        with store._lock:
            store._results.clear()      # force the disk tier
        assert store.get(fp, config) is None
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        assert store.stats()["quarantined"] == 1


class TestGracefulDegradation:
    def test_rebuild_storm_pins_serial_and_reports(self, service):
        fp = register(service)
        scheduler = service.scheduler
        assert not scheduler.degraded
        for _ in range(DEGRADE_REBUILD_THRESHOLD):
            scheduler._note_rebuild()
        assert scheduler.degraded
        health = service.health()
        assert health["status"] == "degraded"
        assert health["degraded"] is True
        assert "serial" in health["degraded_reason"]
        # jobs still complete — pinned to the serial path
        job = run_discover(service, fp)
        assert job.status == "done"
        assert job.executor_stats["backend"] == "serial"
        assert all(phase["pool_tasks"] == 0
                   for phase in job.executor_stats["phases"].values())
        stats = scheduler.stats()
        assert stats["pool_rebuilds"] >= DEGRADE_REBUILD_THRESHOLD
        assert stats["degraded"] is True

    def test_healthy_service_reports_ok(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["degraded"] is False
        assert health["degraded_reason"] is None


class TestJobFaultHooks:
    def test_budget_cancel_race_yields_terminal_job(self, service):
        fp = register(service)
        plan = FaultPlan(seed=0, rates={"budget.cancel": 1.0},
                         limits={"budget.cancel": 1})
        with faults.injected(plan):
            job = run_discover(service, fp)
        assert job.finished
        assert job.status in ("done", "cancelled")

    def test_fault_plan_json_round_trips_through_env(self):
        """The plan shape subprocess tests pass via REPRO_FAULT_PLAN."""
        raw = json.dumps({"seed": 3,
                          "rates": {"jobs.start.delay": 1.0},
                          "delays": {"jobs.start.delay": 2.0}})
        plan = FaultPlan.from_json(raw)
        assert plan.delay_seconds("jobs.start.delay") == 2.0
