"""Crash recovery at the executor layer.

One injected worker crash must cost a retry, never an answer: the
rebuilt pool re-runs only unacknowledged tasks and the merged verdicts
are byte-identical to a clean run.  Faults that re-fire in every
rebuilt worker process exhaust the per-batch crash budget instead and
land in the serial quarantine — which also must agree with the clean
run, because the serial kernels never touch the failure surface.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.engine import DeadlineBudget, PoolExecutor, ProductTask
from repro.engine.executors import SerialExecutor
from repro.faults import FaultPlan
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    WorkerStallError,
)
from repro.partitions.partition import StrippedPartition


@pytest.fixture(scope="module")
def relation():
    return make_dataset("flight", n_rows=300, n_attrs=5, seed=6)


@pytest.fixture(scope="module")
def encoded(relation):
    return relation.encode()


def singleton_partitions(encoded):
    return {1 << a: StrippedPartition.for_attribute(encoded, a)
            for a in range(encoded.arity)}


def scan_tasks(encoded):
    return [((a, b), 1 << a, "swap", a, b)
            for a in range(encoded.arity)
            for b in range(encoded.arity) if a != b]


def one_shot(site: str, **kwargs) -> FaultPlan:
    """A plan that fires ``site`` exactly once per process."""
    return FaultPlan(seed=0, rates={site: 1.0}, limits={site: 1},
                     **kwargs)


def canonical(result_dict):
    """A discovery result with its timing/telemetry noise stripped —
    what "byte-identical" means across serial and chaotic runs."""
    stripped = dict(result_dict)
    for key in ("elapsed_seconds", "executor", "cache", "timings"):
        stripped.pop(key, None)
    stripped["levels"] = [
        {k: v for k, v in level.items()
         if k not in ("seconds", "peak_partition_bytes")}
        for level in stripped.get("levels", ())]
    return stripped


def dispatch_until_crash(encoded, dispatch, attempts=20):
    """Arm a one-shot worker kill and run ``dispatch`` until the kill
    provably landed mid-dispatch (``retries >= 1``).

    The kill races the victim's task pickup: a worker SIGKILL'd while
    still idle loses nothing, the survivor drains the queue, and the
    dispatch finishes cleanly — so a single armed attempt cannot
    guarantee a crash was *recovered from*, only that one was
    injected.  Re-arming a fresh plan per attempt keeps each attempt
    a deterministic one-shot.
    """
    for _ in range(attempts):
        with faults.injected(one_shot("pool.worker.kill")) as plan:
            with PoolExecutor(encoded, 2, min_grouped_rows=0) as ex:
                out = dispatch(ex)
                stats = ex.telemetry.snapshot()
        assert plan.fired.get("pool.worker.kill") == 1
        if stats["retries"] >= 1:
            return out, stats
    pytest.fail(f"worker kill never landed mid-dispatch in "
                f"{attempts} attempts")


class TestExecutorRecovery:
    """PoolExecutor dispatch batches survive injected failures."""

    def test_worker_kill_scans_byte_identical(self, encoded):
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_scans(
            dict(contexts), list(tasks), budget)
        (verdicts, timed_out), stats = dispatch_until_crash(
            encoded,
            lambda ex: ex.run_scans(dict(contexts), list(tasks),
                                    budget))
        assert not timed_out
        assert verdicts == clean
        assert stats["retries"] >= 1
        assert stats["rebuilds"] >= 1
        assert not stats["degraded"]

    def test_worker_kill_products_byte_identical(self, encoded):
        import numpy as np

        parents = singleton_partitions(encoded)
        tasks = [ProductTask((1 << a) | (1 << b), 1 << a, 1 << b)
                 for a in range(encoded.arity)
                 for b in range(a + 1, encoded.arity)]
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_products(
            dict(parents), list(tasks), budget)
        (products, timed_out), stats = dispatch_until_crash(
            encoded,
            lambda ex: ex.run_products(dict(parents), list(tasks),
                                       budget))
        assert not timed_out
        assert products.keys() == clean.keys()
        for child, partition in clean.items():
            assert np.array_equal(partition.rows, products[child].rows)
            assert np.array_equal(partition.offsets,
                                  products[child].offsets)
        assert stats["retries"] >= 1

    def test_worker_task_fault_quarantines_to_serial(self, encoded):
        """``worker.task`` re-fires in every rebuilt worker (forked
        children start with fresh per-process counters), so the batch
        exhausts its crash budget and completes serially."""
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_scans(
            dict(contexts), list(tasks), budget)
        with faults.injected(one_shot("worker.task")):
            with PoolExecutor(encoded, 2, min_grouped_rows=0) as ex:
                verdicts, _ = ex.run_scans(
                    dict(contexts), list(tasks), budget)
                stats = ex.telemetry.snapshot()
        assert verdicts == clean
        assert stats["retries"] >= 1

    def test_shm_attach_fault_recovers(self, encoded):
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_scans(
            dict(contexts), list(tasks), budget)
        with faults.injected(one_shot("shm.attach")):
            with PoolExecutor(encoded, 2, min_grouped_rows=0) as ex:
                verdicts, _ = ex.run_scans(
                    dict(contexts), list(tasks), budget)
        assert verdicts == clean

    def test_queue_drop_stalls_then_recovers(self, encoded):
        """A dropped chunk is only observable through the stall
        timeout; the typed stall error then rides the same retry path
        as a crash."""
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_scans(
            dict(contexts), list(tasks), budget)
        with faults.injected(one_shot("pool.queue.drop")) as plan:
            with PoolExecutor(encoded, 2, min_grouped_rows=0,
                              stall_timeout=0.5) as ex:
                verdicts, _ = ex.run_scans(
                    dict(contexts), list(tasks), budget)
                stats = ex.telemetry.snapshot()
        assert plan.fired.get("pool.queue.drop") == 1
        assert verdicts == clean
        assert stats["retries"] >= 1

    def test_crash_with_cancelled_budget_returns_promptly(self,
                                                          encoded):
        """The cancel-races-crash corner: a revoked budget plus a
        killed worker must neither hang nor leak — the dispatch either
        drains as timed out or the retry completes it."""
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        budget = DeadlineBudget(3600.0)
        budget.cancel()
        with faults.injected(one_shot("pool.worker.kill")):
            with PoolExecutor(encoded, 2, min_grouped_rows=0) as ex:
                verdicts, timed_out = ex.run_scans(
                    dict(contexts), list(tasks), budget)
        assert timed_out or len(verdicts) == len(tasks)


class TestWorkerPoolCrashPath:
    """The raw pool contract under a crash: typed error, torn-down
    pool, unlinked segments, harvested partial acknowledgements."""

    def test_crash_tears_down_and_reports_partials(self, encoded):
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        # the kill races the victim's task pickup (see
        # dispatch_until_crash) — re-arm until a dispatch actually
        # loses work
        for _ in range(20):
            pool = WorkerPool(encoded, 2)
            try:
                with faults.injected(one_shot("pool.worker.kill")):
                    try:
                        pool.run_scans(contexts, tasks)
                    except WorkerCrashError as error:
                        assert pool.closed
                        assert isinstance(error.partial_results, list)
                        for payload in error.partial_results:
                            assert "verdicts" in payload
                        return
            finally:
                pool.shutdown()
        pytest.fail("worker kill never landed mid-dispatch")

    def test_stall_is_a_typed_crash(self, encoded):
        contexts = singleton_partitions(encoded)
        tasks = scan_tasks(encoded)
        pool = WorkerPool(encoded, 2, stall_timeout=0.5)
        try:
            with faults.injected(one_shot("pool.queue.drop")):
                with pytest.raises(WorkerStallError):
                    pool.run_scans(contexts, tasks)
            assert pool.closed
        finally:
            pool.shutdown()


class TestSeedMatrix:
    """The CI chaos job sweeps ``REPRO_FAULT_SEED``; whatever mix of
    faults a seed produces, discovery must return the clean answer."""

    def test_mixed_faults_byte_identical(self, relation):
        seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        clean = canonical(FastOD(relation,
                                 FastODConfig()).run().to_dict())
        plan = FaultPlan(
            seed=seed,
            rates={"pool.worker.kill": 0.25, "worker.task": 0.1,
                   "shm.attach": 0.1, "pool.queue.delay": 0.3},
            limits={"pool.worker.kill": 2},
            delays={"pool.queue.delay": 0.01})
        config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
        with faults.injected(plan):
            chaotic = canonical(
                FastOD(relation, config).run().to_dict())
        assert chaotic == clean, (
            f"seed {seed} diverged; fired: {plan.log}")
