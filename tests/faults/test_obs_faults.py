"""Observability under injected faults.

A worker SIGKILL'd mid-dispatch takes its span exports down with it —
that is fine.  What must never happen is the coordinator timeline
going down too: the dispatch span closes (tagged, not dropped), the
surviving retry's worker spans still splice in, and every exported
span keeps a resolvable parent."""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.engine import DeadlineBudget, PoolExecutor
from repro.engine.executors import SerialExecutor
from repro.faults import FaultPlan
from repro.obs import trace
from repro.partitions.partition import StrippedPartition


@pytest.fixture(scope="module")
def relation():
    return make_dataset("flight", n_rows=300, n_attrs=5, seed=6)


def one_shot(site: str, **kwargs) -> FaultPlan:
    return FaultPlan(seed=0, rates={site: 1.0}, limits={site: 1},
                     **kwargs)


def traced_chaos_run(relation, site):
    config = FastODConfig(workers=2, parallel_min_grouped_rows=0)
    buffer = trace.TraceBuffer()
    with faults.injected(one_shot(site)):
        with trace.collect(buffer):
            result = FastOD(relation, config).run()
    return result, buffer.export()


def assert_timeline_intact(spans):
    """Every span resolves to the root through exported parents, and
    intervals are sane — nothing half-written by a crashed dispatch."""
    assert spans
    ids = {s["id"] for s in spans}
    names = {s["name"] for s in spans}
    assert "job" not in names           # engine-level run, no service
    assert "level" in names
    assert "pool-dispatch" in names
    for span in spans:
        assert span["parent"] == 0 or span["parent"] in ids
        assert span["end"] >= span["start"]
        assert span["seconds"] >= 0.0


class TestCrashKeepsTimeline:
    def test_worker_kill_mid_run(self, relation):
        clean = FastOD(relation,
                       FastODConfig(workers=1)).run().to_dict()
        result, spans = traced_chaos_run(relation, "pool.worker.kill")
        assert sorted(map(str, result.fds)) == sorted(
            str(od) for od in
            FastOD(relation, FastODConfig(workers=1)).run().fds)
        assert result.to_dict()["n_fds"] == clean["n_fds"]
        assert result.to_dict()["n_ocds"] == clean["n_ocds"]
        assert_timeline_intact(spans)

    def test_task_fault_mid_run(self, relation):
        # a task-level exception (not a kill) still ships no partial
        # obs payload and the retry's spans splice cleanly
        result, spans = traced_chaos_run(relation, "worker.task")
        clean = FastOD(relation, FastODConfig(workers=1)).run()
        assert sorted(map(str, result.ocds)) == sorted(
            map(str, clean.ocds))
        assert_timeline_intact(spans)

    def test_dropped_queue_message(self, relation):
        # a dropped result message surfaces as a stall; the failed
        # dispatch span closes tagged with the error instead of
        # dangling open, and the retry dispatch splices cleanly
        encoded = relation.encode()
        contexts = {1 << a: StrippedPartition.for_attribute(encoded, a)
                    for a in range(encoded.arity)}
        tasks = [((a, b), 1 << a, "swap", a, b)
                 for a in range(encoded.arity)
                 for b in range(encoded.arity) if a != b]
        budget = DeadlineBudget.unlimited()
        clean, _ = SerialExecutor(encoded).run_scans(
            dict(contexts), list(tasks), budget)
        buffer = trace.TraceBuffer()
        with faults.injected(one_shot("pool.queue.drop")):
            with PoolExecutor(encoded, 2, min_grouped_rows=0,
                              stall_timeout=0.5) as ex:
                with trace.collect(buffer):
                    verdicts, _ = ex.run_scans(
                        dict(contexts), list(tasks), budget)
        assert verdicts == clean
        spans = buffer.export()
        assert spans
        ids = {s["id"] for s in spans}
        dispatches = [s for s in spans if s["name"] == "pool-dispatch"]
        assert dispatches
        assert any(s.get("error") == "WorkerStallError"
                   for s in dispatches)
        for span in spans:
            assert span["parent"] == 0 or span["parent"] in ids
            assert span["end"] >= span["start"]
