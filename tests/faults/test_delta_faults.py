"""Fault injection and kill -9 against the delta WAL.

Three failure windows, three tests:

* ``deltalog.append`` fires *before* any byte is written — the job
  must fail, the log must sit at its previous LSN, and the dataset
  must stay at its pre-delta fingerprint (WAL-first means no log
  record, no state change).
* ``deltalog.replay`` fires at boot — the service must degrade to an
  honest 404 for that dataset (counted in ``delta_errors``), and a
  clean reboot must recover it fully.
* SIGKILL between a delta that committed and one parked mid-flight —
  restart must replay the first from the WAL, surface the second as
  terminal ``crashed``, and hand the resubmit the next LSN.
"""

from __future__ import annotations

import signal
import subprocess

from repro import faults
from repro.deltalog import delta_log_path, read_delta_log
from repro.faults import FaultPlan
from repro.server.client import ServiceClient
from repro.server.http import ODService
from tests.faults.test_crash_recovery import (
    FAULT_PLAN,
    read_url,
    spawn_serve,
    wait_for_status,
)

COLUMNS = ["c0", "c1", "c2"]
ROWS = [[1, 10, 5], [2, 20, 5], [3, 30, 6], [4, 40, 6]]


def register(svc) -> str:
    status, entry = svc.register(
        {"columns": COLUMNS, "rows": ROWS, "name": "faulty"})
    assert status == 201
    return entry["fingerprint"]


class TestAppendFault:
    def test_failed_append_leaves_log_and_state_untouched(
            self, tmp_path):
        journal = tmp_path / "journal"
        with ODService(port=0, workers=1,
                       journal_dir=str(journal)) as svc:
            fp = register(svc)
            plan = FaultPlan(seed=0, rates={"deltalog.append": 1.0})
            with faults.injected(plan):
                job = svc.delta(fp, {"deletes": [[1, 10, 5]],
                                     "inserts": [[5, 50, 7]]})
            assert job["status"] == "failed"
            assert "delta append failed" in job["error"]
            # WAL-first: the fault fired before the write, so there
            # is no record to replay and no state to roll back
            assert read_delta_log(delta_log_path(journal, fp)) == []
            entry = svc.catalog.get(fp)
            assert entry.fingerprint == fp
            assert entry.delta_lsn == 0
            assert [tuple(r) for r in ROWS] == list(
                entry.relation.rows())
            # disarmed, the same delta goes through at LSN 1
            retry = svc.delta(fp, {"deletes": [[1, 10, 5]],
                                   "inserts": [[5, 50, 7]]})
            assert retry["status"] == "done"
            assert retry["lsn"] == 1


class TestReplayFault:
    def test_replay_fault_degrades_then_clean_boot_recovers(
            self, tmp_path):
        journal = tmp_path / "journal"
        with ODService(port=0, workers=1,
                       journal_dir=str(journal)) as svc:
            fp = register(svc)
            job = svc.delta(fp, {"updates": [
                [[2, 20, 5], [2, 21, 5]]]})
            assert job["status"] == "done"
            live_fp = job["fingerprint"]

        plan = FaultPlan(seed=0, rates={"deltalog.replay": 1.0})
        with faults.injected(plan):
            with ODService(port=0, workers=1,
                           journal_dir=str(journal)) as svc:
                # graceful degradation: the dataset is skipped and
                # counted, not half-replayed
                assert svc.recovered["delta_errors"] == 1
                assert svc.recovered["delta_batches"] == 0
                assert svc.recovered["datasets"] == 0
                assert fp not in svc.catalog

        # the WAL was never touched; a clean reboot replays it
        with ODService(port=0, workers=1,
                       journal_dir=str(journal)) as svc:
            assert svc.recovered["delta_errors"] == 0
            assert svc.recovered["delta_batches"] == 1
            assert svc.catalog.get(fp).fingerprint == live_fp


def test_sigkill_mid_delta_replays_wal_and_crashes_job(tmp_path):
    """kill -9 with delta 1 fsync'd and delta 2 parked in-flight."""
    journal_dir = tmp_path / "journal"

    # boot 1 (no faults): register and commit delta 1, then SIGKILL —
    # an abrupt death that skips every shutdown hook
    first = spawn_serve(journal_dir)
    try:
        client = ServiceClient(read_url(first), timeout=10.0)
        fp = client.register_rows(COLUMNS, ROWS,
                                  name="faulty")["fingerprint"]
        done = client.delta(fp, deletes=[[1, 10, 5]],
                            inserts=[[5, 50, 7]])
        assert done["status"] == "done"
        assert done["lsn"] == 1
        live_fp = done["fingerprint"]
        first.send_signal(signal.SIGKILL)
        assert first.wait(timeout=15.0) == -signal.SIGKILL
    finally:
        if first.poll() is None:
            first.kill()
        first.wait(timeout=15.0)

    # boot 2 (start-delay fault): delta 1 replays from the WAL, then
    # delta 2 is parked in "running" — the pre-append crash window
    second = spawn_serve(journal_dir,
                         extra_env={"REPRO_FAULT_PLAN": FAULT_PLAN})
    try:
        client = ServiceClient(read_url(second), timeout=10.0)
        health = client.health()
        assert health["recovered"]["delta_batches"] == 1
        assert health["recovered"]["delta_errors"] == 0
        assert [d for d in client.datasets()
                if d["fingerprint"] == live_fp]
        parked = client.delta(live_fp, inserts=[[6, 60, 8]],
                              wait=False)
        wait_for_status(client, parked["id"], "running")
        second.send_signal(signal.SIGKILL)
        assert second.wait(timeout=15.0) == -signal.SIGKILL
    finally:
        if second.poll() is None:
            second.kill()
        second.wait(timeout=15.0)

    # boot 3 (no faults): delta 1 is still the whole durable history;
    # delta 2 never reached the WAL, so it is crashed, not replayed
    third = spawn_serve(journal_dir)
    try:
        client = ServiceClient(read_url(third), timeout=10.0)
        health = client.health()
        assert health["recovered"]["delta_batches"] == 1
        assert health["recovered"]["crashed"] == 1
        job = client.job(parked["id"])
        assert job["status"] == "crashed"
        # the resubmit lands on the warm replayed state at LSN 2
        redo = client.delta(live_fp, inserts=[[6, 60, 8]])
        assert redo["status"] == "done"
        assert redo["lsn"] == 2
        assert read_delta_log(
            delta_log_path(journal_dir, fp))[-1].lsn == 2
    finally:
        third.send_signal(signal.SIGINT)
        try:
            third.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            third.kill()
            third.wait(timeout=15.0)
