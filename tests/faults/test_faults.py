"""The fault-injection registry itself: determinism, limits, hooks."""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan


def firing_sequence(plan: FaultPlan, site: str, visits: int):
    return [plan.fire(site) for _ in range(visits)]


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=7, rates={"pool.worker.kill": 0.5})
        b = FaultPlan(seed=7, rates={"pool.worker.kill": 0.5})
        assert (firing_sequence(a, "pool.worker.kill", 50)
                == firing_sequence(b, "pool.worker.kill", 50))

    def test_different_seeds_differ(self):
        sequences = {
            tuple(firing_sequence(
                FaultPlan(seed=s, rates={"worker.task": 0.5}),
                "worker.task", 64))
            for s in range(4)}
        assert len(sequences) > 1

    def test_sites_draw_independently(self):
        """Visits to one site never perturb another site's schedule —
        the property that lets a new injection point land in the code
        without rewriting every chaos test's expectations."""
        rates = {"pool.worker.kill": 0.5, "worker.task": 0.5}
        alone = FaultPlan(seed=3, rates=rates)
        expected = firing_sequence(alone, "worker.task", 30)
        interleaved = FaultPlan(seed=3, rates=rates)
        got = []
        for _ in range(30):
            interleaved.fire("pool.worker.kill")
            got.append(interleaved.fire("worker.task"))
        assert got == expected

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1)
        assert not any(firing_sequence(plan, "shm.attach", 100))
        assert plan.fired == {}

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=1, rates={"store.write": 1.0})
        assert all(firing_sequence(plan, "store.write", 10))
        assert plan.fired["store.write"] == 10

    def test_limit_caps_firings(self):
        plan = FaultPlan(seed=1, rates={"store.write": 1.0},
                         limits={"store.write": 3})
        fired = firing_sequence(plan, "store.write", 10)
        assert fired == [True] * 3 + [False] * 7
        assert plan.fired["store.write"] == 3

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"pool.worker.kil": 1.0})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(limits={"nope": 1})
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(delays={"nope": 0.1})

    def test_from_json(self):
        plan = FaultPlan.from_json(
            '{"seed": 9, "rates": {"worker.task": 1.0},'
            ' "limits": {"worker.task": 2},'
            ' "delays": {"pool.queue.delay": 0.01}}')
        assert plan.seed == 9
        assert plan.rates == {"worker.task": 1.0}
        assert plan.limits == {"worker.task": 2}
        assert plan.delay_seconds("pool.queue.delay") == 0.01
        # sites without an explicit delay use the default
        assert (plan.delay_seconds("jobs.start.delay")
                == faults.DEFAULT_DELAY_SECONDS)

    def test_log_records_firing_order(self):
        plan = FaultPlan(seed=1, rates={"store.write": 1.0},
                         limits={"store.write": 2})
        firing_sequence(plan, "store.write", 5)
        assert plan.log == ["store.write#1", "store.write#2"]


class TestActivation:
    def test_no_plan_is_inert(self):
        assert faults.active_plan() is None
        assert faults.fire("pool.worker.kill") is False
        faults.maybe_raise("shm.attach", "never raised")
        faults.maybe_sleep("pool.queue.delay")

    def test_injected_context_restores_previous(self):
        assert faults.active_plan() is None
        with faults.injected(FaultPlan(seed=1)) as plan:
            assert faults.active_plan() is plan
            with faults.injected(FaultPlan(seed=2)) as inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_env_var_arms_a_plan(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            '{"seed": 5, "rates": {"worker.task": 1.0}}')
        # force the lazy env read to happen again
        monkeypatch.setattr(faults, "_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        plan = faults.active_plan()
        assert plan is not None
        assert plan.seed == 5
        assert faults.fire("worker.task") is True

    def test_env_var_read_once(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        monkeypatch.setattr(faults, "_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        assert faults.active_plan() is None
        # setting the env var after the first check changes nothing
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"seed": 1}')
        assert faults.active_plan() is None


class TestHooks:
    def test_maybe_raise_tags_the_site(self):
        with faults.injected(FaultPlan(rates={"shm.attach": 1.0})):
            with pytest.raises(FaultInjected,
                               match=r"\[fault:shm.attach\] torn"):
                faults.maybe_raise("shm.attach", "torn")

    def test_maybe_raise_custom_exception(self):
        with faults.injected(FaultPlan(rates={"store.write": 1.0})):
            with pytest.raises(OSError, match=r"\[fault:store.write\]"):
                faults.maybe_raise("store.write", "disk full",
                                   exc_type=OSError)

    def test_maybe_sleep_uses_plan_delay(self):
        plan = FaultPlan(rates={"pool.queue.delay": 1.0},
                         delays={"pool.queue.delay": 0.05})
        with faults.injected(plan):
            started = time.monotonic()
            faults.maybe_sleep("pool.queue.delay")
            assert time.monotonic() - started >= 0.04
        assert plan.fired["pool.queue.delay"] == 1
