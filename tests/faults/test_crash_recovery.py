"""kill -9 crash recovery through the durable job journal.

A real ``repro-od serve --journal-dir`` is SIGKILL'd mid-job and
restarted on the same directory: the dataset must come back, the
interrupted job must surface as terminal ``crashed``, and a resubmit
must complete.  SIGKILL skips every ``finally`` — which is the point:
only the fsync'd journal survives.

The server runs ``--workers 1`` so SIGKILL has no pooled worker
processes to orphan (the seed's kill tests cover pool teardown; this
one covers the ledger).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.server.client import ServiceClient

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: Hold every job in the started->finished window for 30s, so the test
#: can SIGKILL a provably *running* job without racing its completion.
FAULT_PLAN = json.dumps({
    "seed": 0,
    "rates": {"jobs.start.delay": 1.0},
    "delays": {"jobs.start.delay": 30.0},
})

COLUMNS = ["c0", "c1", "c2"]
ROWS = [[1, 10, 5], [2, 20, 5], [3, 30, 6], [4, 40, 6]]


def spawn_serve(journal_dir: Path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("REPRO_FAULT_PLAN", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--journal-dir", str(journal_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)


def read_url(process, timeout: float = 30.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return match.group(1)
        if process.poll() is not None:
            break
    pytest.fail(f"serve never announced its URL; stderr: "
                f"{process.stderr.read()}")


def wait_for_status(client, job_id: str, status: str,
                    timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.job(job_id)["status"] == status:
            return
        time.sleep(0.05)
    pytest.fail(f"job {job_id} never reached {status!r}")


def test_sigkill_then_restart_recovers_the_ledger(tmp_path):
    journal_dir = tmp_path / "journal"
    first = spawn_serve(journal_dir,
                        extra_env={"REPRO_FAULT_PLAN": FAULT_PLAN})
    try:
        client = ServiceClient(read_url(first), timeout=10.0)
        fp = client.register_rows(COLUMNS, ROWS,
                                  name="crashme")["fingerprint"]
        job_id = client.submit("discover", fp, wait=False)["id"]
        # the injected start delay parks the job in "running" — the
        # exact window a crash loses work in
        wait_for_status(client, job_id, "running")
        first.send_signal(signal.SIGKILL)
        assert first.wait(timeout=15.0) == -signal.SIGKILL
    finally:
        if first.poll() is None:
            first.kill()
        first.wait(timeout=15.0)

    second = spawn_serve(journal_dir)
    try:
        client = ServiceClient(read_url(second), timeout=10.0)
        health = client.health()
        assert health["recovered"]["datasets"] == 1
        assert health["recovered"]["crashed"] == 1
        # the dataset came back from its spooled registration body
        assert [d for d in client.datasets()
                if d["fingerprint"] == fp]
        # the interrupted job is terminal crashed — never silently
        # re-run — and says so
        job = client.job(job_id)
        assert job["status"] == "crashed"
        assert "crash" in job["error"]
        # a resubmit completes normally on the recovered dataset
        done = client.discover(fp, wait=False)
        done = client.poll(done["id"], timeout=60.0)
        assert done["status"] == "done"
        assert done["result"]["n_fds"] >= 0
    finally:
        second.send_signal(signal.SIGINT)
        try:
            second.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            second.kill()
            second.wait(timeout=15.0)


def test_restart_requeues_never_started_jobs(tmp_path):
    """A job journaled as submitted (but queued behind the crash) is
    re-run on restart under its original id."""
    from repro.server.journal import JobJournal

    journal_dir = tmp_path / "journal"
    # forge the previous process's ledger directly: one dataset, one
    # job submitted but never started
    journal = JobJournal(journal_dir)
    source = {"columns": COLUMNS, "rows": ROWS, "name": "queued"}
    from repro.relation.fingerprint import fingerprint
    from repro.relation.table import Relation

    fp = fingerprint(Relation.from_rows(COLUMNS,
                                        [tuple(r) for r in ROWS]))
    journal.dataset_registered(fp, "queued", source)
    journal.job_submitted("job-7", "discover", fp, {})
    journal.close()

    process = spawn_serve(journal_dir)
    try:
        client = ServiceClient(read_url(process), timeout=10.0)
        assert client.health()["recovered"]["requeued"] == 1
        job = client.poll("job-7", timeout=60.0)
        assert job["status"] == "done"
        # the id floor advanced past the journaled id: no collision
        new_id = client.submit("discover", fp, wait=False)["id"]
        assert int(new_id.rsplit("-", 1)[-1]) > 7
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=15.0)
