"""Chaos-suite fixtures.

Every test runs with a clean fault registry and must leave
``/dev/shm`` exactly as it found it — a recovery path that survives a
crash but leaks the crashed pool's segments has not recovered.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.server.smoke import shm_segments


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    before = shm_segments()
    yield
    faults.clear()
    leaked = shm_segments() - before
    assert not leaked, (
        f"leaked shared-memory segments: {sorted(leaked)}")
