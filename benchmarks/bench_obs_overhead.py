"""Overhead gate for the always-on observability layer.

The metrics registry and trace spans are wired into the hot discovery
path unconditionally, so their cost must stay in the noise.  This
bench runs full FastOD discovery on the ``bench_partition_kernels``
workload sizes twice per dataset — once with the registry enabled
(the shipped default) and once with ``metrics.set_enabled(False)`` —
taking the best of ``REPEATS`` runs each, and gates:

1. **Overhead** — aggregate enabled wall clock must be within
   ``MAX_OVERHEAD`` (5%) of disabled, with a small absolute epsilon so
   sub-millisecond jitter on tiny inputs cannot fail the gate.
2. **Identity** — the discovered FD/OCD sets must be byte-identical
   with observability on and off; instrumentation must never steer
   discovery.

Run directly: ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
Emits ``BENCH_obs.json`` at the repo root via the harness.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, timed, write_bench_json
from repro import discover_ods
from repro.obs import metrics

DATASETS = ["flight", "ncvoter", "dbtesma"]
ROW_COUNTS = [1000, 3000, 5000]
N_ATTRS = 8
REPEATS = 3
MAX_OVERHEAD = 0.05
#: absolute slack (seconds) — timer jitter floor for sub-ms cases
EPSILON_SECONDS = 0.010


def ods_of(result) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    return (tuple(sorted(str(od) for od in result.fds)),
            tuple(sorted(str(od) for od in result.ocds)))


def best_of(relation, repeats: int = REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        result, seconds = timed(lambda: discover_ods(relation))
        best = seconds if best is None else min(best, seconds)
    return result, best


def bench(reporter: Reporter) -> Tuple[List[dict], float, float, bool]:
    records = []
    enabled_total = 0.0
    disabled_total = 0.0
    identical = True
    for name in DATASETS:
        for rows in ROW_COUNTS:
            relation = dataset(name, rows, N_ATTRS)
            discover_ods(relation)     # untimed warm-up
            metrics.set_enabled(True)
            try:
                on_result, on_seconds = best_of(relation)
            finally:
                metrics.set_enabled(False)
            try:
                off_result, off_seconds = best_of(relation)
            finally:
                metrics.set_enabled(True)
            same = ods_of(on_result) == ods_of(off_result)
            identical &= same
            enabled_total += on_seconds
            disabled_total += off_seconds
            overhead = on_seconds / off_seconds - 1.0
            reporter.add(
                dataset=name, rows=rows,
                enabled=f"{on_seconds * 1e3:.1f}ms",
                disabled=f"{off_seconds * 1e3:.1f}ms",
                overhead=f"{overhead * 100:+.1f}%",
                identical="yes" if same else "NO",
            )
            records.append({
                "dataset": name,
                "n_rows": rows,
                "n_attrs": N_ATTRS,
                "enabled_seconds": on_seconds,
                "disabled_seconds": off_seconds,
                "overhead": overhead,
                "identical": same,
            })
    return records, enabled_total, disabled_total, identical


def main() -> int:
    reporter = Reporter(
        experiment="obs_overhead",
        title="Always-on metrics + spans vs disabled (best of "
              f"{REPEATS})",
        columns=["dataset", "rows", "enabled", "disabled",
                 "overhead", "identical"])
    records, enabled, disabled, identical = bench(reporter)
    reporter.finish()

    overhead = enabled / disabled - 1.0
    budget = disabled * (1.0 + MAX_OVERHEAD) + EPSILON_SECONDS
    write_bench_json("obs", records, section="overhead_gate")
    print(f"aggregate: enabled {enabled * 1e3:.0f}ms vs disabled "
          f"{disabled * 1e3:.0f}ms ({overhead * 100:+.1f}%); gate: "
          f"<= {MAX_OVERHEAD * 100:.0f}% + {EPSILON_SECONDS * 1e3:.0f}ms "
          f"epsilon; identical results: {identical}")
    if not identical:
        print("FAIL: discovery results differ with observability off")
        return 1
    if enabled > budget:
        print("FAIL: observability overhead above the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
