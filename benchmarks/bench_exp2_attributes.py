"""Exp-2 (Figure 5): scalability in the number of attributes |R|.

The paper's claim: runtime grows exponentially with attributes (the
set lattice has 2^|R| nodes), with the slope governed by how many ODs
each dataset hides — hepatitis (tiny but wide, FD/OCD-rich) is the
most expensive per attribute; ORDER DNFs early on OD-rich data.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import (
    ORDER_MAX_NODES,
    ORDER_TIMEOUT,
    Reporter,
    dataset,
    fmt_counts,
    fmt_seconds,
    timed,
)
from repro import discover_ods
from repro.baselines import discover_fds, discover_ods_order

#: dataset family -> (row count, attribute sweep)
SWEEPS = {
    "flight": (500, [4, 6, 8, 10, 12, 14]),
    "ncvoter": (500, [4, 6, 8, 10, 12]),
    "hepatitis": (155, [4, 6, 8, 10, 12]),
    "dbtesma": (500, [4, 6, 8, 10, 12]),
}

_reporters = {}


def _reporter(name: str) -> Reporter:
    if name not in _reporters:
        rows = SWEEPS[name][0]
        _reporters[name] = Reporter(
            experiment=f"exp2_{name}",
            title=(f"Exp-2 / Figure 5 ({name}-like, {rows} rows): "
                   "runtime and #ODs vs attributes"),
            columns=["attrs", "TANE", "FASTOD", "ORDER",
                     "FASTOD #ODs (FD+OCD)", "ORDER #ODs (FD+OCD)"])
    return _reporters[name]


def _run_row(name: str, attrs: int) -> None:
    rows = SWEEPS[name][0]
    relation = dataset(name, rows, attrs)
    tane, tane_s = timed(lambda: discover_fds(relation))
    fastod, fastod_s = timed(lambda: discover_ods(relation))
    order, order_s = timed(lambda: discover_ods_order(
        relation, max_nodes=ORDER_MAX_NODES,
        timeout_seconds=ORDER_TIMEOUT))
    _reporter(name).add(
        attrs=attrs,
        TANE=fmt_seconds(tane_s),
        FASTOD=fmt_seconds(fastod_s),
        ORDER=fmt_seconds(order_s, dnf=order.timed_out),
        **{
            "FASTOD #ODs (FD+OCD)": fmt_counts(fastod),
            "ORDER #ODs (FD+OCD)": fmt_counts(order, dnf=order.timed_out),
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    for reporter in _reporters.values():
        reporter.finish()


@pytest.mark.parametrize("name,attrs", [
    (name, attrs)
    for name, (_, sweep) in SWEEPS.items()
    for attrs in sweep
])
def test_exp2_scaling(benchmark, name, attrs):
    rows = SWEEPS[name][0]
    relation = dataset(name, rows, attrs)
    benchmark.pedantic(
        lambda: discover_ods(relation), rounds=1, iterations=1)
    _run_row(name, attrs)


def main() -> None:
    for name, (_, sweep) in SWEEPS.items():
        for attrs in sweep:
            _run_row(name, attrs)
    for reporter in _reporters.values():
        reporter.finish()


if __name__ == "__main__":
    main()
