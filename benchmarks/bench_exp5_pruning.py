"""Exp-5 (Figure 6, runtime): the impact of the pruning strategies.

FASTOD with candidate-set/minimality pruning versus *FASTOD-No
Pruning* (validate every candidate at every node, the paper's
ablation).  The paper reports orders-of-magnitude gaps that widen with
the attribute count; no-pruning runs that exceed the budget report DNF
the way the paper reports "* 5h".
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import (
    NOPRUNE_TIMEOUT,
    Reporter,
    dataset,
    fmt_seconds,
    timed,
)
from repro import discover_ods

ROW_SWEEP = [500, 1000, 1500, 2000, 2500]     # at 8 attributes
ATTR_SWEEP = [4, 6, 8, 10, 12]                # at 300 rows
N_ATTRS_FOR_ROWS = 8
N_ROWS_FOR_ATTRS = 300

_rows_reporter = Reporter(
    experiment="exp5_pruning_rows",
    title=(f"Exp-5 / Figure 6 (flight-like, {N_ATTRS_FOR_ROWS} attrs): "
           "pruning impact vs tuples"),
    columns=["rows", "FASTOD", "FASTOD-NoPruning", "speedup"])
_attrs_reporter = Reporter(
    experiment="exp5_pruning_attrs",
    title=(f"Exp-5 / Figure 6 (flight-like, {N_ROWS_FOR_ATTRS} rows): "
           "pruning impact vs attributes"),
    columns=["attrs", "FASTOD", "FASTOD-NoPruning", "speedup"])


def _run_rows(rows: int) -> None:
    relation = dataset("flight", rows, N_ATTRS_FOR_ROWS)
    pruned, pruned_s = timed(lambda: discover_ods(relation))
    unpruned, unpruned_s = timed(lambda: discover_ods(
        relation, minimality_pruning=False,
        timeout_seconds=NOPRUNE_TIMEOUT))
    _rows_reporter.add(
        rows=rows,
        FASTOD=fmt_seconds(pruned_s),
        **{
            "FASTOD-NoPruning": fmt_seconds(
                unpruned_s, dnf=unpruned.timed_out),
            "speedup": ("-" if unpruned.timed_out
                        else f"{unpruned_s / max(pruned_s, 1e-9):.1f}x"),
        })


def _run_attrs(attrs: int) -> None:
    relation = dataset("flight", N_ROWS_FOR_ATTRS, attrs)
    pruned, pruned_s = timed(lambda: discover_ods(relation))
    unpruned, unpruned_s = timed(lambda: discover_ods(
        relation, minimality_pruning=False,
        timeout_seconds=NOPRUNE_TIMEOUT))
    _attrs_reporter.add(
        attrs=attrs,
        FASTOD=fmt_seconds(pruned_s),
        **{
            "FASTOD-NoPruning": fmt_seconds(
                unpruned_s, dnf=unpruned.timed_out),
            "speedup": ("-" if unpruned.timed_out
                        else f"{unpruned_s / max(pruned_s, 1e-9):.1f}x"),
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _rows_reporter.finish()
    _attrs_reporter.finish()


@pytest.mark.parametrize("rows", ROW_SWEEP)
def test_exp5_rows(benchmark, rows):
    relation = dataset("flight", rows, N_ATTRS_FOR_ROWS)
    benchmark.pedantic(
        lambda: discover_ods(relation), rounds=1, iterations=1)
    _run_rows(rows)


@pytest.mark.parametrize("attrs", ATTR_SWEEP)
def test_exp5_attrs(benchmark, attrs):
    relation = dataset("flight", N_ROWS_FOR_ATTRS, attrs)
    benchmark.pedantic(
        lambda: discover_ods(relation, minimality_pruning=False,
                             timeout_seconds=NOPRUNE_TIMEOUT),
        rounds=1, iterations=1)
    _run_attrs(attrs)


def main() -> None:
    for rows in ROW_SWEEP:
        _run_rows(rows)
    for attrs in ATTR_SWEEP:
        _run_attrs(attrs)
    _rows_reporter.finish()
    _attrs_reporter.finish()


if __name__ == "__main__":
    main()
