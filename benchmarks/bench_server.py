"""Throughput gate for the discovery service layer.

Boots an in-process :class:`~repro.server.ODService` (real HTTP over
``ThreadingHTTPServer``) and drives it with N concurrent
:class:`~repro.server.ServiceClient` threads on the flight dataset,
asserting the two claims the service makes:

1. **Correctness under concurrency** — every client's discover
   response (cold or cached) is byte-identical to a direct in-process
   ``FastOD`` run, string for string; N clients hammering one server
   process cannot perturb results.
2. **The result store earns its keep** — a cached-hit round trip
   (HTTP included) is >= 20x faster than the cold discovery that
   populated the store, and cached hits report zero-task executor
   telemetry (no re-traversal, verified, not inferred).

Run directly: ``PYTHONPATH=src python benchmarks/bench_server.py``.
Emits ``BENCH_server.json`` at the repo root and the table to
``benchmarks/results/server_throughput.txt``.
"""

from __future__ import annotations

import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, write_bench_json
from repro.core.fastod import FastOD, FastODConfig
from repro.engine.telemetry import total_tasks
from repro.server import ODService, ServiceClient

DATASET = "flight"
N_ROWS = 80_000
N_ATTRS = 8
N_CLIENTS = 8
CACHED_REQUESTS_PER_CLIENT = 12
MIN_CACHED_SPEEDUP = 20.0


def main() -> int:
    relation = dataset(DATASET, N_ROWS, N_ATTRS)
    print(f"direct FastOD on {DATASET} {N_ROWS}x{N_ATTRS} (oracle) ...")
    direct = FastOD(relation, FastODConfig()).run().to_dict()

    failures: List[str] = []
    records: List[Dict[str, object]] = []
    reporter = Reporter(
        "server_throughput",
        f"Service throughput: {N_CLIENTS} concurrent clients, "
        f"{DATASET} {N_ROWS}x{N_ATTRS}",
        ["phase", "requests", "median_ms", "p max_ms", "identical"])

    with ODService(port=0, workers=1) as service:
        clients = [ServiceClient(service.url)
                   for _ in range(N_CLIENTS)]
        fp = clients[0].register_dataset(
            DATASET, n_rows=N_ROWS, n_attrs=N_ATTRS,
            seed=42)["fingerprint"]

        # -- phase 1: all clients race the cold discover ---------------
        latencies: List[float] = [0.0] * N_CLIENTS
        responses: List[Dict] = [{}] * N_CLIENTS
        barrier = threading.Barrier(N_CLIENTS)

        def cold_worker(index: int) -> None:
            barrier.wait()
            started = time.perf_counter()
            responses[index] = clients[index].discover(fp)
            latencies[index] = time.perf_counter() - started

        threads = [threading.Thread(target=cold_worker, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        cold_jobs = [r for r in responses if not r.get("cached")]
        if len(cold_jobs) != 1:
            # the store re-check in the runner makes every racer but
            # the first a cache hit — more than one cold run means the
            # store failed its job
            failures.append(
                f"expected exactly 1 cold run, saw {len(cold_jobs)}")
        for response in responses:
            if (response["result"]["fds"] != direct["fds"]
                    or response["result"]["ocds"] != direct["ocds"]):
                failures.append(
                    "a concurrent response diverged from the direct "
                    "FastOD output")
                break
        cold_seconds = max(latencies)
        reporter.add(phase="cold (racing x8)", requests=N_CLIENTS,
                     median_ms=f"{statistics.median(latencies) * 1e3:.1f}",
                     **{"p max_ms": f"{cold_seconds * 1e3:.1f}"},
                     identical="yes")

        # -- phase 2: steady-state cached hits -------------------------
        cached_latencies: List[List[float]] = [
            [] for _ in range(N_CLIENTS)]
        barrier = threading.Barrier(N_CLIENTS)

        def cached_worker(index: int) -> None:
            barrier.wait()
            for _ in range(CACHED_REQUESTS_PER_CLIENT):
                started = time.perf_counter()
                response = clients[index].discover(fp)
                cached_latencies[index].append(
                    time.perf_counter() - started)
                if not response["cached"]:
                    failures.append("steady-state request missed "
                                    "the store")
                if total_tasks(response.get("executor")):
                    failures.append("cached hit reported executor "
                                    "tasks (re-traversal happened)")
                if response["result"]["fds"] != direct["fds"]:
                    failures.append("cached result diverged")

        started = time.perf_counter()
        threads = [threading.Thread(target=cached_worker, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        flat = [lat for per_client in cached_latencies
                for lat in per_client]
        cached_median = statistics.median(flat)
        throughput = len(flat) / wall
        reporter.add(phase="cached (steady)", requests=len(flat),
                     median_ms=f"{cached_median * 1e3:.2f}",
                     **{"p max_ms": f"{max(flat) * 1e3:.2f}"},
                     identical="yes" if not failures else "NO")

    speedup = cold_seconds / cached_median
    reporter.finish()
    print(f"cold discovery:     {cold_seconds * 1e3:8.1f} ms")
    print(f"cached hit median:  {cached_median * 1e3:8.2f} ms")
    print(f"cached-hit speedup: {speedup:8.1f}x  "
          f"(gate: >= {MIN_CACHED_SPEEDUP:.0f}x)")
    print(f"throughput:         {throughput:8.0f} cached req/s "
          f"({N_CLIENTS} clients)")

    if speedup < MIN_CACHED_SPEEDUP:
        failures.append(
            f"cached-hit speedup {speedup:.1f}x below the "
            f"{MIN_CACHED_SPEEDUP:.0f}x gate")

    records.append({
        "dataset": DATASET, "n_rows": N_ROWS, "n_attrs": N_ATTRS,
        "n_clients": N_CLIENTS,
        "cached_requests": N_CLIENTS * CACHED_REQUESTS_PER_CLIENT,
        "cold_seconds": cold_seconds,
        "cached_median_seconds": cached_median,
        "cached_speedup": speedup,
        "cached_throughput_rps": throughput,
        "min_cached_speedup": MIN_CACHED_SPEEDUP,
        "byte_identical": not any("diverged" in f for f in failures),
        "passed": not failures,
    })
    write_bench_json("server", records, section="throughput_gate")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("server gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
