"""General deltas: incremental maintenance vs re-discovery, and
cold-boot WAL replay.

Two experiments over a mixed insert/delete/update workload (the
general Z-set stream the delta log exists for, not the append-only
case ``bench_incremental.py`` covers):

* **delta_speedup** — a base snapshot plus a stream of mixed delta
  batches, keeping the OD set current after every batch.  Contestants:
  re-running ``FastOD`` from scratch on each post-batch relation vs
  one ``IncrementalFastOD`` fed the batches via ``apply_delta``.
* **replay** — a delta WAL holding >= 10k weighted ops is replayed
  cold (``read_delta_log`` + one-pass ``replay_relation`` + content
  fingerprint check), the exact work a crashed service re-does at
  boot before it can serve its first request.

Gates (exit code 1 on failure):

1. incremental FD/OCD sets byte-identical to the from-scratch oracle
   after every batch;
2. total incremental delta-handling time beats total per-batch full
   re-discovery by at least ``MIN_SPEEDUP`` (both sides' bootstrap
   discovery over the base snapshot is reported, not gated);
3. the replayed relation's fingerprint matches the live one, and the
   cold replay fits ``REPLAY_BUDGET_SECONDS``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_deltalog.py``.
Emits ``BENCH_deltalog.json`` at the repo root via the harness.
"""

from __future__ import annotations

import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, write_bench_json
from repro.core.fastod import FastOD
from repro.datasets.registry import make_dataset
from repro.deltalog import (
    DeltaBatch,
    DeltaLog,
    read_delta_log,
    replay_relation,
)
from repro.incremental import IncrementalFastOD
from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation

DATASET = "flight"
N_ROWS = 12_000
N_ATTRS = 7
N_BATCHES = 24
OPS_PER_BATCH = 40
MIN_SPEEDUP = 2.0

REPLAY_TARGET_OPS = 10_000
REPLAY_BATCH_OPS = 40
REPLAY_BUDGET_SECONDS = 5.0


def od_strings(result) -> list:
    return sorted(str(od) for od in result.all_ods)


def python_relation(dataset: str, n_rows: int, n_attrs: int) -> Relation:
    """The dataset with rows coerced to plain scalars (the WAL
    JSON-encodes rows, so numpy ints must not leak into batches)."""
    source = make_dataset(dataset, n_rows=n_rows, n_attrs=n_attrs)
    rows = [tuple(v.item() if hasattr(v, "item") else v for v in row)
            for row in source.rows()]
    return Relation.from_rows(source.names, rows)


def mixed_batches(base: Relation, n_batches: int, ops_per_batch: int,
                  seed: int = 7) -> list:
    """A seeded stream of valid mixed batches: ~35% deletes, ~25%
    updates (one attribute rewritten to another in-domain value),
    ~40% inserts (an existing row with one attribute perturbed)."""
    rng = random.Random(seed)
    live = list(base.rows())
    domains = [sorted({row[col] for row in live})
               for col in range(base.arity)]

    def perturbed(row):
        col = rng.randrange(len(row))
        out = list(row)
        out[col] = rng.choice(domains[col])
        return tuple(out)

    batches = []
    for _ in range(n_batches):
        ops = []
        for _ in range(ops_per_batch):
            roll = rng.random()
            if len(live) > 2 and roll < 0.35:
                ops.append((-1, live.pop(rng.randrange(len(live)))))
            elif len(live) > 2 and roll < 0.60:
                old = live.pop(rng.randrange(len(live)))
                new = perturbed(old)
                ops.extend([(-1, old), (1, new)])
                live.append(new)
            else:
                row = perturbed(rng.choice(live))
                ops.append((1, row))
                live.append(row)
        batches.append(DeltaBatch(ops))
    return batches


def bench_speedup(reporter: Reporter):
    base = python_relation(DATASET, N_ROWS, N_ATTRS)
    batches = mixed_batches(base, N_BATCHES, OPS_PER_BATCH)

    # both contestants pay a full discovery over the base snapshot
    # before any delta arrives (the warm service's bootstrap); the
    # gate compares how they *keep up* with the stream, so the
    # bootstrap is reported but only the per-batch times are gated
    started = time.perf_counter()
    engine = IncrementalFastOD(base)
    bootstrap_seconds = time.perf_counter() - started

    accumulated = base
    started = time.perf_counter()
    FastOD(accumulated).run()
    full_base_seconds = time.perf_counter() - started

    incremental_total = 0.0
    full_total = 0.0
    records = []
    identical = True
    for index, batch in enumerate(batches):
        started = time.perf_counter()
        report = engine.apply_delta(batch)
        incremental_seconds = time.perf_counter() - started
        incremental_total += incremental_seconds

        accumulated = batch.apply_to(accumulated)
        started = time.perf_counter()
        oracle = FastOD(accumulated).run()
        full_seconds = time.perf_counter() - started
        full_total += full_seconds

        same = od_strings(engine.result) == od_strings(oracle)
        identical &= same
        reporter.add(
            batch=index + 1,
            rows=accumulated.n_rows,
            deleted=report.n_deleted,
            appended=report.n_appended,
            incremental=f"{incremental_seconds * 1e3:.1f}ms",
            full=f"{full_seconds * 1e3:.1f}ms",
            identical="yes" if same else "NO",
        )
        records.append({
            "batch": index + 1,
            "n_rows": accumulated.n_rows,
            "n_deleted": report.n_deleted,
            "n_appended": report.n_appended,
            "incremental_seconds": incremental_seconds,
            "full_seconds": full_seconds,
            "identical": same,
        })
    engine.close()
    speedup = full_total / incremental_total
    records.append({
        "summary": True,
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "n_attrs": N_ATTRS,
        "n_batches": N_BATCHES,
        "ops_per_batch": OPS_PER_BATCH,
        "bootstrap_seconds": bootstrap_seconds,
        "full_base_seconds": full_base_seconds,
        "incremental_total_seconds": incremental_total,
        "full_total_seconds": full_total,
        "speedup": speedup,
        "identical": identical,
    })
    return records, speedup, identical


def bench_replay(reporter: Reporter):
    base = python_relation(DATASET, 1500, 6)
    n_batches = REPLAY_TARGET_OPS // REPLAY_BATCH_OPS
    batches = mixed_batches(base, n_batches, REPLAY_BATCH_OPS, seed=11)
    n_ops = sum(len(b) for b in batches)

    # the live history: apply batch by batch, like a running service
    live = base
    started = time.perf_counter()
    for batch in batches:
        live = batch.apply_to(live)
    sequential_seconds = time.perf_counter() - started
    live_fp = fingerprint(live)

    with tempfile.TemporaryDirectory(prefix="deltalog-bench-") as tmp:
        path = Path(tmp) / "bench.log"
        started = time.perf_counter()
        with DeltaLog(path) as log:
            for batch in batches:
                log.append(batch)
        append_seconds = time.perf_counter() - started
        log_bytes = path.stat().st_size

        # the cold boot: trust the clean prefix, fold it in one pass,
        # authenticate the result by content fingerprint
        started = time.perf_counter()
        replayed_records = read_delta_log(path)
        folded = replay_relation(
            base, (record.batch for record in replayed_records))
        replayed_fp = fingerprint(folded)
        replay_seconds = time.perf_counter() - started

    authentic = replayed_fp == live_fp
    within_budget = replay_seconds <= REPLAY_BUDGET_SECONDS
    reporter.add(
        batches=len(batches),
        ops=n_ops,
        log_kib=f"{log_bytes / 1024:.0f}",
        append=f"{append_seconds:.2f}s",
        sequential=f"{sequential_seconds:.2f}s",
        cold_replay=f"{replay_seconds:.2f}s",
        budget=f"{REPLAY_BUDGET_SECONDS:.0f}s",
        authentic="yes" if authentic else "NO",
    )
    records = [{
        "n_batches": len(batches),
        "n_ops": n_ops,
        "n_rows_final": live.n_rows,
        "log_bytes": log_bytes,
        "append_seconds": append_seconds,
        "sequential_apply_seconds": sequential_seconds,
        "cold_replay_seconds": replay_seconds,
        "replay_budget_seconds": REPLAY_BUDGET_SECONDS,
        "ops_per_second": n_ops / replay_seconds,
        "authentic": authentic,
        "within_budget": within_budget,
    }]
    return records, authentic, within_budget


def main() -> int:
    speedup_reporter = Reporter(
        experiment="delta_speedup",
        title=f"Mixed deltas: incremental vs full re-discovery "
              f"({DATASET} {N_ROWS}x{N_ATTRS}, {N_BATCHES} batches)",
        columns=["batch", "rows", "deleted", "appended", "incremental",
                 "full", "identical"])
    speedup_records, speedup, identical = bench_speedup(speedup_reporter)
    speedup_reporter.finish()

    replay_reporter = Reporter(
        experiment="delta_replay",
        title=f"Cold-boot WAL replay ({REPLAY_TARGET_OPS} weighted ops)",
        columns=["batches", "ops", "log_kib", "append", "sequential",
                 "cold_replay", "budget", "authentic"])
    replay_records, authentic, within_budget = bench_replay(
        replay_reporter)
    replay_reporter.finish()

    write_bench_json("deltalog", speedup_records, section="speedup")
    write_bench_json("deltalog", replay_records, section="replay")
    print(f"mixed-delta speedup over full re-discovery: {speedup:.2f}x "
          f"(gate: >= {MIN_SPEEDUP}x); identical: {identical}; "
          f"replay authentic: {authentic}; within budget: "
          f"{within_budget}")
    if not identical:
        print("FAIL: incremental results diverged from the oracle")
        return 1
    if speedup < MIN_SPEEDUP:
        print("FAIL: speedup below the gate")
        return 1
    if not authentic:
        print("FAIL: replayed fingerprint does not match live history")
        return 1
    if not within_budget:
        print("FAIL: cold replay exceeded its wall-clock budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
