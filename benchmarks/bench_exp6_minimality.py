"""Exp-6 (Figure 6, counts): minimal vs non-minimal OD counts.

The paper: the canonical representation prunes enormous redundancy —
e.g. ~700 minimal ODs vs ~50 million non-minimal ones on flight with
20 attributes.  Scaled down, the ratio still explodes with the
attribute count: every valid non-trivial canonical OD at every lattice
node is counted for the no-pruning run.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import (
    NOPRUNE_TIMEOUT,
    Reporter,
    dataset,
    fmt_counts,
    timed,
)
from repro import discover_ods

ATTR_SWEEP = [4, 6, 8, 10]
N_ROWS = 300

_reporter = Reporter(
    experiment="exp6_minimality",
    title=(f"Exp-6 / Figure 6 (flight-like, {N_ROWS} rows): "
           "minimal vs non-minimal OD counts"),
    columns=["attrs", "minimal #ODs (FD+OCD)",
             "non-minimal #ODs (FD+OCD)", "redundancy factor"])


def _run(attrs: int) -> None:
    relation = dataset("flight", N_ROWS, attrs)
    minimal, _ = timed(lambda: discover_ods(relation))
    everything, _ = timed(lambda: discover_ods(
        relation, minimality_pruning=False,
        timeout_seconds=NOPRUNE_TIMEOUT))
    factor = ("-" if everything.timed_out or not minimal.n_ods
              else f"{everything.n_ods / minimal.n_ods:.0f}x")
    _reporter.add(
        attrs=attrs,
        **{
            "minimal #ODs (FD+OCD)": fmt_counts(minimal),
            "non-minimal #ODs (FD+OCD)": fmt_counts(
                everything, dnf=everything.timed_out),
            "redundancy factor": factor,
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


@pytest.mark.parametrize("attrs", ATTR_SWEEP)
def test_exp6_counts(benchmark, attrs):
    relation = dataset("flight", N_ROWS, attrs)
    benchmark.pedantic(
        lambda: discover_ods(relation), rounds=1, iterations=1)
    _run(attrs)


def main() -> None:
    for attrs in ATTR_SWEEP:
        _run(attrs)
    _reporter.finish()


if __name__ == "__main__":
    main()
