"""Micro-benchmark: the hybrid escalation hot-path tweaks.

Two changes rode along with the unified-engine port of
``hybrid_discover`` (``core/hybrid.py``):

1. **mask_of memoization** — the ``frozenset -> bitmask`` translation
   of sample contexts is memoized.  Every sample FD seeds ``|R| - 1``
   pair escalations, so the same context was re-translated per pair.
2. **hoisted minimal-valid filter** — the per-wave subset-of-valid
   skip now tests candidates against ``_minimal_masks(valid)``
   (computed once per wave) instead of scanning the whole growing
   ``valid`` set per candidate.

This bench isolates both on representative workloads (contexts/valid
sets shaped like a flight-style escalation) and appends the numbers to
``benchmarks/results/hybrid_micro.txt``.  The speedups are micro-level
by design — the gate only asserts the optimized forms are not slower
beyond noise; correctness is pinned by ``tests/core/test_hybrid.py``.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import RESULTS_DIR  # noqa: E402

from repro.core.hybrid import _minimal_masks  # noqa: E402

ARITY = 10
N_CONTEXTS = 120
PAIR_FANOUT = ARITY - 1
ROUNDS = 200


def make_contexts(rng):
    names = [f"c{i}" for i in range(ARITY)]
    contexts = []
    for _ in range(N_CONTEXTS):
        k = rng.randint(0, 4)
        contexts.append(frozenset(rng.sample(names, k)))
    return names, contexts


def bench_mask_of(rng):
    names, contexts = make_contexts(rng)
    index = {name: i for i, name in enumerate(names)}

    def translate(context):
        mask = 0
        for name in context:
            mask |= 1 << index[name]
        return mask

    started = time.perf_counter()
    for _ in range(ROUNDS):
        for context in contexts:
            for _pair in range(PAIR_FANOUT):   # one per seeded pair
                translate(context)
    plain = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(ROUNDS):
        memo = {}
        for context in contexts:
            for _pair in range(PAIR_FANOUT):
                mask = memo.get(context)
                if mask is None:
                    mask = translate(context)
                    memo[context] = mask
    memoized = time.perf_counter() - started
    return plain, memoized


def bench_wave_filter(rng):
    # an escalation snapshot: a few hundred valid masks, most of them
    # supersets of a handful of minimal ones, and a wave to filter
    minimal = [rng.getrandbits(ARITY) & 0b1111 for _ in range(6)]
    valid = set(minimal)
    while len(valid) < 400:
        base = rng.choice(minimal)
        valid.add(base | rng.getrandbits(ARITY))
    wave = [rng.getrandbits(ARITY) for _ in range(300)]

    started = time.perf_counter()
    for _ in range(ROUNDS):
        [m for m in wave
         if not any(prior & m == prior for prior in valid)]
    per_candidate_full_set = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(ROUNDS):
        minimal_valid = _minimal_masks(valid)
        [m for m in wave
         if not any(prior & m == prior for prior in minimal_valid)]
    hoisted_minimal = time.perf_counter() - started
    return per_candidate_full_set, hoisted_minimal


def main() -> int:
    rng = random.Random(7)
    plain, memoized = bench_mask_of(rng)
    full_set, hoisted = bench_wave_filter(rng)

    lines = [
        "hybrid escalation micro-benchmarks "
        f"(arity={ARITY}, {ROUNDS} rounds)",
        f"  mask_of: plain {plain * 1000:.1f}ms, "
        f"memoized {memoized * 1000:.1f}ms "
        f"({plain / memoized:.2f}x)",
        f"  wave filter: per-candidate full-valid scan "
        f"{full_set * 1000:.1f}ms, hoisted minimal-valid "
        f"{hoisted * 1000:.1f}ms ({full_set / hoisted:.2f}x)",
    ]
    report = "\n".join(lines)
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "hybrid_micro.txt"
    out.write_text(report + "\n", encoding="utf-8")

    # gate: the optimized forms must not be slower beyond noise
    assert memoized < plain * 1.10, "mask_of memoization regressed"
    assert hoisted < full_set * 1.10, "wave filter hoist regressed"
    print("BENCH_hybrid_micro: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
