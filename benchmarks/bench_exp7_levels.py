"""Exp-7 (Figure 7): work and yield per lattice level.

The paper: per-level time first grows then shrinks (the set lattice is
a diamond and pruning eats the top); most ODs surface in the first few
levels — the ones with small contexts, which are also the most useful
for query optimization.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, fmt_seconds, timed
from repro import discover_ods

N_ROWS = 500
N_ATTRS = 14

_reporter = Reporter(
    experiment="exp7_levels",
    title=(f"Exp-7 / Figure 7 (flight-like, {N_ROWS} rows x "
           f"{N_ATTRS} attrs): per-level time and #ODs"),
    columns=["level", "nodes", "pruned", "time",
             "#ODs (FD+OCD)"])


def _run() -> None:
    relation = dataset("flight", N_ROWS, N_ATTRS)
    result, _ = timed(lambda: discover_ods(relation))
    for stats in result.level_stats:
        _reporter.add(
            level=stats.level,
            nodes=stats.n_nodes,
            pruned=stats.n_nodes_pruned,
            time=fmt_seconds(stats.seconds),
            **{
                "#ODs (FD+OCD)": (f"{stats.n_ods_found} "
                                  f"({stats.n_fds_found} + "
                                  f"{stats.n_ocds_found})"),
            })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


def test_exp7_levels(benchmark):
    relation = dataset("flight", N_ROWS, N_ATTRS)
    benchmark.pedantic(
        lambda: discover_ods(relation), rounds=1, iterations=1)
    _run()


def main() -> None:
    _run()
    _reporter.finish()


if __name__ == "__main__":
    main()
