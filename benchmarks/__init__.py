"""Benchmarks regenerating the paper's tables and figures."""
