"""Benches for the Section-7 extension implementations.

Not paper figures — scaling checks for approximate, bidirectional and
conditional discovery, so regressions in the extensions are as visible
as regressions in the core.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, fmt_seconds, timed
from repro.extensions import (
    discover_bidirectional_ocds,
    discover_conditional_ods,
)
from repro.violations import approximate_discovery

CASES = [
    ("flight", 500, 6),
    ("flight", 1000, 6),
    ("ncvoter", 500, 6),
    ("ncvoter", 1000, 6),
]

_reporter = Reporter(
    experiment="extensions",
    title="Extensions: approximate / bidirectional / conditional ODs",
    columns=["dataset", "rows", "attrs", "approx (g3<=0.02)",
             "#approx", "bidirectional", "#bi", "conditional", "#cond"])


def _run_case(name: str, rows: int, attrs: int) -> None:
    relation = dataset(name, rows, attrs)
    approx, approx_s = timed(lambda: approximate_discovery(
        relation, max_error=0.02, max_context=1))
    bi, bi_s = timed(lambda: discover_bidirectional_ocds(
        relation, max_context=1))
    cond, cond_s = timed(lambda: discover_conditional_ods(
        relation, min_support=0.1, max_level=2))
    _reporter.add(
        dataset=name, rows=rows, attrs=attrs,
        **{
            "approx (g3<=0.02)": fmt_seconds(approx_s),
            "#approx": len(approx.ods),
            "bidirectional": fmt_seconds(bi_s),
            "#bi": len(bi.ocds),
            "conditional": fmt_seconds(cond_s),
            "#cond": len(cond.ods),
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


@pytest.mark.parametrize("name,rows,attrs", CASES)
def test_extensions(benchmark, name, rows, attrs):
    relation = dataset(name, rows, attrs)
    benchmark.pedantic(
        lambda: approximate_discovery(relation, max_error=0.02,
                                      max_context=1),
        rounds=1, iterations=1)
    _run_case(name, rows, attrs)


def main() -> None:
    for case in CASES:
        _run_case(*case)
    _reporter.finish()


if __name__ == "__main__":
    main()
