"""Exp-3 (Section 5.3): head-to-head against ORDER.

Three paper claims reproduced:

1. FASTOD is much faster than ORDER on OD-rich data (flight), where
   ORDER's factorial lattice cannot prune.
2. ORDER is *incomplete*: it misses constants, repeated-attribute FDs
   and pure order compatibilities — counted here as the minimal
   FASTOD ODs absent from (and not implied by) ORDER's output.
3. FASTOD's canonical form is more concise even while being complete.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import (
    ORDER_MAX_NODES,
    ORDER_TIMEOUT,
    Reporter,
    dataset,
    fmt_counts,
    fmt_seconds,
    timed,
)
from repro import discover_ods
from repro.baselines import discover_ods_order
from repro.core.axioms_set import InferenceEngine

CASES = [
    ("flight", 500, 8),
    ("flight", 1000, 10),
    ("ncvoter", 500, 8),
    ("dbtesma", 500, 8),
    ("hepatitis", 155, 8),
]

_reporter = Reporter(
    experiment="exp3_order",
    title="Exp-3: FASTOD vs ORDER — runtime, completeness, conciseness",
    columns=["dataset", "rows", "attrs", "FASTOD", "ORDER",
             "FASTOD #ODs", "ORDER #ODs", "missed by ORDER",
             "constants missed"])


def _run_case(name: str, rows: int, attrs: int) -> None:
    relation = dataset(name, rows, attrs)
    fastod, fastod_s = timed(lambda: discover_ods(relation))
    order, order_s = timed(lambda: discover_ods_order(
        relation, max_nodes=ORDER_MAX_NODES,
        timeout_seconds=ORDER_TIMEOUT))
    engine = InferenceEngine([*order.fds, *order.ocds])
    missed = [od for od in fastod.all_ods if not engine.implies(od)]
    constants_missed = sum(
        1 for od in fastod.constants
        if not engine.implies(od))
    _reporter.add(
        dataset=name, rows=rows, attrs=attrs,
        FASTOD=fmt_seconds(fastod_s),
        ORDER=fmt_seconds(order_s, dnf=order.timed_out),
        **{
            "FASTOD #ODs": fmt_counts(fastod),
            "ORDER #ODs": fmt_counts(order, dnf=order.timed_out),
            "missed by ORDER": len(missed),
            "constants missed": constants_missed,
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


@pytest.mark.parametrize("name,rows,attrs", CASES)
def test_exp3_comparison(benchmark, name, rows, attrs):
    relation = dataset(name, rows, attrs)
    benchmark.pedantic(
        lambda: discover_ods_order(
            relation, max_nodes=ORDER_MAX_NODES,
            timeout_seconds=ORDER_TIMEOUT),
        rounds=1, iterations=1)
    _run_case(name, rows, attrs)


def main() -> None:
    for name, rows, attrs in CASES:
        _run_case(name, rows, attrs)
    _reporter.finish()


if __name__ == "__main__":
    main()
