"""Incremental discovery vs repeated full re-discovery.

The append workload the incremental engine exists for: a base snapshot
plus a stream of append batches (Exp-1-sized flight data, with drift in
the late batches so ODs actually get invalidated), keeping the
discovered OD set current after *every* batch.  Two contestants:

* **full** — re-run ``FastOD`` from scratch on the accumulated
  relation after each batch (what a batch pipeline without the engine
  has to do);
* **incremental** — one ``IncrementalFastOD`` fed the batches.

Gates (exit code 1 on failure):

1. the incremental FD/OCD sets are byte-identical to the from-scratch
   oracle after every batch (also property-tested separately on small
   randomized streams with ``verify_with_oracle``);
2. total incremental time beats total full-re-run time by at least
   ``MIN_SPEEDUP``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_incremental.py``.
Emits ``BENCH_incremental.json`` at the repo root via the harness.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, write_bench_json
from repro.core.fastod import FastOD
from repro.datasets.streaming import drifting_stream
from repro.incremental import IncrementalFastOD

DATASET = "flight"
N_ROWS = 5000
N_ATTRS = 8
N_BATCHES = 20
BASE_FRACTION = 0.5
DRIFT = 0.01
DRIFT_AFTER = 0.5
MIN_SPEEDUP = 3.0

EQUIVALENCE_STREAMS = [
    ("flight", 600, 7, 12),
    ("ncvoter", 400, 6, 10),
    ("dbtesma", 400, 6, 10),
]


def od_strings(result) -> list:
    return sorted(str(od) for od in result.all_ods)


def bench_speedup(reporter: Reporter):
    base, batches = drifting_stream(
        DATASET, n_rows=N_ROWS, n_attrs=N_ATTRS, n_batches=N_BATCHES,
        base_fraction=BASE_FRACTION, drift_after=DRIFT_AFTER, drift=DRIFT)

    started = time.perf_counter()
    engine = IncrementalFastOD(base)
    initial_seconds = time.perf_counter() - started
    incremental_total = initial_seconds

    accumulated = base
    started = time.perf_counter()
    FastOD(accumulated).run()
    full_total = time.perf_counter() - started

    records = []
    identical = True
    for index, batch in enumerate(batches):
        started = time.perf_counter()
        report = engine.append(batch)
        incremental_seconds = time.perf_counter() - started
        incremental_total += incremental_seconds

        accumulated = accumulated.concat(batch)
        started = time.perf_counter()
        oracle = FastOD(accumulated).run()
        full_seconds = time.perf_counter() - started
        full_total += full_seconds

        same = od_strings(engine.result) == od_strings(oracle)
        identical &= same
        reporter.add(
            batch=index + 1,
            rows=accumulated.n_rows,
            incremental=f"{incremental_seconds * 1e3:.1f}ms",
            full=f"{full_seconds * 1e3:.1f}ms",
            invalidated=len(report.invalidated),
            retraversed="yes" if report.retraversed else "no",
            identical="yes" if same else "NO",
        )
        records.append({
            "batch": index + 1,
            "n_rows": accumulated.n_rows,
            "incremental_seconds": incremental_seconds,
            "full_seconds": full_seconds,
            "invalidated": len(report.invalidated),
            "retraversed": report.retraversed,
            "identical": same,
        })
    speedup = full_total / incremental_total
    records.append({
        "summary": True,
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "n_attrs": N_ATTRS,
        "n_batches": N_BATCHES,
        "initial_seconds": initial_seconds,
        "incremental_total_seconds": incremental_total,
        "full_total_seconds": full_total,
        "speedup": speedup,
        "identical": identical,
    })
    return records, speedup, identical


def bench_equivalence(reporter: Reporter):
    """Oracle-asserted streams on smaller mixed datasets (the engine
    raises if any batch's result diverges)."""
    records = []
    all_ok = True
    for family, n_rows, n_attrs, n_batches in EQUIVALENCE_STREAMS:
        base, batches = drifting_stream(
            family, n_rows=n_rows, n_attrs=n_attrs, n_batches=n_batches,
            drift_after=0.4, drift=0.03)
        ok = True
        invalidated = 0
        try:
            engine = IncrementalFastOD(base, verify_with_oracle=True)
            for batch in batches:
                invalidated += len(engine.append(batch).invalidated)
        except AssertionError:
            ok = False
        all_ok &= ok
        reporter.add(dataset=family, rows=n_rows, attrs=n_attrs,
                     batches=n_batches, invalidated=invalidated,
                     identical="yes" if ok else "NO")
        records.append({
            "dataset": family, "n_rows": n_rows, "n_attrs": n_attrs,
            "n_batches": n_batches, "invalidated": invalidated,
            "identical": ok,
        })
    return records, all_ok


def main() -> int:
    equivalence_reporter = Reporter(
        experiment="incremental_equivalence",
        title="IncrementalFastOD vs from-scratch oracle (per batch)",
        columns=["dataset", "rows", "attrs", "batches", "invalidated",
                 "identical"])
    equivalence_records, equivalence_ok = bench_equivalence(
        equivalence_reporter)
    equivalence_reporter.finish()

    speedup_reporter = Reporter(
        experiment="incremental_speedup",
        title=f"Incremental vs full re-discovery "
              f"({DATASET} {N_ROWS}x{N_ATTRS}, {N_BATCHES} batches)",
        columns=["batch", "rows", "incremental", "full", "invalidated",
                 "retraversed", "identical"])
    speedup_records, speedup, identical = bench_speedup(speedup_reporter)
    speedup_reporter.finish()

    write_bench_json("incremental", speedup_records, section="speedup")
    write_bench_json("incremental", equivalence_records,
                     section="equivalence")
    print(f"total speedup over repeated full re-discovery: "
          f"{speedup:.2f}x (gate: >= {MIN_SPEEDUP}x); "
          f"identical results: {identical and equivalence_ok}")
    if not (identical and equivalence_ok):
        print("FAIL: incremental results differ from the oracle")
        return 1
    if speedup < MIN_SPEEDUP:
        print("FAIL: speedup below the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
