"""Ablations of FASTOD's individual design choices (Section 4.6).

Beyond the paper's headline pruning ablation (Exp-5), these isolate:

* **partition products vs from-scratch hashing** — the level-wise
  reuse that makes Π*_X linear per node;
* **error-rate FD test vs direct class scan** — the O(1) constancy
  check enabled by keeping parent partitions;
* **swap check strategies** — the per-class sort used by the library vs
  the paper's Table-2 sorted-partition bucketization;
* **level pruning and key pruning toggles** — runtime effect of each
  individually (results are invariant, property-tested).
"""

from __future__ import annotations

import time

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, fmt_seconds, timed
from repro import discover_ods
from repro.core.validation import (
    is_compatible_in_classes,
    is_constant_in_classes,
)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import partition_from_columns
from repro.partitions.sorted_partition import (
    SortedPartition,
    swap_free_buckets,
)
from repro.relation.schema import bit_count, iter_bits

N_ROWS = 2000
N_ATTRS = 8

_structures = Reporter(
    experiment="ablation_structures",
    title=(f"Ablation (flight-like {N_ROWS}x{N_ATTRS}): "
           "partition and validation strategies"),
    columns=["operation", "fast path", "naive path", "speedup"])
_toggles = Reporter(
    experiment="ablation_toggles",
    title="Ablation: FASTOD pruning toggles (results are identical)",
    columns=["configuration", "time", "#ODs"])


def _masks(max_size: int = 3):
    return [m for m in range(1, 1 << N_ATTRS)
            if bit_count(m) <= max_size]


def _ablate_partition_product() -> None:
    relation = dataset("flight", N_ROWS, N_ATTRS).encode()
    masks = _masks()
    started = time.perf_counter()
    cache = PartitionCache(relation)
    for mask in masks:
        cache.get(mask)
    fast = time.perf_counter() - started
    started = time.perf_counter()
    for mask in masks:
        partition_from_columns(relation, iter_bits(mask))
    naive = time.perf_counter() - started
    _structures.add(
        operation=f"partition build ({len(masks)} masks, <=3 attrs)",
        **{"fast path": fmt_seconds(fast),
           "naive path": fmt_seconds(naive),
           "speedup": f"{naive / max(fast, 1e-9):.1f}x"})


def _ablate_fd_check() -> None:
    relation = dataset("flight", N_ROWS, N_ATTRS).encode()
    cache = PartitionCache(relation)
    checks = [
        (mask, attribute)
        for mask in _masks(2)
        for attribute in range(N_ATTRS)
        if not mask & (1 << attribute)
    ]
    for mask, attribute in checks:       # warm the cache fairly
        cache.get(mask | (1 << attribute))
    started = time.perf_counter()
    for mask, attribute in checks:
        context = cache.get(mask)
        refined = cache.get(mask | (1 << attribute))
        _ = context.error == refined.error
    fast = time.perf_counter() - started
    started = time.perf_counter()
    for mask, attribute in checks:
        is_constant_in_classes(
            relation.column(attribute), cache.get(mask))
    naive = time.perf_counter() - started
    _structures.add(
        operation=f"FD check ({len(checks)} candidates)",
        **{"fast path": fmt_seconds(fast),
           "naive path": fmt_seconds(naive),
           "speedup": f"{naive / max(fast, 1e-9):.1f}x"})


def _ablate_swap_check() -> None:
    relation = dataset("flight", N_ROWS, N_ATTRS).encode()
    cache = PartitionCache(relation)
    pairs = [(a, b) for a in range(N_ATTRS) for b in range(a + 1, N_ATTRS)]
    contexts = [cache.get(1 << c) for c in range(N_ATTRS)]
    started = time.perf_counter()
    for context in contexts:
        for a, b in pairs:
            is_compatible_in_classes(
                relation.column(a), relation.column(b), context)
    sort_scan = time.perf_counter() - started
    taus = [SortedPartition.for_attribute(relation, a)
            for a in range(N_ATTRS)]
    started = time.perf_counter()
    for context in contexts:
        for a, b in pairs:
            tau = taus[a]
            for rows in context.classes:
                if not swap_free_buckets(tau.restrict(rows),
                                         relation.column(b)):
                    break
    bucketized = time.perf_counter() - started
    _structures.add(
        operation=f"swap check ({len(contexts) * len(pairs)} candidates)",
        **{"fast path": fmt_seconds(sort_scan),
           "naive path": fmt_seconds(bucketized),
           "speedup": f"{bucketized / max(sort_scan, 1e-9):.1f}x"})


def _ablate_toggles() -> None:
    relation = dataset("flight", 500, 12)
    configurations = [
        ("all pruning on", {}),
        ("level pruning off", {"level_pruning": False}),
        ("key pruning off", {"key_pruning": False}),
        ("both off", {"level_pruning": False, "key_pruning": False}),
    ]
    baseline = None
    for label, kwargs in configurations:
        result, seconds = timed(lambda: discover_ods(relation, **kwargs))
        if baseline is None:
            baseline = result
        assert result.same_ods(baseline), "toggles changed the output!"
        _toggles.add(configuration=label, time=fmt_seconds(seconds),
                     **{"#ODs": result.paper_counts()})


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _structures.finish()
    _toggles.finish()


def test_ablation_partition_product(benchmark):
    benchmark.pedantic(_ablate_partition_product, rounds=1, iterations=1)


def test_ablation_fd_check(benchmark):
    benchmark.pedantic(_ablate_fd_check, rounds=1, iterations=1)


def test_ablation_swap_check(benchmark):
    benchmark.pedantic(_ablate_swap_check, rounds=1, iterations=1)


def test_ablation_toggles(benchmark):
    benchmark.pedantic(_ablate_toggles, rounds=1, iterations=1)


def main() -> None:
    _ablate_partition_product()
    _ablate_fd_check()
    _ablate_swap_check()
    _ablate_toggles()
    _structures.finish()
    _toggles.finish()


if __name__ == "__main__":
    main()
