"""Exp-4 (Section 5.3): the extra cost of order semantics vs TANE.

Paper claims reproduced: TANE is faster (no swap checks), both scale
the same way, both find *identical* FD sets, and FASTOD's surplus is
exactly the order compatible dependencies that FDs cannot express.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, fmt_seconds, timed
from repro import discover_ods
from repro.baselines import discover_fds

CASES = [
    ("flight", 2000, 8),
    ("flight", 500, 12),
    ("ncvoter", 2000, 8),
    ("ncvoter", 500, 12),
    ("dbtesma", 2000, 8),
    ("hepatitis", 155, 10),
]

_reporter = Reporter(
    experiment="exp4_tane",
    title="Exp-4: TANE vs FASTOD — FD parity and the price of order",
    columns=["dataset", "rows", "attrs", "TANE", "FASTOD",
             "slowdown", "#FDs equal", "extra OCDs"])


def _run_case(name: str, rows: int, attrs: int) -> None:
    relation = dataset(name, rows, attrs)
    tane, tane_s = timed(lambda: discover_fds(relation))
    fastod, fastod_s = timed(lambda: discover_ods(relation))
    _reporter.add(
        dataset=name, rows=rows, attrs=attrs,
        TANE=fmt_seconds(tane_s),
        FASTOD=fmt_seconds(fastod_s),
        slowdown=f"{fastod_s / max(tane_s, 1e-9):.1f}x",
        **{
            "#FDs equal": set(tane.fds) == set(fastod.fds),
            "extra OCDs": fastod.n_ocds,
        })


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


@pytest.mark.parametrize("name,rows,attrs", CASES)
def test_exp4_comparison(benchmark, name, rows, attrs):
    relation = dataset(name, rows, attrs)
    benchmark.pedantic(
        lambda: discover_fds(relation), rounds=1, iterations=1)
    _run_case(name, rows, attrs)


def main() -> None:
    for case in CASES:
        _run_case(*case)
    _reporter.finish()


if __name__ == "__main__":
    main()
