"""Exp-1 (Figure 4): scalability in the number of tuples |r|.

The paper's claim: FASTOD (like TANE) scales *linearly* in tuples;
the OD counts stabilize as samples grow; ORDER's runtime depends on
how aggressively its pruning fires per dataset.

Reproduced on flight/ncvoter/dbtesma-like data with 8 attributes and a
growing row count.  Run directly (``python benchmarks/
bench_exp1_tuples.py``) or via ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import (
    ORDER_MAX_NODES,
    ORDER_TIMEOUT,
    Reporter,
    dataset,
    fmt_counts,
    fmt_seconds,
    timed,
    write_bench_json,
)
from repro import discover_ods
from repro.baselines import discover_fds, discover_ods_order

DATASETS = ["flight", "ncvoter", "dbtesma"]
ROW_COUNTS = [1000, 2000, 3000, 4000, 5000]
N_ATTRS = 8

_reporters = {}
_partition_records = []


def _reporter(name: str) -> Reporter:
    if name not in _reporters:
        _reporters[name] = Reporter(
            experiment=f"exp1_{name}",
            title=(f"Exp-1 / Figure 4 ({name}-like, {N_ATTRS} attrs): "
                   "runtime and #ODs vs tuples"),
            columns=["rows", "TANE", "FASTOD", "ORDER",
                     "FASTOD #ODs (FD+OCD)", "ORDER #ODs (FD+OCD)"])
    return _reporters[name]


def _run_row(name: str, rows: int) -> dict:
    relation = dataset(name, rows, N_ATTRS)
    tane, tane_s = timed(lambda: discover_fds(relation))
    fastod, fastod_s = timed(lambda: discover_ods(relation))
    order, order_s = timed(lambda: discover_ods_order(
        relation, max_nodes=ORDER_MAX_NODES,
        timeout_seconds=ORDER_TIMEOUT))
    _reporter(name).add(
        rows=rows,
        TANE=fmt_seconds(tane_s),
        FASTOD=fmt_seconds(fastod_s),
        ORDER=fmt_seconds(order_s, dnf=order.timed_out),
        **{
            "FASTOD #ODs (FD+OCD)": fmt_counts(fastod),
            "ORDER #ODs (FD+OCD)": fmt_counts(order, dnf=order.timed_out),
        })
    _partition_records.append({
        "dataset": name,
        "n_rows": rows,
        "n_attrs": N_ATTRS,
        "seconds": fastod_s,
        "ods_found": fastod.n_ods,
    })
    return {"fastod": fastod_s, "tane": tane_s}


def _publish_all() -> None:
    for reporter in _reporters.values():
        reporter.finish()
    # only publish a complete sweep — a filtered pytest run must not
    # overwrite the tracked artifact with partial data
    if len(_partition_records) == len(DATASETS) * len(ROW_COUNTS):
        write_bench_json("partitions", _partition_records,
                         section="exp1_tuples")


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _publish_all()


@pytest.mark.parametrize("rows", ROW_COUNTS)
@pytest.mark.parametrize("name", DATASETS)
def test_exp1_scaling(benchmark, name, rows):
    relation = dataset(name, rows, N_ATTRS)
    benchmark.pedantic(
        lambda: discover_ods(relation), rounds=1, iterations=1)
    _run_row(name, rows)


def main() -> None:
    for name in DATASETS:
        for rows in ROW_COUNTS:
            _run_row(name, rows)
    _publish_all()


if __name__ == "__main__":
    main()
