"""Hybrid sample-then-validate discovery vs the exact lattice sweep.

Not a paper experiment — an extension bench.  The hybrid strategy
validates only the contexts the sample could not settle, so it wins on
FD-heavy tall tables (dbtesma-like) where most of FASTOD's sweep is
redundant; on swap-heavy data its ad-hoc partition chains cost more
than FASTOD's level-wise reuse and it loses — the table reports both
honestly.  Output equality with exact FASTOD is asserted on every run
(and property-tested in the suite).
"""

from __future__ import annotations

import pytest

import sys as _sys
from pathlib import Path as _Path

_sys.path.insert(0, str(_Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, fmt_seconds, timed
from repro import discover_ods
from repro.core.hybrid import hybrid_discover

CASES = [
    ("flight", 2000, 8),
    ("flight", 5000, 8),
    ("ncvoter", 2000, 8),
    ("ncvoter", 5000, 8),
    ("dbtesma", 5000, 8),
]
SAMPLE_SIZE = 150

_reporter = Reporter(
    experiment="hybrid",
    title=(f"Extension: exact FASTOD vs hybrid discovery "
           f"(sample={SAMPLE_SIZE})"),
    columns=["dataset", "rows", "attrs", "FASTOD", "hybrid",
             "speedup", "identical output"])


def _run_case(name: str, rows: int, attrs: int) -> None:
    relation = dataset(name, rows, attrs)
    exact, exact_s = timed(lambda: discover_ods(relation))
    hybrid, hybrid_s = timed(lambda: hybrid_discover(
        relation, sample_size=SAMPLE_SIZE, seed=1))
    _reporter.add(
        dataset=name, rows=rows, attrs=attrs,
        FASTOD=fmt_seconds(exact_s),
        hybrid=fmt_seconds(hybrid_s),
        speedup=f"{exact_s / max(hybrid_s, 1e-9):.1f}x",
        **{"identical output": exact.same_ods(hybrid)})


@pytest.fixture(scope="module", autouse=True)
def _publish():
    yield
    _reporter.finish()


@pytest.mark.parametrize("name,rows,attrs", CASES)
def test_hybrid(benchmark, name, rows, attrs):
    relation = dataset(name, rows, attrs)
    benchmark.pedantic(
        lambda: hybrid_discover(relation, sample_size=SAMPLE_SIZE,
                                seed=1),
        rounds=1, iterations=1)
    _run_case(name, rows, attrs)


def main() -> None:
    for case in CASES:
        _run_case(*case)
    _reporter.finish()


if __name__ == "__main__":
    main()
