"""Shared infrastructure for the experiment benchmarks.

Every ``bench_exp*.py`` regenerates one of the paper's tables/figures
(Figures 4-7, Exp-1..Exp-7) as a text table: rows printed to the
terminal and appended to ``benchmarks/results/<experiment>.txt`` so
``EXPERIMENTS.md`` can quote them.

Absolute numbers differ from the paper (pure Python on synthetic
stand-in data versus Java on the original datasets); the *shapes* are
what the benches reproduce — see DESIGN.md for the substitution notes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.results import DiscoveryResult
from repro.datasets import make_dataset
from repro.relation.table import Relation

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Budgets that let ORDER / no-pruning runs report DNF instead of
#: stalling the whole session (the paper's "* 5h" marker).
ORDER_MAX_NODES = 60_000
ORDER_TIMEOUT = 30.0
NOPRUNE_TIMEOUT = 60.0

DNF = "DNF"


@lru_cache(maxsize=64)
def dataset(name: str, n_rows: int, n_attrs: int) -> Relation:
    """Cached synthetic dataset instance (encoded lazily by callers)."""
    relation = make_dataset(name, n_rows=n_rows, n_attrs=n_attrs, seed=42)
    relation.encode()   # pre-encode so timings measure discovery only
    return relation


def timed(fn: Callable[[], DiscoveryResult]):
    """Run a discovery function, returning (result, seconds)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def fmt_seconds(seconds: Optional[float], dnf: bool = False) -> str:
    if dnf:
        return DNF
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.0f}ms"


def fmt_counts(result: Optional[DiscoveryResult],
               dnf: bool = False) -> str:
    if result is None:
        return "-"
    suffix = f" {DNF}" if dnf else ""
    return result.paper_counts() + suffix


@dataclass
class Reporter:
    """Collects table rows for one experiment and renders the table."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, str]] = field(default_factory=list)

    def add(self, **cells) -> None:
        self.rows.append({key: str(value) for key, value in cells.items()})

    def render(self) -> str:
        widths = {
            column: max(len(column),
                        *(len(row.get(column, "")) for row in self.rows))
            if self.rows else len(column)
            for column in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        separator = "  ".join("-" * widths[c] for c in self.columns)
        body = [
            "  ".join(row.get(c, "").ljust(widths[c]) for c in self.columns)
            for row in self.rows
        ]
        return "\n".join([self.title, header, separator, *body])

    def finish(self) -> None:
        """Print the table and persist it under benchmarks/results/."""
        table = self.render()
        print("\n" + table + "\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{self.experiment}.txt"
        out.write_text(table + "\n", encoding="utf-8")


def write_bench_json(name: str, records: List[Dict[str, object]],
                     section: str = "default",
                     directory: Optional[Path] = None) -> Path:
    """Persist machine-readable benchmark records in ``BENCH_<name>.json``.

    The companion to the human-readable text tables: flat record dicts
    (e.g. ``dataset``, ``n_rows``, ``n_attrs``, ``seconds``,
    ``ods_found``) written at the repo root so perf trajectories can be
    tracked across PRs by tooling.  The file maps section name ->
    record list and is merged on write, so multiple benches sharing one
    artifact (e.g. the Exp-1 sweep and the kernel micro-benchmark)
    update their own section instead of clobbering each other.
    """
    target = (directory or REPO_ROOT) / f"BENCH_{name}.json"
    sections: Dict[str, object] = {}
    if target.exists():
        try:
            loaded = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict):
            sections = loaded
    sections[section] = records
    target.write_text(json.dumps(sections, indent=1) + "\n",
                      encoding="utf-8")
    return target
