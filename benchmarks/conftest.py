"""Make ``benchmarks.harness`` importable when pytest runs this dir."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
