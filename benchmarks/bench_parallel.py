"""Gate for the parallel lattice execution engine.

Asserts the two claims the engine makes, on an Exp-1-sized instance
(the paper's tuple scale-up axis, grown to where per-level work
dominates process dispatch):

1. **Byte-identical results** — the FD and OCD sets of every parallel
   configuration equal the ``workers=1`` serial run's, string for
   string.  Machine-independent; always enforced.
2. **>= 2x speedup at 4 workers vs 1** — measured two ways, passing if
   EITHER clears the gate (the same dual-gate precedent as
   ``bench_partition_kernels.py``):

   * **wall clock**: a real 4-worker run against the serial run.
     Honest only with >= 4 idle cores, so it is reported always but
     can only *pass* hardware that has them.
   * **work-distribution projection** (hardware-independent): the same
     4-worker sharding is executed through a *single* uncontended
     worker process (``n_chunks_per_dispatch`` keeps the chunk
     granularity of a 4-worker pool), giving per-chunk CPU costs free
     of time-slicing interference.  The projected 4-worker wall clock
     is then ``run_wall - Σ chunk_busy + Σ LPT-makespan(chunks, 4)``:
     everything the coordinator did stays serial, and each dispatch's
     chunks are placed on 4 workers by longest-processing-time-first.
     This is exactly the quantity a 4-core machine's wall clock
     converges to, measurable on a 1-core CI box.

Run directly: ``PYTHONPATH=src python benchmarks/bench_parallel.py``.
Emits ``BENCH_parallel.json`` at the repo root via the harness and the
table to ``benchmarks/results/parallel_speedup.txt``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, write_bench_json
from repro.core.fastod import FastOD, FastODConfig
from repro.core.results import DiscoveryResult
from repro.parallel.pool import CHUNKS_PER_WORKER, WorkerPool

DATASET = "flight"
N_ROWS = 150_000
N_ATTRS = 8
WORKERS = 4
MIN_SPEEDUP = 2.0
#: best-of-N trials for the timed arms — damps scheduler noise on
#: shared CI machines (result identity is asserted on every trial)
TRIALS = 2


def od_strings(result: DiscoveryResult) -> Tuple[List[str], List[str]]:
    return (sorted(str(od) for od in result.fds),
            sorted(str(od) for od in result.ocds))


def lpt_makespan(chunks: Sequence[float], k: int) -> float:
    """Longest-processing-time-first makespan of ``chunks`` on ``k``
    workers — the classic 4/3-approximation, matching the pool's
    greedy consumption of queued chunks."""
    loads = [0.0] * k
    for chunk in sorted(chunks, reverse=True):
        loads[loads.index(min(loads))] += chunk
    return max(loads)


def timed_run(relation, config, pool=None) -> Tuple[DiscoveryResult, float]:
    started = time.perf_counter()
    result = FastOD(relation, config, pool=pool).run()
    return result, time.perf_counter() - started


def main() -> int:
    relation = dataset(DATASET, N_ROWS, N_ATTRS)
    encoded = relation.encode()
    reporter = Reporter(
        experiment="parallel_speedup",
        title=f"Parallel lattice engine on {DATASET} "
              f"{N_ROWS}x{N_ATTRS} (Exp-1 scale-up)",
        columns=["mode", "workers", "wall", "speedup", "identical"])

    serial_seconds = None
    serial_result = None
    for _ in range(TRIALS):
        result, seconds = timed_run(relation, FastODConfig(workers=1))
        if serial_seconds is None or seconds < serial_seconds:
            serial_seconds = seconds
            serial_result = result
    serial_ods = od_strings(serial_result)
    reporter.add(mode="serial", workers=1,
                 wall=f"{serial_seconds * 1e3:.0f}ms", speedup="1.00x",
                 identical="yes")

    # real 4-worker wall clock (meaningful with >= 4 idle cores; on a
    # 1-core box the number is pure time-slicing noise, so the table
    # says so instead of printing a misleading "0.4x")
    one_core = (os.cpu_count() or 1) == 1
    with WorkerPool(encoded, WORKERS) as pool:
        wall_result, wall_seconds = timed_run(
            relation, FastODConfig(workers=WORKERS), pool=pool)
    wall_identical = od_strings(wall_result) == serial_ods
    wall_speedup = serial_seconds / wall_seconds
    reporter.add(mode="parallel-wall", workers=WORKERS,
                 wall=f"{wall_seconds * 1e3:.0f}ms",
                 speedup=("skipped (1 core)" if one_core
                          else f"{wall_speedup:.2f}x"),
                 identical="yes" if wall_identical else "NO")

    # work-distribution projection: 4-worker sharding through one
    # uncontended worker, chunks LPT-placed on 4 virtual workers
    projected_identical = True
    projected_seconds = None
    busy = makespan = 0.0
    for _ in range(TRIALS):
        with WorkerPool(encoded, 1,
                        n_chunks_per_dispatch=WORKERS * CHUNKS_PER_WORKER
                        ) as pool:
            result, run_seconds = timed_run(
                relation, FastODConfig(workers=WORKERS), pool=pool)
            trial_busy = sum(sum(d["chunk_busy_seconds"])
                             for d in pool.dispatches)
            trial_makespan = sum(
                lpt_makespan(d["chunk_busy_seconds"], WORKERS)
                for d in pool.dispatches)
        projected_identical &= od_strings(result) == serial_ods
        trial_projected = run_seconds - trial_busy + trial_makespan
        if projected_seconds is None or trial_projected < projected_seconds:
            projected_seconds = trial_projected
            busy, makespan = trial_busy, trial_makespan
    projected_speedup = serial_seconds / projected_seconds
    reporter.add(mode="parallel-projected", workers=WORKERS,
                 wall=f"{projected_seconds * 1e3:.0f}ms",
                 speedup=f"{projected_speedup:.2f}x",
                 identical="yes" if projected_identical else "NO")
    reporter.finish()

    identical = wall_identical and projected_identical
    records: List[Dict[str, object]] = [
        {"dataset": DATASET, "n_rows": N_ROWS, "n_attrs": N_ATTRS,
         "mode": "serial", "workers": 1, "seconds": serial_seconds,
         "ods_found": serial_result.n_ods},
        {"dataset": DATASET, "n_rows": N_ROWS, "n_attrs": N_ATTRS,
         "mode": "parallel_wall", "workers": WORKERS,
         "seconds": wall_seconds, "speedup": wall_speedup,
         "identical": wall_identical,
         "cpu_count": os.cpu_count(),
         "wall_gate_skipped": one_core},
        {"dataset": DATASET, "n_rows": N_ROWS, "n_attrs": N_ATTRS,
         "mode": "parallel_projected", "workers": WORKERS,
         "seconds": projected_seconds, "speedup": projected_speedup,
         "identical": projected_identical,
         "worker_busy_seconds": busy, "lpt_makespan_seconds": makespan},
    ]
    write_bench_json("parallel", records, section="speedup_gate")

    wall_label = ("skipped (1 core)" if one_core
                  else f"{wall_speedup:.2f}x")
    print(f"speedup at {WORKERS} workers vs 1: {wall_label} "
          f"(wall clock, {os.cpu_count()} cpu(s)) / "
          f"{projected_speedup:.2f}x (work-distribution projection); "
          f"gate: >= {MIN_SPEEDUP}x on either; "
          f"identical results: {identical}")
    if not identical:
        print("FAIL: parallel FD/OCD sets differ from the serial engine")
        return 1
    if wall_speedup < MIN_SPEEDUP and projected_speedup < MIN_SPEEDUP:
        print("FAIL: speedup below the gate on both measures")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
