"""Micro-benchmark for the vectorized partition kernels.

Gates the perf claim of the flat-layout partition engine two ways:

1. **Kernel level** — times the vectorized `StrippedPartition.product`
   and swap scan against list-based reference implementations (the
   seed's per-row loops, reproduced here verbatim) on synthetic
   partitions, asserting agreement on every input.
2. **Discovery level** — re-runs ``FastOD(...).run()`` on the Exp-1
   sizes and compares wall clock *and the exact FD/OCD result sets*
   against ``benchmarks/seed_exp1_baseline.json``, the committed
   before-change snapshot.  The run fails (exit code 1) if any result
   set differs or the aggregate speedup drops below 2x.

   The result-identity check is machine-independent; the
   discovery-level speedup is not (the baseline's ``seconds`` were
   recorded on the machine that made the change), so the speedup gate
   passes when EITHER the discovery comparison or the in-process
   kernel-level comparison — reference implementations timed in the
   same run, hence hardware-independent — clears ``MIN_SPEEDUP``.

Run directly: ``PYTHONPATH=src python benchmarks/bench_partition_kernels.py``.
Emits ``BENCH_partitions.json`` at the repo root via the harness.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, timed, write_bench_json
from repro import discover_ods
from repro.core.validation import is_compatible_in_classes
from repro.partitions.partition import StrippedPartition

BASELINE = Path(__file__).resolve().parent / "seed_exp1_baseline.json"
DATASETS = ["flight", "ncvoter", "dbtesma"]
ROW_COUNTS = [1000, 2000, 3000, 4000, 5000]
N_ATTRS = 8
MIN_SPEEDUP = 2.0


# ----------------------------------------------------------------------
# list-based reference kernels (the seed implementations, kept verbatim
# as the comparison point — do not "optimize" these)
# ----------------------------------------------------------------------
def reference_product(left: StrippedPartition,
                      right: StrippedPartition) -> StrippedPartition:
    probe = left.row_to_class()
    classes: List[List[int]] = []
    for rows in right.classes:
        groups: dict = {}
        for row in rows:
            left_class = probe[row]
            if left_class >= 0:
                groups.setdefault(int(left_class), []).append(row)
        for grouped in groups.values():
            if len(grouped) >= 2:
                classes.append(grouped)
    return StrippedPartition(classes, left.n_rows)


def reference_swap_free(column_a: np.ndarray, column_b: np.ndarray,
                        context: StrippedPartition) -> bool:
    for rows in context.classes:
        pairs = sorted(zip(column_a[rows].tolist(),
                           column_b[rows].tolist()))
        max_b_before = None
        current_a = None
        current_max_b = None
        first = True
        for value_a, value_b in pairs:
            if first or value_a != current_a:
                if current_max_b is not None and (
                        max_b_before is None
                        or current_max_b > max_b_before):
                    max_b_before = current_max_b
                current_a = value_a
                current_max_b = None
                first = False
            if max_b_before is not None and value_b < max_b_before:
                return False
            if current_max_b is None or value_b > current_max_b:
                current_max_b = value_b
    return True


# ----------------------------------------------------------------------
# kernel micro-benchmarks
# ----------------------------------------------------------------------
def _synthetic_columns(n_rows: int, n_distinct: int,
                       seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_distinct, size=n_rows).astype(np.int64)


def bench_kernels(reporter: Reporter) -> List[dict]:
    records = []
    for n_rows, n_distinct in [(1000, 10), (10_000, 30), (50_000, 100)]:
        col_x = _synthetic_columns(n_rows, n_distinct, seed=1)
        col_y = _synthetic_columns(n_rows, n_distinct, seed=2)
        # a swap-free (A, B) pair — B a monotone function of A — so both
        # scans must walk every class in full.  Violated candidates let
        # the scalar scan exit on the first swap; *holding* candidates
        # are the ones discovery validates over and over, and there the
        # full scan is the cost that matters.
        col_a = _synthetic_columns(n_rows, n_rows // 2, seed=3)
        col_b = col_a // 3
        left = StrippedPartition.from_ranks(col_x)
        right = StrippedPartition.from_ranks(col_y)

        t0 = time.perf_counter()
        fast = left.product(right)
        fast_product_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = reference_product(left, right)
        slow_product_s = time.perf_counter() - t0
        assert fast == slow, "product disagrees with reference"

        context = fast
        t0 = time.perf_counter()
        fast_ok = is_compatible_in_classes(col_a, col_b, context)
        fast_swap_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow_ok = reference_swap_free(col_a, col_b, context)
        slow_swap_s = time.perf_counter() - t0
        assert fast_ok == slow_ok, "swap scan disagrees with reference"

        reporter.add(
            n_rows=n_rows,
            product=f"{fast_product_s * 1e3:.2f}ms",
            product_ref=f"{slow_product_s * 1e3:.2f}ms",
            product_x=f"{slow_product_s / fast_product_s:.1f}x",
            swap=f"{fast_swap_s * 1e3:.2f}ms",
            swap_ref=f"{slow_swap_s * 1e3:.2f}ms",
            swap_x=f"{slow_swap_s / fast_swap_s:.1f}x",
        )
        records.append({
            "kernel": "product", "n_rows": n_rows,
            "seconds": fast_product_s,
            "reference_seconds": slow_product_s,
        })
        records.append({
            "kernel": "swap_scan", "n_rows": n_rows,
            "seconds": fast_swap_s,
            "reference_seconds": slow_swap_s,
        })
    return records


# ----------------------------------------------------------------------
# discovery-level before/after gate
# ----------------------------------------------------------------------
def bench_discovery(reporter: Reporter) -> tuple:
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    records = []
    speedups = []
    identical = True
    for name in DATASETS:
        for rows in ROW_COUNTS:
            key = f"{name}:{rows}"
            seed_record = baseline[key]
            relation = dataset(name, rows, N_ATTRS)
            result, seconds = timed(lambda: discover_ods(relation))
            same = (sorted(str(od) for od in result.fds)
                    == seed_record["fds"]
                    and sorted(str(od) for od in result.ocds)
                    == seed_record["ocds"])
            identical &= same
            speedup = seed_record["seconds"] / seconds
            speedups.append(speedup)
            reporter.add(
                dataset=name, rows=rows,
                seed=f"{seed_record['seconds'] * 1e3:.0f}ms",
                now=f"{seconds * 1e3:.0f}ms",
                speedup=f"{speedup:.2f}x",
                identical="yes" if same else "NO",
            )
            records.append({
                "dataset": name,
                "n_rows": rows,
                "n_attrs": N_ATTRS,
                "seconds": seconds,
                "ods_found": result.n_ods,
                "seed_seconds": seed_record["seconds"],
                "speedup": speedup,
            })
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return records, geomean, identical


def main() -> int:
    kernel_reporter = Reporter(
        experiment="partition_kernels",
        title="Vectorized partition kernels vs list-based reference",
        columns=["n_rows", "product", "product_ref", "product_x",
                 "swap", "swap_ref", "swap_x"])
    kernel_records = bench_kernels(kernel_reporter)
    kernel_reporter.finish()

    discovery_reporter = Reporter(
        experiment="partition_discovery",
        title="FastOD on Exp-1 sizes: flat-layout engine vs seed baseline",
        columns=["dataset", "rows", "seed", "now", "speedup", "identical"])
    discovery_records, geomean, identical = bench_discovery(
        discovery_reporter)
    discovery_reporter.finish()

    write_bench_json("partitions", discovery_records,
                     section="discovery_gate")
    write_bench_json("partitions", kernel_records, section="kernels")
    kernel_ratios = [r["reference_seconds"] / r["seconds"]
                     for r in kernel_records]
    kernel_geomean = math.exp(
        sum(math.log(r) for r in kernel_ratios) / len(kernel_ratios))
    print(f"geomean speedup over seed: {geomean:.2f}x (discovery, "
          f"machine-dependent) / {kernel_geomean:.2f}x (kernels, "
          f"in-process); gate: >= {MIN_SPEEDUP}x on either; "
          f"identical results: {identical}")
    if not identical:
        print("FAIL: discovery results differ from the seed baseline")
        return 1
    if geomean < MIN_SPEEDUP and kernel_geomean < MIN_SPEEDUP:
        print("FAIL: aggregate speedup below the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
