"""Micro-benchmark for the vectorized partition kernels.

Gates the perf claim of the flat-layout partition engine two ways:

1. **Kernel level** — times the vectorized `StrippedPartition.product`
   and swap scan against list-based reference implementations (the
   seed's per-row loops, reproduced here verbatim) on synthetic
   partitions, asserting agreement on every input.
2. **Discovery level** — re-runs ``FastOD(...).run()`` on the Exp-1
   sizes and compares wall clock *and the exact FD/OCD result sets*
   against ``benchmarks/seed_exp1_baseline.json``, the committed
   before-change snapshot.  The run fails (exit code 1) if any result
   set differs or the aggregate speedup drops below 2x.

   The result-identity check is machine-independent; the
   discovery-level speedup is not (the baseline's ``seconds`` were
   recorded on the machine that made the change), so the speedup gate
   passes when EITHER the discovery comparison or the in-process
   kernel-level comparison — reference implementations timed in the
   same run, hence hardware-independent — clears ``MIN_SPEEDUP``.

3. **Backend level** — times the compiled (C/ctypes) kernel backend
   against the reference (NumPy) backend on the same inputs, kernel by
   kernel, asserting byte-identical outputs per cell and a geomean
   speedup of at least ``BACKEND_MIN_SPEEDUP`` (2x).  When no C
   toolchain is available the section reports ``skipped`` and passes —
   the compiled backend is an optional accelerator, never a
   requirement.

4. **Backend × workers identity matrix** — runs full discovery at
   workers 0/2/4 under each available backend (with
   ``parallel_min_grouped_rows=0`` so the pool really dispatches) and
   asserts every cell's FD/OCD sets are string-identical to the
   serial reference run.

Run directly: ``PYTHONPATH=src python benchmarks/bench_partition_kernels.py``.
Emits ``BENCH_partitions.json`` at the repo root via the harness.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import Reporter, dataset, timed, write_bench_json
from repro import discover_ods, kernels
from repro.core.fastod import FastOD, FastODConfig
from repro.core.validation import is_compatible_in_classes
from repro.kernels.reference import ReferenceBackend
from repro.partitions.partition import StrippedPartition

BASELINE = Path(__file__).resolve().parent / "seed_exp1_baseline.json"
DATASETS = ["flight", "ncvoter", "dbtesma"]
ROW_COUNTS = [1000, 2000, 3000, 4000, 5000]
N_ATTRS = 8
MIN_SPEEDUP = 2.0
#: gate for the compiled backend vs the reference backend (geomean
#: over every kernel x size cell; skipped without a C toolchain)
BACKEND_MIN_SPEEDUP = 2.0
BACKEND_TRIALS = 3
IDENTITY_WORKERS = (0, 2, 4)
IDENTITY_ROWS = 3000


# ----------------------------------------------------------------------
# list-based reference kernels (the seed implementations, kept verbatim
# as the comparison point — do not "optimize" these)
# ----------------------------------------------------------------------
def reference_product(left: StrippedPartition,
                      right: StrippedPartition) -> StrippedPartition:
    probe = left.row_to_class()
    classes: List[List[int]] = []
    for rows in right.classes:
        groups: dict = {}
        for row in rows:
            left_class = probe[row]
            if left_class >= 0:
                groups.setdefault(int(left_class), []).append(row)
        for grouped in groups.values():
            if len(grouped) >= 2:
                classes.append(grouped)
    return StrippedPartition(classes, left.n_rows)


def reference_swap_free(column_a: np.ndarray, column_b: np.ndarray,
                        context: StrippedPartition) -> bool:
    for rows in context.classes:
        pairs = sorted(zip(column_a[rows].tolist(),
                           column_b[rows].tolist()))
        max_b_before = None
        current_a = None
        current_max_b = None
        first = True
        for value_a, value_b in pairs:
            if first or value_a != current_a:
                if current_max_b is not None and (
                        max_b_before is None
                        or current_max_b > max_b_before):
                    max_b_before = current_max_b
                current_a = value_a
                current_max_b = None
                first = False
            if max_b_before is not None and value_b < max_b_before:
                return False
            if current_max_b is None or value_b > current_max_b:
                current_max_b = value_b
    return True


# ----------------------------------------------------------------------
# kernel micro-benchmarks
# ----------------------------------------------------------------------
def _synthetic_columns(n_rows: int, n_distinct: int,
                       seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_distinct, size=n_rows).astype(np.int64)


def bench_kernels(reporter: Reporter) -> List[dict]:
    records = []
    for n_rows, n_distinct in [(1000, 10), (10_000, 30), (50_000, 100)]:
        col_x = _synthetic_columns(n_rows, n_distinct, seed=1)
        col_y = _synthetic_columns(n_rows, n_distinct, seed=2)
        # a swap-free (A, B) pair — B a monotone function of A — so both
        # scans must walk every class in full.  Violated candidates let
        # the scalar scan exit on the first swap; *holding* candidates
        # are the ones discovery validates over and over, and there the
        # full scan is the cost that matters.
        col_a = _synthetic_columns(n_rows, n_rows // 2, seed=3)
        col_b = col_a // 3
        left = StrippedPartition.from_ranks(col_x)
        right = StrippedPartition.from_ranks(col_y)

        t0 = time.perf_counter()
        fast = left.product(right)
        fast_product_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = reference_product(left, right)
        slow_product_s = time.perf_counter() - t0
        assert fast == slow, "product disagrees with reference"

        context = fast
        t0 = time.perf_counter()
        fast_ok = is_compatible_in_classes(col_a, col_b, context)
        fast_swap_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow_ok = reference_swap_free(col_a, col_b, context)
        slow_swap_s = time.perf_counter() - t0
        assert fast_ok == slow_ok, "swap scan disagrees with reference"

        reporter.add(
            n_rows=n_rows,
            product=f"{fast_product_s * 1e3:.2f}ms",
            product_ref=f"{slow_product_s * 1e3:.2f}ms",
            product_x=f"{slow_product_s / fast_product_s:.1f}x",
            swap=f"{fast_swap_s * 1e3:.2f}ms",
            swap_ref=f"{slow_swap_s * 1e3:.2f}ms",
            swap_x=f"{slow_swap_s / fast_swap_s:.1f}x",
        )
        records.append({
            "kernel": "product", "n_rows": n_rows,
            "seconds": fast_product_s,
            "reference_seconds": slow_product_s,
        })
        records.append({
            "kernel": "swap_scan", "n_rows": n_rows,
            "seconds": fast_swap_s,
            "reference_seconds": slow_swap_s,
        })
    return records


# ----------------------------------------------------------------------
# discovery-level before/after gate
# ----------------------------------------------------------------------
def bench_discovery(reporter: Reporter) -> tuple:
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    records = []
    speedups = []
    identical = True
    for name in DATASETS:
        for rows in ROW_COUNTS:
            key = f"{name}:{rows}"
            seed_record = baseline[key]
            relation = dataset(name, rows, N_ATTRS)
            result, seconds = timed(lambda: discover_ods(relation))
            same = (sorted(str(od) for od in result.fds)
                    == seed_record["fds"]
                    and sorted(str(od) for od in result.ocds)
                    == seed_record["ocds"])
            identical &= same
            speedup = seed_record["seconds"] / seconds
            speedups.append(speedup)
            reporter.add(
                dataset=name, rows=rows,
                seed=f"{seed_record['seconds'] * 1e3:.0f}ms",
                now=f"{seconds * 1e3:.0f}ms",
                speedup=f"{speedup:.2f}x",
                identical="yes" if same else "NO",
            )
            records.append({
                "dataset": name,
                "n_rows": rows,
                "n_attrs": N_ATTRS,
                "seconds": seconds,
                "ods_found": result.n_ods,
                "seed_seconds": seed_record["seconds"],
                "speedup": speedup,
            })
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return records, geomean, identical


# ----------------------------------------------------------------------
# compiled backend vs reference backend
# ----------------------------------------------------------------------
def _backend_inputs(n_rows: int, n_distinct: int, seed: int):
    """CSR inputs shared by every kernel: a context partition, a left
    probe, and a swap-free (A, B) column pair (full-scan worst case)."""
    rng = np.random.default_rng(seed)
    context = StrippedPartition.from_ranks(
        rng.integers(0, n_distinct, size=n_rows).astype(np.int64))
    left = StrippedPartition.from_ranks(
        rng.integers(0, n_distinct, size=n_rows).astype(np.int64))
    # swap scans run over product contexts (lattice level >= 2), which
    # fragment into many small classes — mean class ~12 here; coarse
    # contexts route to the reference kernel anyway
    # (thresholds.SWAP_MEAN_CLASS_CROSSOVER)
    swap_context = StrippedPartition.from_ranks(
        rng.integers(0, n_rows // 12, size=n_rows).astype(np.int64))
    # a swap-free (A, B) pair over a rank-like domain (repeated values,
    # as discovery's encoded columns have) — holding candidates force
    # both backends through the full scan
    col_a = rng.integers(0, max(8, n_rows // 50),
                         size=n_rows).astype(np.int64)
    col_b = col_a // 3
    raw = rng.integers(0, n_rows // 3, size=n_rows).astype(np.int64)
    return context, left, swap_context, col_a, col_b, raw


def _time_kernel(call) -> float:
    best = None
    for _ in range(BACKEND_TRIALS):
        t0 = time.perf_counter()
        call()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


def bench_backends(reporter: Reporter) -> tuple:
    """(records, geomean speedup or None when compiled is absent)."""
    if not kernels.compiled_available():
        reporter.add(kernel="(all)", n_rows="-", reference="-",
                     compiled="skipped (no C toolchain)", speedup="-")
        return [], None
    reference = ReferenceBackend()
    compiled = kernels.resolve_backend("compiled")
    records = []
    ratios = []
    for n_rows, n_distinct in [(20_000, 60), (100_000, 300)]:
        context, left, swap_context, col_a, col_b, raw = _backend_inputs(
            n_rows, n_distinct, seed=11)
        probe = left.row_to_class()
        args_by_kernel = {
            "product": (probe, context.rows, context.offsets,
                        context.class_ids(), left.n_classes),
            "swap": (col_a, col_b, swap_context.rows,
                     swap_context.offsets, swap_context.class_ids()),
            "split": (raw, context.rows, context.offsets,
                      context.class_sizes),
            "densify": (raw,),
        }
        methods = {"product": "partition_product", "swap": "swap_flags",
                   "split": "split_mismatch", "densify": "densify"}
        for kernel, args in args_by_kernel.items():
            ref_fn = getattr(reference, methods[kernel])
            com_fn = getattr(compiled, methods[kernel])
            ref_out = ref_fn(*args)
            com_out = com_fn(*args)
            ref_parts = ref_out if isinstance(ref_out, tuple) else (ref_out,)
            com_parts = com_out if isinstance(com_out, tuple) else (com_out,)
            for got, want in zip(com_parts, ref_parts):
                assert np.array_equal(got, want), \
                    f"{kernel}: compiled output differs from reference"
            ref_s = _time_kernel(lambda: ref_fn(*args))
            com_s = _time_kernel(lambda: com_fn(*args))
            speedup = ref_s / com_s
            ratios.append(speedup)
            reporter.add(kernel=kernel, n_rows=n_rows,
                         reference=f"{ref_s * 1e3:.2f}ms",
                         compiled=f"{com_s * 1e3:.2f}ms",
                         speedup=f"{speedup:.2f}x")
            records.append({
                "kernel": kernel, "n_rows": n_rows,
                "reference_seconds": ref_s, "compiled_seconds": com_s,
                "speedup": speedup,
            })
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return records, geomean


# ----------------------------------------------------------------------
# backend x workers identity matrix
# ----------------------------------------------------------------------
def bench_identity_matrix(reporter: Reporter) -> tuple:
    relation = dataset("flight", IDENTITY_ROWS, N_ATTRS)
    backends = ["reference"]
    if kernels.compiled_available():
        backends.append("compiled")
    golden = None
    records = []
    identical = True
    for backend in backends:
        for workers in IDENTITY_WORKERS:
            config = FastODConfig(
                workers=workers, kernel_backend=backend,
                parallel_min_grouped_rows=0 if workers else None)
            result, seconds = timed(
                lambda: FastOD(relation, config).run())
            ods = (sorted(str(od) for od in result.fds),
                   sorted(str(od) for od in result.ocds))
            if golden is None:
                golden = ods
            same = ods == golden
            identical &= same
            reporter.add(backend=backend, workers=workers,
                         wall=f"{seconds * 1e3:.0f}ms",
                         identical="yes" if same else "NO")
            records.append({
                "backend": backend, "workers": workers,
                "dataset": "flight", "n_rows": IDENTITY_ROWS,
                "n_attrs": N_ATTRS, "seconds": seconds,
                "identical": same,
            })
    return records, identical


def main() -> int:
    kernel_reporter = Reporter(
        experiment="partition_kernels",
        title="Vectorized partition kernels vs list-based reference",
        columns=["n_rows", "product", "product_ref", "product_x",
                 "swap", "swap_ref", "swap_x"])
    kernel_records = bench_kernels(kernel_reporter)
    kernel_reporter.finish()

    discovery_reporter = Reporter(
        experiment="partition_discovery",
        title="FastOD on Exp-1 sizes: flat-layout engine vs seed baseline",
        columns=["dataset", "rows", "seed", "now", "speedup", "identical"])
    discovery_records, geomean, identical = bench_discovery(
        discovery_reporter)
    discovery_reporter.finish()

    backend_reporter = Reporter(
        experiment="kernel_backends",
        title="Compiled (C/ctypes) kernel backend vs reference (NumPy)",
        columns=["kernel", "n_rows", "reference", "compiled", "speedup"])
    backend_records, backend_geomean = bench_backends(backend_reporter)
    backend_reporter.finish()

    matrix_reporter = Reporter(
        experiment="backend_identity",
        title="FD/OCD identity across backend x worker-count matrix",
        columns=["backend", "workers", "wall", "identical"])
    matrix_records, matrix_identical = bench_identity_matrix(
        matrix_reporter)
    matrix_reporter.finish()

    write_bench_json("partitions", discovery_records,
                     section="discovery_gate")
    write_bench_json("partitions", kernel_records, section="kernels")
    write_bench_json("partitions", backend_records,
                     section="kernel_backends")
    write_bench_json("partitions", matrix_records,
                     section="backend_identity")
    kernel_ratios = [r["reference_seconds"] / r["seconds"]
                     for r in kernel_records]
    kernel_geomean = math.exp(
        sum(math.log(r) for r in kernel_ratios) / len(kernel_ratios))
    backend_label = ("skipped (no C toolchain)" if backend_geomean is None
                     else f"{backend_geomean:.2f}x")
    print(f"geomean speedup over seed: {geomean:.2f}x (discovery, "
          f"machine-dependent) / {kernel_geomean:.2f}x (kernels, "
          f"in-process); gate: >= {MIN_SPEEDUP}x on either; "
          f"identical results: {identical}")
    print(f"compiled backend vs reference: {backend_label}; gate: >= "
          f"{BACKEND_MIN_SPEEDUP}x geomean when available; "
          f"backend x workers identity: {matrix_identical}")
    if not identical:
        print("FAIL: discovery results differ from the seed baseline")
        return 1
    if geomean < MIN_SPEEDUP and kernel_geomean < MIN_SPEEDUP:
        print("FAIL: aggregate speedup below the gate")
        return 1
    if backend_geomean is not None and backend_geomean < BACKEND_MIN_SPEEDUP:
        print("FAIL: compiled backend below the backend gate")
        return 1
    if not matrix_identical:
        print("FAIL: backend x workers matrix results differ")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
