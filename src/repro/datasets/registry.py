"""A named registry of dataset generators for the CLI and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.employees import employees
from repro.datasets.synthetic import (
    dbtesma_like,
    flight_like,
    hepatitis_like,
    ncvoter_like,
)
from repro.datasets.tpcds import date_dim
from repro.errors import ReproError
from repro.relation.table import Relation

_FAMILIES: Dict[str, Callable[..., Relation]] = {
    "employees": lambda n_rows=6, n_attrs=9, seed=0: employees(),
    "flight": flight_like,
    "ncvoter": ncvoter_like,
    "hepatitis": hepatitis_like,
    "dbtesma": dbtesma_like,
    "date_dim": lambda n_rows=730, n_attrs=8, seed=0: date_dim(n_rows),
}


def dataset_names() -> List[str]:
    """All registered generator names."""
    return sorted(_FAMILIES)


def make_dataset(name: str, n_rows: int = 1000, n_attrs: int = 10,
                 seed: int = 42) -> Relation:
    """Instantiate a registered dataset family.

    Row/attribute counts are best-effort: fixed-shape families
    (``employees``, ``date_dim``) ignore what does not apply.
    """
    try:
        factory = _FAMILIES[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return factory(n_rows=n_rows, n_attrs=n_attrs, seed=seed)
