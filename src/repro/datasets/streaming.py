"""Streaming variants of the synthetic datasets: base + append batches.

The incremental engine's workload is a warehouse loading in batches.
These helpers split any registered dataset family into an initial
snapshot plus a deterministic sequence of append batches, optionally
*drifting* late batches — perturbing cells so that dependencies that
held on the early data stop holding, which is what exercises the
engine's demotion path (appends can only ever invalidate ODs, never
create them).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.registry import make_dataset
from repro.relation.table import Relation


def split_stream(relation: Relation, n_batches: int,
                 base_fraction: float = 0.5
                 ) -> Tuple[Relation, List[Relation]]:
    """Split a relation into a base snapshot plus ``n_batches`` equal
    append batches (the last batch takes any remainder).

    Concatenating base and batches in order reproduces the relation
    row-for-row, so a from-scratch run on the full data is the oracle
    for an incremental run over the stream.
    """
    if n_batches < 1:
        raise ValueError("need at least one batch")
    if not 0.0 < base_fraction <= 1.0:
        raise ValueError("base_fraction must be in (0, 1]")
    n_base = max(1, int(relation.n_rows * base_fraction)) \
        if relation.n_rows else 0
    base = relation.take(n_base)
    remaining = relation.n_rows - n_base
    per_batch = remaining // n_batches if n_batches else 0
    batches: List[Relation] = []
    start = n_base
    for index in range(n_batches):
        stop = relation.n_rows if index == n_batches - 1 \
            else min(start + per_batch, relation.n_rows)
        batches.append(relation.select_rows(range(start, stop)))
        start = stop
    return base, batches


def stream_batches(family: str, n_rows: int = 1000, n_attrs: int = 8,
                   seed: int = 42, n_batches: int = 10,
                   base_fraction: float = 0.5
                   ) -> Tuple[Relation, List[Relation]]:
    """A clean append stream over a registered dataset family."""
    relation = make_dataset(family, n_rows=n_rows, n_attrs=n_attrs,
                            seed=seed)
    return split_stream(relation, n_batches, base_fraction)


def drifting_stream(family: str, n_rows: int = 1000, n_attrs: int = 8,
                    seed: int = 42, n_batches: int = 10,
                    base_fraction: float = 0.5,
                    drift_after: float = 0.5, drift: float = 0.02
                    ) -> Tuple[Relation, List[Relation]]:
    """An append stream whose late batches violate planted structure.

    From batch ``ceil(drift_after * n_batches)`` on, each batch has a
    ``drift`` fraction of its cells (chosen deterministically from
    ``seed``) replaced with random values drawn from the column's
    existing domain — breaking monotone derivations and hash FDs so
    that discovery results actually change along the stream.
    """
    base, batches = stream_batches(family, n_rows, n_attrs, seed,
                                   n_batches, base_fraction)
    rng = np.random.default_rng(seed + 1)
    first_drifting = int(np.ceil(drift_after * n_batches))
    drifted: List[Relation] = []
    for index, batch in enumerate(batches):
        if index < first_drifting or batch.n_rows == 0 or drift <= 0:
            drifted.append(batch)
            continue
        columns = {name: list(batch.column(name)) for name in batch.names}
        n_cells = batch.n_rows * batch.arity
        n_perturbed = max(1, int(n_cells * drift))
        flat = rng.choice(n_cells, size=n_perturbed, replace=False)
        for position in flat:
            row = int(position) // batch.arity
            name = batch.names[int(position) % batch.arity]
            domain = base.column(name)
            columns[name][row] = domain[int(rng.integers(len(domain)))]
        drifted.append(Relation.from_columns(columns))
    return base, drifted
