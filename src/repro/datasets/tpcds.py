"""TPC-DS-shaped dimension and fact tables for the motivating examples.

Query 1 of the paper joins ``web_sales`` with ``date_dim`` and
benefits from the ODs ``d_date_sk ↦ d_date``, ``d_date_sk ↦ d_year``
and ``d_month ↦ d_quarter``.  These generators produce miniature
versions of both tables with exactly those semantics: the surrogate key
is assigned in increasing date order, as in a real warehouse load.
"""

from __future__ import annotations

import datetime
from typing import Optional

import numpy as np

from repro.relation.table import Relation

_FIRST_DAY = datetime.date(2010, 1, 1)


def date_dim(n_days: int = 730, first_sk: int = 2_450_000) -> Relation:
    """A ``date_dim`` slice: one row per day, surrogate keys ascending
    with the calendar."""
    rows = []
    for offset in range(n_days):
        day = _FIRST_DAY + datetime.timedelta(days=offset)
        month_of_year = day.month
        rows.append((
            first_sk + offset,                    # d_date_sk
            int(day.strftime("%Y%m%d")),          # d_date (sortable int)
            day.year,                             # d_year
            (month_of_year - 1) // 3 + 1,         # d_quarter (of year)
            month_of_year,                        # d_month (of year)
            day.isocalendar()[1],                 # d_week (of year)
            day.isoweekday(),                     # d_dow
            day.day,                              # d_dom
        ))
    return Relation.from_rows(
        ["d_date_sk", "d_date", "d_year", "d_quarter", "d_month",
         "d_week", "d_dow", "d_dom"],
        rows)


def web_sales(n_rows: int = 2000, n_days: int = 730,
              first_sk: int = 2_450_000,
              seed: Optional[int] = 5) -> Relation:
    """A ``web_sales`` fact slice referencing :func:`date_dim` keys."""
    rng = np.random.default_rng(seed)
    sold_sk = first_sk + rng.integers(0, n_days, n_rows)
    rows = [
        (int(order), int(sk), int(item), float(price) * int(qty), int(qty))
        for order, sk, item, price, qty in zip(
            np.arange(n_rows),
            sold_sk,
            rng.integers(0, 500, n_rows),
            rng.integers(5, 200, n_rows),
            rng.integers(1, 10, n_rows))
    ]
    return Relation.from_rows(
        ["ws_order_number", "ws_sold_date_sk", "ws_item_sk",
         "ws_sales_price", "ws_quantity"],
        rows)


def date_dim_planted() -> list:
    """Dependencies guaranteed on :func:`date_dim` (validated in tests;
    these are the exact ODs Section 4.1 lists for TPC-DS)."""
    return [
        "{d_date_sk}: [] -> d_date",
        "{}: d_date ~ d_date_sk",
        "{d_date_sk}: [] -> d_year",
        "{}: d_date_sk ~ d_year",
        "{d_month}: [] -> d_quarter",
        "{}: d_month ~ d_quarter",
        "{d_date}: [] -> d_date_sk",
    ]
