"""Datasets: the paper's running example plus synthetic generators."""

from repro.datasets.employees import EMPLOYEE_COLUMNS, employees
from repro.datasets.registry import dataset_names, make_dataset
from repro.datasets.synthetic import (
    dbtesma_like,
    dbtesma_planted,
    flight_like,
    flight_planted,
    hepatitis_like,
    ncvoter_like,
    ncvoter_planted,
)
from repro.datasets.streaming import (
    drifting_stream,
    split_stream,
    stream_batches,
)
from repro.datasets.tpcds import date_dim, date_dim_planted, web_sales

__all__ = [
    "EMPLOYEE_COLUMNS",
    "dataset_names",
    "date_dim",
    "date_dim_planted",
    "dbtesma_like",
    "dbtesma_planted",
    "drifting_stream",
    "employees",
    "flight_like",
    "flight_planted",
    "hepatitis_like",
    "make_dataset",
    "ncvoter_like",
    "ncvoter_planted",
    "split_stream",
    "stream_batches",
    "web_sales",
]
