"""Table 1 of the paper: employee salaries and tax information.

The running example.  Known facts used throughout the paper (and in
our tests):

* ODs that hold: ``[sal] ↦ [tax]``, ``[sal] ↦ [perc]``,
  ``[sal] ↦ [grp,subg]``, ``[yr,sal] ↦ [yr,bin]`` (Example 1).
* Canonical ODs that hold: ``{posit}: [] ↦ bin``, ``{yr}: bin ~ sal``
  (Example 4).
* Canonical ODs that do not: ``{yr}: bin ~ subg``,
  ``{posit}: [] ↦ sal`` (Example 4).
* ``[posit] ↦ [posit,sal]`` has three splits; ``[sal] ~ [subg]`` has a
  swap over t1/t2 (Example 3).
* ``Π*_sal = {{t2, t6}}`` (Example 12).

Note on value ordering: ``subg`` uses roman numerals whose *string*
order ``I < II < III`` is what the paper's examples rely on.
"""

from __future__ import annotations

from repro.relation.table import Relation

#: Column order follows Table 1.
EMPLOYEE_COLUMNS = (
    "ID", "yr", "posit", "bin", "sal", "perc", "tax", "grp", "subg")

_ROWS = [
    # ID  yr  posit     bin  sal    perc  tax   grp  subg
    (10, 16, "secr",    1,   5000,  20,   1000, "A", "III"),   # t1
    (11, 16, "mngr",    2,   8000,  25,   2000, "C", "II"),    # t2
    (12, 16, "direct",  3,  10000,  30,   3000, "D", "I"),     # t3
    (10, 15, "secr",    1,   4500,  20,    900, "A", "III"),   # t4
    (11, 15, "mngr",    2,   6000,  25,   1500, "C", "I"),     # t5
    (12, 15, "direct",  3,   8000,  25,   2000, "C", "II"),    # t6
]


def employees() -> Relation:
    """The exact six-tuple relation of Table 1."""
    return Relation.from_rows(EMPLOYEE_COLUMNS, _ROWS)
