"""Synthetic stand-ins for the paper's evaluation datasets.

The originals (flight and dbtesma from the HPI repository, ncvoter and
hepatitis from UCI) are not available offline, so each generator plants
the *structural* features the paper attributes to its dataset — the
features that drive FASTOD's behaviour:

* ``flight_like``    — a constant ``year`` (the paper's ORDER-misses-it
  example), a strictly increasing surrogate key, date hierarchies
  (month → quarter as both FD and OCD), route-determined distances and
  monotone derived measures.  FD+OCD rich, so pruning bites early.
* ``ncvoter_like``   — wide categorical/person data with many swaps and
  an inversely ordered pair (age vs. birth year — order compatible only
  bidirectionally).  Few ODs; candidate pairs survive, lattice stays
  broad.
* ``hepatitis_like`` — tiny but wide, mostly binary attributes; with
  few tuples, hundreds of FDs appear at deeper levels.
* ``dbtesma_like``   — FD-heavy synthetic data: many columns hash-derived
  from a few roots (FDs without order compatibility), plus a couple of
  monotone derivations (OCDs).

Every generator is deterministic in its ``seed`` and extends to any
requested attribute count by cycling extra-column kinds.  The
``*_planted`` helpers return dependencies guaranteed by construction,
which the test suite validates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.relation.table import Relation

Generator = Callable[..., Relation]


def _extend(columns: Dict[str, np.ndarray], n_attrs: int, n_rows: int,
            rng: np.random.Generator, key: np.ndarray) -> Dict[str, list]:
    """Add generic extra columns until ``n_attrs`` is reached.

    Kinds cycle: random categorical, monotone-in-key, hash-derived FD
    from an existing column, noisy numeric.
    """
    names = list(columns)
    kind = 0
    while len(columns) < n_attrs:
        index = len(columns)
        if kind == 0:
            domain = int(rng.integers(2, 12))
            columns[f"cat{index}"] = rng.integers(0, domain, n_rows)
        elif kind == 1:
            step = int(rng.integers(2, 9))
            columns[f"mono{index}"] = key // step
        elif kind == 2:
            source = columns[names[int(rng.integers(0, len(names)))]]
            prime = int(rng.choice([7, 11, 13, 17, 19]))
            columns[f"drv{index}"] = (source * prime + 3) % 23
        else:
            columns[f"num{index}"] = rng.integers(0, n_rows, n_rows)
        kind = (kind + 1) % 4
    return {name: list(np.asarray(col)) for name, col in columns.items()}


def _finish(columns: Dict[str, np.ndarray], n_attrs: int, n_rows: int,
            rng: np.random.Generator, key: np.ndarray) -> Relation:
    as_lists = _extend(columns, n_attrs, n_rows, rng, key)
    names = list(as_lists)[:n_attrs]
    return Relation.from_columns({name: as_lists[name] for name in names})


# ----------------------------------------------------------------------
# flight
# ----------------------------------------------------------------------
def flight_like(n_rows: int = 1000, n_attrs: int = 10,
                seed: int = 42) -> Relation:
    """US-domestic-flights-shaped data (HPI ``flight``)."""
    rng = np.random.default_rng(seed)
    sk = np.arange(n_rows)
    day_of_year = sk * 365 // max(n_rows, 1)
    month = day_of_year * 12 // 365 + 1
    quarter = (month - 1) // 3 + 1
    origin = rng.integers(0, 20, n_rows)
    dest = rng.integers(0, 20, n_rows)
    route_distance = (origin * 131 + dest * 17) % 2000 + 100
    airtime = route_distance // 8 + 15
    dep_time = rng.integers(0, 2400, n_rows)
    columns: Dict[str, np.ndarray] = {
        "year": np.full(n_rows, 2012),
        "flight_sk": sk,
        "month": month,
        "quarter": quarter,
        "carrier": rng.integers(0, 8, n_rows),
        "origin": origin,
        "dest": dest,
        "distance": route_distance,
        "airtime": airtime,
        "dep_time": dep_time,
    }
    return _finish(columns, n_attrs, n_rows, rng, sk)


def flight_planted(n_attrs: int = 10) -> List[str]:
    """Dependencies guaranteed on ``flight_like`` output (first 10
    attributes)."""
    deps = ["{}: [] -> year"]
    if n_attrs >= 4:
        deps += [
            "{}: month ~ quarter",
            "{month}: [] -> quarter",
            "{}: flight_sk ~ month",
            "{}: flight_sk ~ quarter",
        ]
    if n_attrs >= 9:
        deps += [
            "{}: airtime ~ distance",
            "{distance}: [] -> airtime",
            "{dest,origin}: [] -> distance",
        ]
    return deps


# ----------------------------------------------------------------------
# ncvoter
# ----------------------------------------------------------------------
def ncvoter_like(n_rows: int = 1000, n_attrs: int = 10,
                 seed: int = 7) -> Relation:
    """Voter-registration-shaped data (UCI ``ncvoter``)."""
    rng = np.random.default_rng(seed)
    voter_id = np.arange(n_rows) * 3 + 100000
    county_id = rng.integers(0, 30, n_rows)
    # County names are shuffled so id -> name is an FD but NOT order
    # compatible (a common real-data pattern: surrogate ids vs names).
    name_permutation = rng.permutation(30)
    county_name = np.array(
        [f"county_{name_permutation[c]:02d}" for c in county_id])
    zip_code = 27000 + county_id * 13 + rng.integers(0, 3, n_rows)
    age = rng.integers(18, 100, n_rows)
    birth_year = 2016 - age  # inversely ordered: only bidirectionally OC
    columns: Dict[str, np.ndarray] = {
        "voter_id": voter_id,
        "last_name": rng.integers(0, 200, n_rows),
        "first_name": rng.integers(0, 100, n_rows),
        "county_id": county_id,
        "county_name": county_name,
        "zip": zip_code,
        "age": age,
        "birth_year": birth_year,
        "gender": rng.integers(0, 2, n_rows),
        "party": rng.integers(0, 5, n_rows),
    }
    return _finish(columns, n_attrs, n_rows, rng, np.arange(n_rows))


def ncvoter_planted(n_attrs: int = 10) -> List[str]:
    deps = []
    if n_attrs >= 5:
        deps.append("{county_id}: [] -> county_name")
        deps.append("{county_name}: [] -> county_id")
    if n_attrs >= 8:
        deps.append("{age}: [] -> birth_year")
        deps.append("{birth_year}: [] -> age")
    return deps


# ----------------------------------------------------------------------
# hepatitis
# ----------------------------------------------------------------------
def hepatitis_like(n_rows: int = 155, n_attrs: int = 20,
                   seed: int = 3) -> Relation:
    """Tiny-but-wide clinical data (UCI ``hepatitis``): mostly binary
    columns; with so few tuples, many FDs hold by accident — the regime
    where the paper finds 700+ FDs."""
    rng = np.random.default_rng(seed)
    age_bin = rng.integers(1, 8, n_rows)
    columns: Dict[str, np.ndarray] = {
        "age_bin": age_bin,
        "sex": rng.integers(0, 2, n_rows),
    }
    for i in range(2, max(n_attrs, 2)):
        domain = 2 if i % 3 else 3
        columns[f"sym{i}"] = rng.integers(0, domain, n_rows)
    as_lists = {name: list(np.asarray(col)) for name, col in columns.items()}
    names = list(as_lists)[:n_attrs]
    return Relation.from_columns({name: as_lists[name] for name in names})


# ----------------------------------------------------------------------
# dbtesma
# ----------------------------------------------------------------------
def dbtesma_like(n_rows: int = 1000, n_attrs: int = 10,
                 seed: int = 11) -> Relation:
    """FD-heavy synthetic data (the HPI ``dbtesma`` generator): most
    columns are hash-functions of a few roots, yielding FDs galore and
    almost no order compatibility."""
    rng = np.random.default_rng(seed)
    pk = np.arange(n_rows)
    root_a = rng.integers(0, 8, n_rows)
    root_b = rng.integers(0, 5, n_rows)
    columns: Dict[str, np.ndarray] = {
        "pk": pk,
        "root_a": root_a,
        "root_b": root_b,
        "hash_ab": (root_a * 31 + root_b * 7) % 19,
        "hash_a": (root_a * 13 + 5) % 11,
        "bucket": pk * 10 // max(n_rows, 1),   # monotone: one OCD source
    }
    index = len(columns)
    while len(columns) < n_attrs:
        source = root_a if index % 2 else root_b
        prime = int(rng.choice([3, 5, 7, 11, 13]))
        columns[f"h{index}"] = (source * prime + index) % 17
        index += 1
    as_lists = {name: list(np.asarray(col)) for name, col in columns.items()}
    names = list(as_lists)[:n_attrs]
    return Relation.from_columns({name: as_lists[name] for name in names})


def dbtesma_planted(n_attrs: int = 10) -> List[str]:
    deps = []
    if n_attrs >= 4:
        deps.append("{root_a,root_b}: [] -> hash_ab")
    if n_attrs >= 5:
        deps.append("{root_a}: [] -> hash_a")
    if n_attrs >= 6:
        deps.append("{}: bucket ~ pk")
        deps.append("{pk}: [] -> bucket")
    return deps
