"""Conditional ODs — dependencies that hold on portions of a relation.

The last of the paper's Section 7 future-work items: like conditional
FDs, a conditional OD pairs a canonical OD with a *condition* (a
conjunction of attribute = constant selections); the OD must hold on
the selected fragment even though it may fail globally.

Discovery strategy (mirroring CFD discovery practice):

1. choose condition attributes with small active domains,
2. for every condition (up to a conjunct bound) with enough support,
   run FASTOD on the fragment,
3. keep fragment-minimal ODs that do **not** already hold globally
   (those are redundant — a conditional OD is interesting precisely
   because the condition is necessary), and
4. merge conditions: when an OD holds under *every* value of a
   condition attribute it is promoted (the attribute joins the OD's
   context instead — exactly what the canonical context expresses), so
   such pseudo-conditionals are filtered too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.fastod import FastOD, FastODConfig
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.validation import CanonicalValidator
import repro.parallel.pool as pool_module
from repro.engine.budget import DeadlineBudget
from repro.engine.telemetry import build_timings
from repro.parallel.pool import WorkerPool, resolve_workers
from repro.relation.table import Relation

CanonicalOD = Union[CanonicalFD, CanonicalOCD]

#: One condition: a conjunction of (attribute, value) equalities.
Condition = Tuple[Tuple[str, object], ...]


def condition_text(condition: Condition) -> str:
    return " AND ".join(f"{attr}={value!r}" for attr, value in condition)


@dataclass(frozen=True)
class ConditionalOD:
    """A canonical OD valid on the fragment selected by ``condition``."""

    condition: Condition
    od: CanonicalOD
    support: float          # fragment size / relation size

    def __str__(self) -> str:
        return (f"[{condition_text(self.condition)}] {self.od}  "
                f"(support={self.support:.2f})")


@dataclass
class ConditionalDiscoveryResult:
    """All conditional ODs found under the configured bounds."""

    ods: List[ConditionalOD] = field(default_factory=list)
    n_fragments_examined: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    #: per-phase executor telemetry of the global validator (fragment
    #: runs carry their own in their DiscoveryResults)
    executor_stats: Optional[Dict[str, object]] = None
    #: per-phase wall clock distilled from ``executor_stats`` (the
    #: ``timings`` currency)
    timings: Optional[Dict[str, object]] = None

    def for_condition(self, condition: Condition) -> List[ConditionalOD]:
        return [c for c in self.ods if c.condition == condition]

    def conditions(self) -> List[Condition]:
        seen: Dict[Condition, None] = {}
        for item in self.ods:
            seen.setdefault(item.condition, None)
        return list(seen)


def _condition_attributes(relation: Relation,
                          max_domain: int) -> List[str]:
    return [
        name for name in relation.names
        if 2 <= len(set(relation.column(name))) <= max_domain
    ]


def _fragments(relation: Relation, attributes: Sequence[str],
               max_conjuncts: int, min_support: float):
    """Yield (condition, row indices) with enough support."""
    n_rows = max(relation.n_rows, 1)
    for width in range(1, max_conjuncts + 1):
        for attrs in combinations(attributes, width):
            groups: Dict[tuple, List[int]] = {}
            columns = [relation.column(a) for a in attrs]
            for row in range(relation.n_rows):
                key = tuple(col[row] for col in columns)
                groups.setdefault(key, []).append(row)
            for key, rows in groups.items():
                if len(rows) / n_rows >= min_support and len(rows) >= 2:
                    condition = tuple(zip(attrs, key))
                    yield condition, rows


def discover_conditional_ods(relation: Relation, *,
                             min_support: float = 0.1,
                             max_conjuncts: int = 1,
                             max_condition_domain: int = 12,
                             max_level: Optional[int] = 3,
                             workers: Optional[int] = None,
                             timeout_seconds: Optional[float] = None
                             ) -> ConditionalDiscoveryResult:
    """Find canonical ODs that hold conditionally but not globally.

    Per-fragment discovery and the global redundancy filter both route
    through the unified engine, so ``workers`` shards big fragments'
    level work and the global validator's scans over one worker pool
    policy, and ``timeout_seconds`` is one
    :class:`~repro.engine.DeadlineBudget` shared across fragments
    (each fragment run receives the remaining budget; a timed-out
    sweep returns the conditionals confirmed so far flagged
    ``timed_out``).

    Parameters
    ----------
    min_support:
        Minimum fragment fraction for a condition to be examined.
    max_conjuncts:
        Maximum number of equality conjuncts per condition.
    max_condition_domain:
        Only attributes with at most this many distinct values are
        used to build conditions (mirrors CFD practice).
    max_level:
        Lattice cap for the per-fragment FASTOD runs; conditional ODs
        with huge contexts are rarely interesting and fragments are
        many.
    workers:
        Worker-pool size for fragment discovery and global validation
        (``None`` defers to ``REPRO_WORKERS``; 1 = serial).
    timeout_seconds:
        Best-effort wall-clock budget for the whole sweep.
    """
    started = time.perf_counter()
    budget = DeadlineBudget(timeout_seconds)
    result = ConditionalDiscoveryResult()
    global_validator = CanonicalValidator(relation.encode(),
                                          workers=workers)
    attributes = _condition_attributes(relation, max_condition_domain)
    n_workers = resolve_workers(workers)
    # one worker pool for every fragment run, rebased per fragment
    # (a fresh fork+teardown per qualifying fragment would dominate a
    # many-fragment sweep); workers start lazily, so small fragments
    # that never cross the dispatch thresholds cost nothing
    shared_pool: Optional[WorkerPool] = None
    try:
        for condition, rows in _fragments(relation, attributes,
                                          max_conjuncts, min_support):
            if budget.hit():
                result.timed_out = True
                break
            result.n_fragments_examined += 1
            condition_attrs = {attr for attr, _ in condition}
            fragment = relation.select_rows(rows)
            pool = None
            # grouped rows never exceed fragment rows, so fragments
            # below the dispatch threshold can never engage the pool —
            # don't pay a per-fragment column publish for them
            if (n_workers >= 2 and len(rows)
                    >= pool_module.PARALLEL_MIN_GROUPED_ROWS):
                encoded_fragment = fragment.encode()
                if shared_pool is not None and shared_pool.closed:
                    shared_pool = None    # crashed earlier: rebuild
                if shared_pool is None:
                    shared_pool = WorkerPool(encoded_fragment,
                                             n_workers)
                else:
                    shared_pool.rebase(encoded_fragment)
                pool = shared_pool
            fragment_ods = FastOD(
                fragment, FastODConfig(
                    max_level=max_level, workers=workers,
                    timeout_seconds=budget.remaining()),
                pool=pool).run()
            if fragment_ods.timed_out:
                result.timed_out = True
                break
            support = len(rows) / max(relation.n_rows, 1)
            for od in fragment_ods.all_ods:
                if _mentions(od, condition_attrs):
                    # On the fragment a condition attribute is
                    # constant, so ODs about it are artifacts of the
                    # selection.
                    continue
                if global_validator.holds(od):
                    continue    # not conditional: already true globally
                result.ods.append(ConditionalOD(condition, od, support))
    finally:
        result.executor_stats = global_validator.executor_stats()
        result.timings = build_timings(result.executor_stats)
        global_validator.close()
        if shared_pool is not None:
            shared_pool.shutdown()
    result.ods.sort(key=lambda c: (-c.support, str(c)))
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _mentions(od: CanonicalOD, attributes: set) -> bool:
    if isinstance(od, CanonicalFD):
        involved = set(od.context) | {od.attribute}
    else:
        involved = set(od.context) | {od.left, od.right}
    return bool(involved & attributes)


def verify_conditional(relation: Relation,
                       conditional: ConditionalOD) -> bool:
    """Re-check one conditional OD: it must hold on the fragment and
    (to be genuinely conditional) fail on the full relation."""
    rows = [
        row for row in range(relation.n_rows)
        if all(relation.column(attr)[row] == value
               for attr, value in conditional.condition)
    ]
    fragment = relation.select_rows(rows)
    holds_on_fragment = CanonicalValidator(
        fragment.encode()).holds(conditional.od)
    holds_globally = CanonicalValidator(
        relation.encode()).holds(conditional.od)
    return holds_on_fragment and not holds_globally
