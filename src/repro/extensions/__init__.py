"""Extensions beyond the paper's core (its Section 7 future work):
bidirectional ODs and conditional ODs."""

from repro.extensions.bidirectional import (
    BidirectionalDiscoveryResult,
    BidirectionalOCD,
    BidirectionalOD,
    DirectedAttr,
    Direction,
    bidirectional_ocd_holds,
    bidirectional_od_holds,
    directed,
    discover_bidirectional_ocds,
)
from repro.extensions.pointwise import (
    PointwiseDiscoveryResult,
    PointwiseOD,
    discover_pointwise_ods,
    find_dominance_violation,
    pointwise_od_holds,
)
from repro.extensions.conditional import (
    ConditionalDiscoveryResult,
    ConditionalOD,
    condition_text,
    discover_conditional_ods,
    verify_conditional,
)

__all__ = [
    "BidirectionalDiscoveryResult",
    "BidirectionalOCD",
    "BidirectionalOD",
    "ConditionalDiscoveryResult",
    "ConditionalOD",
    "DirectedAttr",
    "PointwiseDiscoveryResult",
    "PointwiseOD",
    "Direction",
    "bidirectional_ocd_holds",
    "bidirectional_od_holds",
    "condition_text",
    "directed",
    "discover_bidirectional_ocds",
    "discover_conditional_ods",
    "discover_pointwise_ods",
    "find_dominance_violation",
    "pointwise_od_holds",
    "verify_conditional",
]
