"""Pointwise ODs — the *other* order-dependency semantics (§2.1).

The paper contrasts its lexicographic ODs with the older *pointwise*
ODs of Ginsburg & Hull: ``X ↪ Y`` holds when dominance transfers —

    ∀ s, t:  (∀ A ∈ X: s[A] <= t[A])  implies  (∀ B ∈ Y: s[B] <= t[B]).

Attribute *sets*, not lists; no tie-breaking.  The paper argues
lexicographic ODs fit SQL better; implementing pointwise ODs lets the
library demonstrate the differences concretely (see the tests: the two
notions coincide on single attributes and diverge beyond).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.validation import dominance_holds_ranks
from repro.engine.budget import DeadlineBudget
from repro.engine.executors import make_executor
from repro.engine.telemetry import build_timings
from repro.relation.schema import mask_of_indices
from repro.relation.table import Relation


@dataclass(frozen=True)
class PointwiseOD:
    """``X ↪ Y`` under <=-dominance."""

    lhs: FrozenSet[str]
    rhs: FrozenSet[str]

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs))
        right = ",".join(sorted(self.rhs))
        return f"{{{left}}} pointwise-> {{{right}}}"


def _rank_matrix(relation: Relation, names: Iterable[str]) -> np.ndarray:
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    columns = [encoded.column(index[name]) for name in names]
    if not columns:
        return np.zeros((relation.n_rows, 0), dtype=np.int64)
    return np.stack(columns, axis=1)


def pointwise_od_holds(relation: Relation,
                       od: PointwiseOD) -> bool:
    """Validity by the dominance definition.

    A multi-attribute RHS is a conjunction of single-target dominance
    requirements (the ∀-over-Y distributes), so this delegates per
    target to the shared rank kernel
    :func:`repro.core.validation.dominance_holds_ranks` — the same
    code path the discovery sweep's ``"pointwise"`` executor tasks
    run, so the public validator and discovery can never drift.
    """
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    lhs_mask = mask_of_indices(index[name] for name in od.lhs)
    return all(
        dominance_holds_ranks(encoded.ranks, lhs_mask, index[target])
        for target in sorted(od.rhs))


def find_dominance_violation(relation: Relation, od: PointwiseOD
                             ) -> Optional[Tuple[int, int]]:
    """A witness pair ``(s, t)`` with ``s`` dominated by ``t`` on X but
    not on Y, or ``None``."""
    left = _rank_matrix(relation, sorted(od.lhs))
    right = _rank_matrix(relation, sorted(od.rhs))
    n = relation.n_rows
    for s in range(n):
        for t in range(n):
            lhs_ok = bool((left[s] <= left[t]).all()) if left.size \
                else True
            rhs_ok = bool((right[s] <= right[t]).all()) if right.size \
                else True
            if lhs_ok and not rhs_ok:
                return (s, t)
    return None


@dataclass
class PointwiseDiscoveryResult:
    """Minimal pointwise ODs under the configured size bounds."""

    ods: List[PointwiseOD] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    #: per-phase executor telemetry (the engine's uniform currency)
    executor_stats: Optional[dict] = None
    #: per-phase wall clock distilled from ``executor_stats`` (the
    #: ``timings`` currency)
    timings: Optional[dict] = None


def discover_pointwise_ods(relation: Relation, *,
                           max_lhs: int = 2,
                           workers: Optional[int] = None,
                           timeout_seconds: Optional[float] = None
                           ) -> PointwiseDiscoveryResult:
    """Pointwise ODs with single-attribute consequents.

    ``{X} ↪ {B}`` for every ``X`` up to ``max_lhs`` attributes and
    every ``B ∉ X``; minimal in the *reverse* sense to lexicographic
    contexts — a *smaller* LHS makes a *stronger* pointwise OD (fewer
    dominance premises... in fact more pairs are X-dominated), so a
    result is pruned when some subset LHS already yields the OD.

    The sweep is level-wise over LHS sizes through the unified engine:
    subset pruning only ever consults strictly smaller LHSs, so one
    level's candidates are independent and batch into a single
    executor validation (the ``"pointwise"`` scan mode runs the
    dominance kernel on the shared rank columns — serial by default,
    pooled with ``workers``).  ``timeout_seconds`` bounds the run; a
    partial result comes back flagged ``timed_out``.
    """
    started = time.perf_counter()
    budget = DeadlineBudget(timeout_seconds)
    names = relation.names
    index = {name: i for i, name in enumerate(names)}
    encoded = relation.encode()
    executor = make_executor(encoded, workers=workers)
    result = PointwiseDiscoveryResult()
    found: List[PointwiseOD] = []
    try:
        for size in range(1, min(max_lhs, len(names)) + 1):
            if budget.hit():
                result.timed_out = True
                break
            candidates: List[Tuple[Tuple[str, ...], str]] = []
            for lhs in combinations(names, size):
                for target in names:
                    if target in lhs:
                        continue
                    if any(prior.rhs == frozenset({target})
                           and prior.lhs < frozenset(lhs)
                           for prior in found):
                        continue
                    candidates.append((lhs, target))
            tasks = [
                (key, 0, "pointwise",
                 mask_of_indices(index[name] for name in lhs),
                 index[target])
                for key, (lhs, target) in enumerate(candidates)
            ]
            verdicts, cut = executor.run_validations(
                tasks, budget, phase="pointwise")
            for key, (lhs, target) in enumerate(candidates):
                if verdicts.get(key):
                    found.append(PointwiseOD(frozenset(lhs),
                                             frozenset({target})))
            if cut:
                result.timed_out = True
                break
    finally:
        result.executor_stats = executor.telemetry.snapshot()
        result.timings = build_timings(result.executor_stats)
        executor.close()
    result.ods = found
    result.elapsed_seconds = time.perf_counter() - started
    return result
