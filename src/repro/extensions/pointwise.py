"""Pointwise ODs — the *other* order-dependency semantics (§2.1).

The paper contrasts its lexicographic ODs with the older *pointwise*
ODs of Ginsburg & Hull: ``X ↪ Y`` holds when dominance transfers —

    ∀ s, t:  (∀ A ∈ X: s[A] <= t[A])  implies  (∀ B ∈ Y: s[B] <= t[B]).

Attribute *sets*, not lists; no tie-breaking.  The paper argues
lexicographic ODs fit SQL better; implementing pointwise ODs lets the
library demonstrate the differences concretely (see the tests: the two
notions coincide on single attributes and diverge beyond).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.relation.table import Relation


@dataclass(frozen=True)
class PointwiseOD:
    """``X ↪ Y`` under <=-dominance."""

    lhs: FrozenSet[str]
    rhs: FrozenSet[str]

    def __str__(self) -> str:
        left = ",".join(sorted(self.lhs))
        right = ",".join(sorted(self.rhs))
        return f"{{{left}}} pointwise-> {{{right}}}"


def _rank_matrix(relation: Relation, names: Iterable[str]) -> np.ndarray:
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    columns = [encoded.column(index[name]) for name in names]
    if not columns:
        return np.zeros((relation.n_rows, 0), dtype=np.int64)
    return np.stack(columns, axis=1)


def pointwise_od_holds(relation: Relation,
                       od: PointwiseOD) -> bool:
    """Validity by the dominance definition.

    Quadratic in tuples with an early exit; a sorted single-attribute
    fast path covers the common ``|X| = 1`` case in O(n log n).
    An empty LHS dominates everything both ways, so the RHS must be
    constant columns.
    """
    lhs = sorted(od.lhs)
    rhs = sorted(od.rhs)
    left = _rank_matrix(relation, lhs)
    right = _rank_matrix(relation, rhs)
    n = relation.n_rows
    if n <= 1 or not rhs:
        return True
    if not lhs:
        return all((right[:, j] == right[0, j]).all()
                   for j in range(right.shape[1]))
    if len(lhs) == 1:
        return _single_lhs_holds(left[:, 0], right)
    for s in range(n):
        dominated = (left >= left[s]).all(axis=1)
        dominated_rows = np.flatnonzero(dominated)
        if ((right[dominated_rows] < right[s]).any()):
            return False
    return True


def _single_lhs_holds(left: np.ndarray, right: np.ndarray) -> bool:
    """|X| = 1: sort by X; every RHS column must be non-decreasing
    across strictly increasing X and constant within X ties."""
    order = np.argsort(left, kind="stable")
    sorted_left = left[order]
    sorted_right = right[order]
    n = len(order)
    start = 0
    previous_max = None
    for stop in range(1, n + 1):
        if stop == n or sorted_left[stop] != sorted_left[start]:
            block = sorted_right[start:stop]
            if (block != block[0]).any():
                return False          # ties on X must agree on all of Y
            if previous_max is not None and (block[0] < previous_max).any():
                return False
            previous_max = block[0]
            start = stop
    return True


def find_dominance_violation(relation: Relation, od: PointwiseOD
                             ) -> Optional[Tuple[int, int]]:
    """A witness pair ``(s, t)`` with ``s`` dominated by ``t`` on X but
    not on Y, or ``None``."""
    left = _rank_matrix(relation, sorted(od.lhs))
    right = _rank_matrix(relation, sorted(od.rhs))
    n = relation.n_rows
    for s in range(n):
        for t in range(n):
            lhs_ok = bool((left[s] <= left[t]).all()) if left.size \
                else True
            rhs_ok = bool((right[s] <= right[t]).all()) if right.size \
                else True
            if lhs_ok and not rhs_ok:
                return (s, t)
    return None


@dataclass
class PointwiseDiscoveryResult:
    """Minimal pointwise ODs under the configured size bounds."""

    ods: List[PointwiseOD] = field(default_factory=list)
    elapsed_seconds: float = 0.0


def discover_pointwise_ods(relation: Relation, *,
                           max_lhs: int = 2
                           ) -> PointwiseDiscoveryResult:
    """Pointwise ODs with single-attribute consequents.

    ``{X} ↪ {B}`` for every ``X`` up to ``max_lhs`` attributes and
    every ``B ∉ X``; minimal in the *reverse* sense to lexicographic
    contexts — a *smaller* LHS makes a *stronger* pointwise OD (fewer
    dominance premises... in fact more pairs are X-dominated), so a
    result is pruned when some subset LHS already yields the OD.
    """
    started = time.perf_counter()
    names = relation.names
    result = PointwiseDiscoveryResult()
    found: List[PointwiseOD] = []
    for size in range(1, min(max_lhs, len(names)) + 1):
        for lhs in combinations(names, size):
            for target in names:
                if target in lhs:
                    continue
                if any(prior.rhs == frozenset({target})
                       and prior.lhs < frozenset(lhs)
                       for prior in found):
                    continue
                od = PointwiseOD(frozenset(lhs), frozenset({target}))
                if pointwise_od_holds(relation, od):
                    found.append(od)
    result.ods = found
    result.elapsed_seconds = time.perf_counter() - started
    return result
