"""Bidirectional ODs — mixed ascending/descending orders.

Section 7 of the paper names extending FASTOD to bidirectional ODs
(introduced in [25]) as future work.  This module supplies the
building blocks:

* directed order specifications (``salary DESC, tax ASC``),
* a validator for bidirectional list ODs (Definition 2 generalized),
* contextual bidirectional order compatibility ``X: A↑ ~ B↓`` and a
  minimal-discovery sweep over bounded context sizes, run level-wise
  through the unified engine (:mod:`repro.engine`): each level's
  constancy and polarity checks are independent, so they batch into
  executor validations — serial by default, sharded over a
  shared-memory worker pool with ``workers`` (the ``"swap_desc"``
  scan mode), and bounded by a shared
  :class:`~repro.engine.DeadlineBudget` via ``timeout_seconds``.

Under rank encoding, descending order is ascending order of the
negated ranks, so every unidirectional algorithm piece is reused.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from itertools import combinations
from typing import List, Optional, Sequence, Tuple, Union


from repro.core.validation import is_compatible_in_classes
from repro.engine.budget import DeadlineBudget
from repro.engine.executors import make_executor
from repro.engine.telemetry import build_timings
from repro.errors import DependencyError
from repro.partitions.cache import PartitionCache
from repro.relation.schema import bit_count, iter_bits
from repro.relation.table import Relation


class Direction(Enum):
    """Sort direction of one attribute in a directed specification."""

    ASC = "asc"
    DESC = "desc"

    def __str__(self) -> str:
        return self.value

    @property
    def flipped(self) -> "Direction":
        return Direction.DESC if self is Direction.ASC else Direction.ASC


@dataclass(frozen=True)
class DirectedAttr:
    """One attribute with a direction, e.g. ``salary DESC``."""

    name: str
    direction: Direction = Direction.ASC

    def __str__(self) -> str:
        return f"{self.name} {self.direction.value}"


def directed(*items: Union[str, Tuple[str, str], DirectedAttr]
             ) -> Tuple[DirectedAttr, ...]:
    """Build a directed spec from strings ("a", "b desc") or tuples.

    >>> [str(d) for d in directed("a", "b desc", ("c", "asc"))]
    ['a asc', 'b desc', 'c asc']
    """
    out: List[DirectedAttr] = []
    for item in items:
        if isinstance(item, DirectedAttr):
            out.append(item)
        elif isinstance(item, tuple):
            name, dir_text = item
            out.append(DirectedAttr(name, Direction(dir_text.lower())))
        elif isinstance(item, str):
            parts = item.split()
            if len(parts) == 1:
                out.append(DirectedAttr(parts[0]))
            elif len(parts) == 2:
                out.append(DirectedAttr(parts[0],
                                        Direction(parts[1].lower())))
            else:
                raise DependencyError(f"bad directed attribute: {item!r}")
        else:
            raise DependencyError(f"bad directed attribute: {item!r}")
    return tuple(out)


@dataclass(frozen=True)
class BidirectionalOD:
    """``X ↦ Y`` where both sides carry per-attribute directions."""

    lhs: Tuple[DirectedAttr, ...]
    rhs: Tuple[DirectedAttr, ...]

    def __str__(self) -> str:
        left = ",".join(str(d) for d in self.lhs)
        right = ",".join(str(d) for d in self.rhs)
        return f"[{left}] -> [{right}]"


def _directed_keys(relation, spec: Sequence[DirectedAttr]) -> list:
    index = {name: i for i, name in enumerate(relation.names)}
    columns = []
    for attr in spec:
        ranks = relation.column(index[attr.name])
        columns.append(ranks if attr.direction is Direction.ASC else -ranks)
    return [tuple(int(col[row]) for col in columns)
            for row in range(relation.n_rows)]


def bidirectional_od_holds(relation: Relation, od: BidirectionalOD) -> bool:
    """Definition 2 with directed lexicographic orders."""
    encoded = relation.encode()
    keys_x = _directed_keys(encoded, od.lhs)
    keys_y = _directed_keys(encoded, od.rhs)
    order = sorted(range(encoded.n_rows), key=lambda row: keys_x[row])
    previous_x = None
    group_y = None
    max_y = None
    for row in order:
        key_x, key_y = keys_x[row], keys_y[row]
        if key_x != previous_x:
            previous_x, group_y = key_x, key_y
            if max_y is not None and key_y < max_y:
                return False
        elif key_y != group_y:
            return False
        if max_y is None or key_y > max_y:
            max_y = key_y
    return True


@dataclass(frozen=True)
class BidirectionalOCD:
    """Contextual directed order compatibility ``X: A dir_a ~ B dir_b``.

    Stored with the lexicographically smaller attribute first; the two
    polarity classes are ``same`` (asc/asc ≡ desc/desc) and
    ``opposite`` (asc/desc ≡ desc/asc).
    """

    context: frozenset
    left: str
    right: str
    same_direction: bool

    def __str__(self) -> str:
        mark = "~" if self.same_direction else "~desc"
        context = "{" + ",".join(sorted(self.context)) + "}"
        return f"{context}: {self.left} {mark} {self.right}"


def bidirectional_ocd_holds(relation: Relation, context: Sequence[str],
                            left: str, right: str,
                            same_direction: bool = True) -> bool:
    """No directed swap between two attributes within context classes."""
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    mask = 0
    for name in context:
        mask |= 1 << index[name]
    partition = PartitionCache(encoded).get(mask)
    column_a = encoded.column(index[left])
    column_b = encoded.column(index[right])
    if not same_direction:
        column_b = -column_b
    return is_compatible_in_classes(column_a, column_b, partition)


@dataclass
class BidirectionalDiscoveryResult:
    """Minimal directed OCDs up to a context-size bound."""

    ocds: List[BidirectionalOCD] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    #: per-phase executor telemetry (the engine's uniform currency)
    executor_stats: Optional[dict] = None
    #: per-phase wall clock distilled from ``executor_stats`` (the
    #: ``timings`` currency)
    timings: Optional[dict] = None

    @property
    def opposite_only(self) -> List[BidirectionalOCD]:
        """Pairs compatible only with opposite directions — invisible
        to ascending-only FASTOD (e.g. age vs. birth year)."""
        same = {(o.context, o.left, o.right)
                for o in self.ocds if o.same_direction}
        return [o for o in self.ocds
                if not o.same_direction
                and (o.context, o.left, o.right) not in same]


def discover_bidirectional_ocds(relation: Relation,
                                max_context: int = 1, *,
                                workers: Optional[int] = None,
                                timeout_seconds: Optional[float] = None
                                ) -> BidirectionalDiscoveryResult:
    """Minimal directed OCDs with contexts up to ``max_context``.

    Both polarities are checked per pair; minimality mirrors the
    unidirectional rules (subset contexts and Propagate through
    constancy), applied per polarity.

    The sweep is level-wise over context sizes.  Within one level no
    context can cover another (covers are strict subsets, hence
    strictly smaller), so a level's constancy checks batch into one
    executor validation and its polarity checks into another —
    identical output at any worker count.  A ``timeout_seconds``
    budget returns the OCDs confirmed so far with ``timed_out=True``.
    """
    started = time.perf_counter()
    budget = DeadlineBudget(timeout_seconds)
    encoded = relation.encode()
    executor = make_executor(encoded, workers=workers)
    names = encoded.names
    arity = encoded.arity
    result = BidirectionalDiscoveryResult()
    emitted = {}       # (a, b, same) -> contexts already emitted
    constant_at = {}   # attribute -> context masks where constant

    def covered(store, key, context_mask) -> bool:
        return any(prior & context_mask == prior
                   for prior in store.get(key, []))

    try:
        for level in range(min(max_context, arity) + 1):
            masks = [mask for mask in range(1 << arity)
                     if bit_count(mask) == level]
            if budget.hit():
                result.timed_out = True
                break

            # -- constancy: which outside attributes are constant here
            const_tasks = []
            for mask in masks:
                for attribute in range(arity):
                    if mask & (1 << attribute):
                        continue
                    if covered(constant_at, attribute, mask):
                        continue
                    const_tasks.append(((mask, attribute), mask,
                                        "const", attribute, 0))
            verdicts, cut = executor.run_validations(
                const_tasks, budget, phase="bidirectional-const")
            for key, mask, _mode, attribute, _b in const_tasks:
                if verdicts.get(key):
                    constant_at.setdefault(attribute, []).append(mask)
            if cut:
                result.timed_out = True
                break

            # -- polarity checks for the non-constant outside pairs
            pair_tasks = []
            for mask in masks:
                outside = [a for a in range(arity)
                           if not mask & (1 << a)]
                for a, b in combinations(outside, 2):
                    if covered(constant_at, a, mask) \
                            or covered(constant_at, b, mask):
                        continue
                    for same in (True, False):
                        if covered(emitted, (a, b, same), mask):
                            continue
                        pair_tasks.append((
                            (mask, a, b, same), mask,
                            "swap" if same else "swap_desc", a, b))
            verdicts, cut = executor.run_validations(
                pair_tasks, budget, phase="bidirectional-pairs")
            for key, mask, _mode, a, b in pair_tasks:
                if not verdicts.get(key):
                    continue
                _mask, _a, _b, same = key
                result.ocds.append(BidirectionalOCD(
                    frozenset(names[i] for i in iter_bits(mask)),
                    names[a], names[b], same))
                emitted.setdefault((a, b, same), []).append(mask)
            if cut:
                result.timed_out = True
                break
    finally:
        result.executor_stats = executor.telemetry.snapshot()
        result.timings = build_timings(result.executor_stats)
        executor.close()
    result.elapsed_seconds = time.perf_counter() - started
    return result
