"""Ranking discovered ODs by how much of the data they constrain.

A complete minimal set can still hold hundreds of dependencies; humans
validating them (the workflow the paper's introduction argues for) want
the load-bearing ones first.  Two principled signals:

* **context size** — small contexts are more general (an empty-context
  OD constrains every tuple pair) and, per the paper's Exp-7
  discussion, more useful for query optimization;
* **coverage** — the fraction of tuples that live in non-singleton
  context classes, i.e. the tuples about which the OD says anything at
  all.  An OD whose context is nearly a key is vacuously minimal but
  constrains almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult
from repro.partitions.cache import PartitionCache
from repro.relation.table import Relation

CanonicalOD = Union[CanonicalFD, CanonicalOCD]


@dataclass(frozen=True)
class RankedOD:
    """One OD with its ranking signals."""

    od: CanonicalOD
    coverage: float       # fraction of tuples the context groups
    context_size: int

    @property
    def score(self) -> float:
        """Higher is better: coverage discounted by context size."""
        return self.coverage / (1 + self.context_size)

    def __str__(self) -> str:
        return (f"{self.od}  [coverage={self.coverage:.2f}, "
                f"|context|={self.context_size}]")


def rank_ods(result: DiscoveryResult,
             relation: Relation) -> List[RankedOD]:
    """Rank a discovery result's ODs, best first.

    Ties break deterministically on the canonical sort key so output
    is stable across runs.
    """
    encoded = relation.encode()
    cache = PartitionCache(encoded)
    index = {name: i for i, name in enumerate(encoded.names)}
    n_rows = max(encoded.n_rows, 1)

    def coverage(od: CanonicalOD) -> float:
        mask = 0
        for name in od.context:
            mask |= 1 << index[name]
        return cache.get(mask).n_grouped_rows / n_rows

    ranked = [
        RankedOD(od, coverage(od), len(od.context))
        for od in result.all_ods
    ]
    ranked.sort(key=lambda r: (-r.score, r.od.sort_key()))
    return ranked


def top_ods(result: DiscoveryResult, relation: Relation,
            limit: int = 10) -> List[RankedOD]:
    """The ``limit`` highest-ranked ODs."""
    return rank_ods(result, relation)[:limit]
