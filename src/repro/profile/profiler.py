"""A one-call data profiler combining the library's analyses.

``profile_relation(rel)`` runs key discovery, FASTOD, optional
approximate discovery, and ranking, and renders a human-readable
report — the "hand the analyst a summary" entry point that downstream
users of a dependency profiler actually want.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.fastod import FastOD, FastODConfig
from repro.core.results import DiscoveryResult
from repro.profile.keys import KeyDiscoveryResult, discover_keys
from repro.profile.ranking import RankedOD, rank_ods
from repro.relation.fingerprint import fingerprint as relation_fingerprint
from repro.relation.table import Relation
from repro.violations.approximate import (
    ApproximateDiscoveryResult,
    approximate_discovery,
)


@dataclass
class DataProfile:
    """Everything the profiler learned about one relation."""

    relation_names: tuple
    n_rows: int
    keys: KeyDiscoveryResult
    ods: DiscoveryResult
    ranked: List[RankedOD] = field(default_factory=list)
    approximate: Optional[ApproximateDiscoveryResult] = None
    elapsed_seconds: float = 0.0
    #: content digest of the profiled relation — the key the service
    #: catalog/result store use (:func:`repro.relation.fingerprint`)
    fingerprint: str = ""

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    @property
    def constants(self) -> List[str]:
        return [fd.attribute for fd in self.ods.constants]

    @property
    def n_dependencies(self) -> int:
        return self.ods.n_ods

    def render_text(self, top: int = 10) -> str:
        """A compact plain-text report."""
        lines = [
            f"Profile of {len(self.relation_names)} attributes x "
            f"{self.n_rows} rows "
            f"({self.elapsed_seconds * 1000:.0f} ms total)",
            "",
            f"Keys ({self.keys.n_keys}):",
        ]
        lines.extend(f"  {key}" for key in self.keys.rendered()[:top])
        lines.append("")
        lines.append(f"Constant attributes: "
                     f"{', '.join(self.constants) or '(none)'}")
        lines.append("")
        lines.append(
            f"Order dependencies: {self.ods.paper_counts()} minimal "
            f"(FDs + order compatibilities); top by coverage:")
        lines.extend(f"  {ranked}" for ranked in self.ranked[:top])
        if self.approximate is not None:
            lines.append("")
            lines.append(
                f"Approximate ODs (g3 <= {self.approximate.max_error}): "
                f"{len(self.approximate.ods)}")
            exact = {str(od) for od in self.ods.all_ods}
            nearly = [a for a in self.approximate.ods
                      if str(a.od) not in exact]
            lines.extend(f"  {a}" for a in nearly[:top])
        return "\n".join(lines)

    def to_dict(self, top: Optional[int] = None) -> dict:
        """A JSON-ready rendering (``repro-od profile --json``).

        ``top`` truncates the keys/ranked sections like the text
        renderings do; ``None`` keeps everything.
        """
        payload: dict = {
            "fingerprint": self.fingerprint,
            "attributes": list(self.relation_names),
            "n_rows": self.n_rows,
            "elapsed_seconds": self.elapsed_seconds,
            "keys": self.keys.rendered()[:top],
            "constants": list(self.constants),
            "ods": self.ods.to_dict(),
            "ranked": [
                {"od": str(r.od), "coverage": r.coverage,
                 "context_size": r.context_size}
                for r in self.ranked[:top]
            ],
        }
        if self.approximate is not None:
            payload["approximate"] = {
                "max_error": self.approximate.max_error,
                "ods": [str(a.od) for a in self.approximate.ods],
            }
        return payload

    def render_markdown(self, top: int = 10) -> str:
        """The same report with markdown headers and tables."""
        lines = [
            f"# Data profile ({len(self.relation_names)} attributes, "
            f"{self.n_rows} rows)",
            "",
            "## Keys",
            "",
        ]
        lines.extend(f"- `{key}`" for key in self.keys.rendered()[:top])
        lines += ["", "## Constants", ""]
        lines.extend(f"- `{name}`" for name in self.constants)
        lines += [
            "",
            f"## Order dependencies — {self.ods.paper_counts()} minimal",
            "",
            "| dependency | coverage | context |",
            "|---|---|---|",
        ]
        lines.extend(
            f"| `{r.od}` | {r.coverage:.2f} | {r.context_size} |"
            for r in self.ranked[:top])
        return "\n".join(lines)


def profile_relation(relation: Relation, *,
                     max_level: Optional[int] = None,
                     approximate_error: Optional[float] = None,
                     approximate_max_context: int = 1,
                     timeout_seconds: Optional[float] = None
                     ) -> DataProfile:
    """Run the full profiling pipeline on one relation.

    ``approximate_error`` enables the (more expensive) approximate
    sweep; leave ``None`` to skip it.
    """
    started = time.perf_counter()
    keys = discover_keys(relation)
    ods = FastOD(relation, FastODConfig(
        max_level=max_level, timeout_seconds=timeout_seconds)).run()
    ranked = rank_ods(ods, relation)
    approximate = None
    if approximate_error is not None:
        approximate = approximate_discovery(
            relation, max_error=approximate_error,
            max_context=approximate_max_context)
    profile = DataProfile(
        relation_names=relation.names,
        n_rows=relation.n_rows,
        keys=keys,
        ods=ods,
        ranked=ranked,
        approximate=approximate,
        fingerprint=relation_fingerprint(relation),
    )
    profile.elapsed_seconds = time.perf_counter() - started
    return profile
