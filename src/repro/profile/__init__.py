"""Profiling layer: keys, ranking, and the one-call profiler."""

from repro.profile.keys import KeyDiscoveryResult, discover_keys
from repro.profile.profiler import DataProfile, profile_relation
from repro.profile.ranking import RankedOD, rank_ods, top_ods

__all__ = [
    "DataProfile",
    "KeyDiscoveryResult",
    "RankedOD",
    "discover_keys",
    "profile_relation",
    "rank_ods",
    "top_ods",
]
