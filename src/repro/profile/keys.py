"""Minimal unique column combination (key) discovery.

Keys drive FASTOD's key-pruning rules (Lemmas 12-13): a superkey
context validates every constancy OD for free and renders contextual
OCDs non-minimal.  This module surfaces the same machinery as a
first-class profiling result: the minimal sets ``X`` with no two tuples
agreeing on ``X`` (``Π*_X`` empty).

Level-wise Apriori search over the same set-containment lattice and
partition products as FASTOD.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.lattice import next_level_masks, parents_for_partition
from repro.partitions.partition import StrippedPartition
from repro.relation.schema import iter_bits
from repro.relation.table import Relation


@dataclass
class KeyDiscoveryResult:
    """Minimal keys of one relation instance."""

    attribute_names: tuple
    n_rows: int
    keys: List[FrozenSet[str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def n_keys(self) -> int:
        return len(self.keys)

    def rendered(self) -> List[str]:
        return ["(" + ",".join(sorted(key)) + ")" for key in sorted(
            self.keys, key=lambda k: (len(k), sorted(k)))]

    def is_superkey(self, attributes) -> bool:
        """Does the attribute set contain some discovered key?"""
        probe = frozenset(attributes)
        return any(key <= probe for key in self.keys)


def discover_keys(relation: Relation,
                  max_size: Optional[int] = None) -> KeyDiscoveryResult:
    """All minimal keys with at most ``max_size`` attributes.

    A set is expanded only while it is not yet a key (supersets of keys
    are never minimal), which is exactly TANE-style key pruning in
    isolation.

    An empty or single-tuple relation makes the empty set the (only)
    key; it is reported as an empty frozenset.
    """
    started = time.perf_counter()
    encoded = relation.encode()
    names = encoded.names
    result = KeyDiscoveryResult(names, encoded.n_rows)
    if StrippedPartition.single_class(encoded.n_rows).is_superkey():
        result.keys.append(frozenset())
        result.elapsed_seconds = time.perf_counter() - started
        return result
    limit = encoded.arity if max_size is None else min(
        max_size, encoded.arity)
    current: Dict[int, StrippedPartition] = {
        1 << a: StrippedPartition.for_attribute(encoded, a)
        for a in range(encoded.arity)
    }
    level = 1
    while current and level <= limit:
        survivors: Dict[int, StrippedPartition] = {}
        for mask, partition in current.items():
            if partition.is_superkey():
                result.keys.append(frozenset(
                    names[i] for i in iter_bits(mask)))
            else:
                survivors[mask] = partition
        next_nodes: Dict[int, StrippedPartition] = {}
        for mask in next_level_masks(survivors.keys()):
            left, right = parents_for_partition(mask)
            next_nodes[mask] = survivors[left].product(survivors[right])
        current = next_nodes
        level += 1
    result.elapsed_seconds = time.perf_counter() - started
    return result
