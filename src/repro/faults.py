"""Deterministic, seedable fault injection for chaos testing.

A long-lived service earns trust by *proving* its behavior under
failure, not by hoping crashes are rare.  This module is the single
registry of injection points the parallel, server, and storage layers
consult: each *site* names one failure the production code path must
survive, and a :class:`FaultPlan` decides — deterministically, from a
seed — whether a given visit to a site fires.

Sites
-----

``pool.worker.kill``
    SIGKILL one worker process right after a dispatch is submitted
    (coordinator side) — the classic mid-task crash.
``pool.queue.delay``
    Sleep before enqueuing a task chunk, simulating a slow/contended
    queue.
``pool.queue.drop``
    Silently drop one task chunk off the queue.  Only observable when
    the pool runs with a ``stall_timeout`` — the dispatch then fails
    with a typed :class:`~repro.parallel.pool.WorkerStallError`
    instead of hanging forever.
``worker.task``
    Raise inside a worker's task handler (surfaces as
    :class:`~repro.parallel.pool.WorkerTaskError` on the
    coordinator).
``shm.attach``
    Fail a worker's shared-memory segment attach (torn/unlinked
    segment simulation).
``store.write``
    Raise ``OSError`` inside the result store's disk write (full
    disk, yanked volume).
``jobs.start.delay``
    Sleep on the scheduler's runner thread right after a job flips to
    ``running`` — widens the window crash-recovery tests kill into.
``budget.cancel``
    Revoke a job's deadline budget right after it starts (the
    cancel-races-crash scenario).
``deltalog.append``
    Raise :class:`~repro.deltalog.DeltaLogError` inside the delta
    WAL's append, *before* anything is written — the delta job fails
    and the log stays at its previous LSN (nothing half-applied
    replays).
``deltalog.replay``
    Raise during boot-time delta-log replay — the service skips that
    dataset (an honest 404) rather than serving stale pre-delta
    state, and counts a ``delta_errors`` in ``/health``.

Activation
----------

Explicitly — ``faults.install(FaultPlan(seed=7, rates={...}))``, or
the :func:`injected` context manager in tests — or via the
``REPRO_FAULT_PLAN`` environment variable holding the plan as JSON
(``{"seed": 7, "rates": {"pool.worker.kill": 0.5}, "limits": ...,
"delays": ...}``), which is how subprocess tests arm a real
``repro-od serve``.  With no plan installed every hook is a single
``None`` check — production runs pay nothing.

Determinism: each site draws from its own ``random.Random`` seeded
with ``f"{seed}:{site}"``, so adding a new site (or reordering calls
across sites) never perturbs another site's firing sequence.  Worker
processes forked after :func:`install` inherit the plan; their
per-site counters are process-local, so ``limits`` bound firings *per
process*.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs import metrics

_FIRED = metrics.counter(
    "repro_faults_fired_total",
    "Armed fault-plan injections that actually fired, by site",
    ("site",))

#: Every site the library consults, wired where the docstring says.
SITES = (
    "pool.worker.kill",
    "pool.queue.delay",
    "pool.queue.drop",
    "worker.task",
    "shm.attach",
    "store.write",
    "jobs.start.delay",
    "budget.cancel",
    "deltalog.append",
    "deltalog.replay",
)

#: Default sleep (seconds) for delay-shaped sites without an explicit
#: per-site entry in ``FaultPlan.delays``.
DEFAULT_DELAY_SECONDS = 0.05


class FaultInjected(ReproError):
    """An error raised by an armed injection site (never in
    production: no plan, no raise)."""


class FaultPlan:
    """A deterministic schedule of which site visits fail.

    ``rates`` maps site -> probability per visit; ``limits`` maps
    site -> max firings (per process); ``delays`` maps site -> sleep
    seconds for the delay-shaped sites.  Unknown site names are
    rejected so a typo cannot silently disable a fault.
    """

    def __init__(self, seed: int = 0,
                 rates: Optional[Dict[str, float]] = None,
                 limits: Optional[Dict[str, int]] = None,
                 delays: Optional[Dict[str, float]] = None):
        for mapping in (rates, limits, delays):
            unknown = set(mapping or ()) - set(SITES)
            if unknown:
                raise ValueError(
                    f"unknown fault site(s) {sorted(unknown)}; "
                    f"known: {list(SITES)}")
        self.seed = int(seed)
        self.rates = dict(rates or {})
        self.limits = dict(limits or {})
        self.delays = dict(delays or {})
        self.fired: Dict[str, int] = {}
        #: chronological (site, visit_index) log of firings — what a
        #: chaos test prints when an assertion fails
        self.log: List[str] = []
        self._visits: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(seed=payload.get("seed", 0),
                   rates=payload.get("rates"),
                   limits=payload.get("limits"),
                   delays=payload.get("delays"))

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(f"{self.seed}:{site}")
            self._rngs[site] = rng
        return rng

    def fire(self, site: str) -> bool:
        """One visit to ``site``: True when the fault fires."""
        rate = self.rates.get(site, 0.0)
        with self._lock:
            self._visits[site] = self._visits.get(site, 0) + 1
            if rate <= 0.0:
                return False
            limit = self.limits.get(site)
            if limit is not None and self.fired.get(site, 0) >= limit:
                return False
            hit = self._rng(site).random() < rate
            if hit:
                self.fired[site] = self.fired.get(site, 0) + 1
                self.log.append(
                    f"{site}#{self._visits[site]}")
                _FIRED.inc(site=site)
            return hit

    def delay_seconds(self, site: str) -> float:
        return self.delays.get(site, DEFAULT_DELAY_SECONDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(seed={self.seed}, rates={self.rates}, "
                f"fired={self.fired})")


# ----------------------------------------------------------------------
# the process-wide active plan
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (workers forked later inherit it)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = plan
    _ENV_CHECKED = True


def clear() -> None:
    """Disarm fault injection (and stop re-reading the env var)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = True


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, reading ``REPRO_FAULT_PLAN`` once if nothing
    was installed explicitly."""
    global _PLAN, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        raw = os.environ.get("REPRO_FAULT_PLAN", "").strip()
        if raw:
            _PLAN = FaultPlan.from_json(raw)
    return _PLAN


class injected:
    """``with faults.injected(plan): ...`` — install for one block."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: Optional[FaultPlan] = None
        self._previous_checked = False

    def __enter__(self) -> FaultPlan:
        global _PLAN, _ENV_CHECKED
        self._previous = _PLAN
        self._previous_checked = _ENV_CHECKED
        install(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> None:
        global _PLAN, _ENV_CHECKED
        _PLAN = self._previous
        _ENV_CHECKED = self._previous_checked


# ----------------------------------------------------------------------
# the hooks production code calls
# ----------------------------------------------------------------------
def fire(site: str) -> bool:
    """True when an armed plan fires ``site`` on this visit.  A bare
    ``None`` check when no plan is armed."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.fire(site)


def maybe_raise(site: str, message: str,
                exc_type: type = FaultInjected) -> None:
    """Raise ``exc_type(message)`` when ``site`` fires."""
    if fire(site):
        raise exc_type(f"[fault:{site}] {message}")


def maybe_sleep(site: str) -> None:
    """Sleep the plan's per-site delay when ``site`` fires."""
    plan = active_plan()
    if plan is not None and plan.fire(site):
        time.sleep(plan.delay_seconds(site))


__all__ = [
    "DEFAULT_DELAY_SECONDS",
    "FaultInjected",
    "FaultPlan",
    "SITES",
    "active_plan",
    "clear",
    "fire",
    "injected",
    "install",
    "maybe_raise",
    "maybe_sleep",
]
