"""repro — a reproduction of "Effective and Complete Discovery of Order
Dependencies via Set-based Axiomatization" (FASTOD, VLDB 2017).

Quickstart::

    from repro import Relation, discover_ods

    rel = Relation.from_rows(["a", "b"], [(1, 10), (2, 20), (3, 30)])
    result = discover_ods(rel)
    for od in result.all_ods:
        print(od)
"""

from repro.core import (
    CanonicalFD,
    CanonicalOCD,
    CanonicalValidator,
    DiscoveryResult,
    FastOD,
    FastODConfig,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    discover_ods,
    list_od_holds,
    map_list_od,
    order_compatible,
    parse,
)
from repro.engine import (
    DeadlineBudget,
    ExecutorTelemetry,
    LatticePlanner,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.errors import (
    DataError,
    DependencyError,
    DiscoveryBudgetExceeded,
    ParseError,
    ReproError,
    SchemaError,
)
from repro.incremental import BatchReport, IncrementalFastOD
from repro.parallel import WorkerPool, resolve_workers
from repro.profile import discover_keys, profile_relation
from repro.relation import (
    Relation,
    Schema,
    fingerprint,
    read_csv,
    read_csv_text,
)

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "CanonicalFD",
    "CanonicalOCD",
    "CanonicalValidator",
    "DataError",
    "DeadlineBudget",
    "DependencyError",
    "DiscoveryBudgetExceeded",
    "DiscoveryResult",
    "ExecutorTelemetry",
    "FastOD",
    "FastODConfig",
    "LatticePlanner",
    "PoolExecutor",
    "SerialExecutor",
    "IncrementalFastOD",
    "ListOD",
    "OrderCompatibility",
    "OrderSpec",
    "ParseError",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "WorkerPool",
    "discover_keys",
    "fingerprint",
    "discover_ods",
    "list_od_holds",
    "make_executor",
    "profile_relation",
    "map_list_od",
    "order_compatible",
    "parse",
    "read_csv",
    "read_csv_text",
    "resolve_workers",
]
