"""Command-line interface: ``repro-od``.

Subcommands::

    repro-od discover data.csv [--max-level N] [--no-minimal] [--json]
    repro-od append base.csv batch1.csv delta2.json [--verify] [--json]
    repro-od watch data.csv [--interval S] [--idle-exit N] [--json]
    repro-od serve [--port P] [--workers N] [--store-dir DIR]
    repro-od check data.csv "{month}: [] -> quarter"
    repro-od violations data.csv "[salary] -> [tax]" [--witnesses N]
    repro-od generate flight out.csv --rows 1000 --cols 10 --seed 42
    repro-od datasets
    repro-od stats [--url URL] [--json]
    repro-od trace job-3 [--url URL] [--json]
    repro-od profile-job job-3 [--url URL]

``discover``, ``check``, and ``violations`` accept ``--profile``: a
sampling profiler runs alongside the command and prints collapsed
flamegraph lines (``pkg:func;pkg:func count``) to stderr on exit —
stdout stays the machine-parseable result either way.

Run ``repro-od <subcommand> --help`` for details.

Long-running commands (``watch``, ``serve``) exit cleanly on SIGINT
*and* SIGTERM: worker pools, shared-memory segments, and the job
journal are torn down in the command's ``finally`` path and the
process exits with the conventional code — 130 (128+SIGINT) or 143
(128+SIGTERM) — never leaving orphan workers or leaked segments
behind.  SIGTERM is what process supervisors (systemd, Docker,
Kubernetes) send first, so a supervised ``repro-od serve`` drains
gracefully on shutdown instead of being killed dirty.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from typing import List, Optional

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets.registry import dataset_names, make_dataset
from repro.errors import DataError, ReproError
from repro.partitions.cache import PartitionCache
from repro.relation.csvio import read_csv, write_csv
from repro.violations.detect import ViolationDetector


def _add_profile_option(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--profile", action="store_true",
        help="sample this command's stacks while it runs and print "
             "collapsed flamegraph lines to stderr on exit (pipe into "
             "flamegraph.pl or paste into speedscope)")


def _add_kernels_option(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--kernels", default=None,
        choices=("auto", "reference", "compiled"),
        help="partition-kernel backend: 'reference' (pure NumPy), "
             "'compiled' (C via ctypes), or 'auto' (compiled when a "
             "C compiler is available, else reference; the default, "
             "also settable via $REPRO_KERNELS); backends produce "
             "byte-identical results")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-od",
        description="Order dependency discovery (FASTOD, VLDB 2017)")
    sub = parser.add_subparsers(dest="command", required=True)

    discover = sub.add_parser(
        "discover", help="discover the minimal canonical ODs of a CSV")
    discover.add_argument("csv", help="input CSV file (header row expected)")
    discover.add_argument("--max-level", type=int, default=None,
                          help="cap the lattice level (context size + 1)")
    discover.add_argument("--limit", type=int, default=None,
                          help="read at most this many rows")
    discover.add_argument("--timeout", type=float, default=None,
                          help="soft wall-clock budget in seconds")
    discover.add_argument("--no-minimal", action="store_true",
                          help="disable pruning; enumerate every valid OD")
    discover.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON")
    discover.add_argument("--cache-max-entries", type=int, default=None,
                          metavar="N",
                          help="bound the partition cache to N composite "
                               "partitions (LRU); default keeps all")
    discover.add_argument("--workers", type=int, default=None, metavar="N",
                          help="shard level-wise products and validation "
                               "scans over N worker processes (default: "
                               "$REPRO_WORKERS or 1 = serial; results "
                               "are identical either way)")
    _add_kernels_option(discover)
    _add_profile_option(discover)

    append = sub.add_parser(
        "append",
        help="discover on a base CSV, then fold in delta batches "
             "incrementally")
    append.add_argument("csv", help="base CSV (the initial snapshot)")
    append.add_argument("batches", nargs="+",
                        help="batches applied in order: a .csv appends "
                             "its rows; a .json holds a delta spec "
                             "('ops' [[+1|-1, row], ...] and/or "
                             "'inserts'/'deletes'/'updates' lists)")
    append.add_argument("--max-level", type=int, default=None)
    append.add_argument("--limit", type=int, default=None,
                        help="read at most this many base rows")
    append.add_argument("--verify", action="store_true",
                        help="assert each batch's result against a "
                             "from-scratch FASTOD run")
    append.add_argument("--workers", type=int, default=None, metavar="N",
                        help="shard big append-path validation scans "
                             "over N worker processes (default: "
                             "$REPRO_WORKERS or 1 = serial)")
    append.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    _add_kernels_option(append)

    watch = sub.add_parser(
        "watch",
        help="poll a CSV for appended rows and keep its ODs fresh")
    watch.add_argument("csv")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="seconds between polls (default 1.0)")
    watch.add_argument("--max-batches", type=int, default=None,
                       help="stop after this many non-empty batches")
    watch.add_argument("--idle-exit", type=int, default=None,
                       help="stop after this many consecutive empty polls")
    watch.add_argument("--max-level", type=int, default=None)
    watch.add_argument("--json", action="store_true",
                       help="emit one JSON object per line (NDJSON)")

    serve = sub.add_parser(
        "serve",
        help="run the OD profiling service (HTTP API over the "
             "catalog/store/job scheduler)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port and "
                            "prints it; default 8765)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="size of the ONE shared worker pool every "
                            "job runs on (default: $REPRO_WORKERS or "
                            "1 = serial)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="persist discovery results here (served "
                            "across restarts); default: memory only")
    serve.add_argument("--catalog-bytes", type=int, default=None,
                       metavar="N",
                       help="LRU byte budget for resident encoded "
                            "relations (default: unbounded)")
    serve.add_argument("--cache-max-entries", type=int, default=64,
                       metavar="N",
                       help="per-dataset partition cache bound "
                            "(default 64)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default wall-clock budget in seconds for "
                            "discover jobs (the budget-consulting "
                            "kind; validate/violations/append run to "
                            "completion)")
    serve.add_argument("--journal-dir", default=None, metavar="DIR",
                       help="durable job journal: registrations and "
                            "job transitions are fsync'd here and "
                            "replayed on restart (datasets "
                            "re-registered, never-started jobs "
                            "re-queued, interrupted jobs marked "
                            "crashed); default: no journal")
    _add_kernels_option(serve)

    check = sub.add_parser(
        "check", help="check whether one dependency holds")
    check.add_argument("csv")
    check.add_argument("dependency",
                       help='e.g. "{month}: [] -> quarter" or "[a] -> [b]"')
    check.add_argument("--limit", type=int, default=None)
    check.add_argument("--cache-max-entries", type=int, default=None)
    check.add_argument("--workers", type=int, default=None, metavar="N",
                       help="shard big validation scans by context class "
                            "over N worker processes")
    _add_kernels_option(check)
    _add_profile_option(check)

    violations = sub.add_parser(
        "violations", help="report violating tuple pairs for a dependency")
    violations.add_argument("csv")
    violations.add_argument("dependency")
    violations.add_argument("--witnesses", type=int, default=5,
                            help="max witness pairs to print")
    violations.add_argument("--limit", type=int, default=None)
    violations.add_argument("--cache-max-entries", type=int, default=None)
    violations.add_argument("--workers", type=int, default=None,
                            metavar="N",
                            help="shard big validation scans by context "
                                 "class over N worker processes")
    _add_kernels_option(violations)
    _add_profile_option(violations)

    generate = sub.add_parser(
        "generate", help="write a synthetic dataset to CSV")
    generate.add_argument("family", choices=dataset_names())
    generate.add_argument("out", help="output CSV path")
    generate.add_argument("--rows", type=int, default=1000)
    generate.add_argument("--cols", type=int, default=10)
    generate.add_argument("--seed", type=int, default=42)

    profile = sub.add_parser(
        "profile", help="full profile: keys, ODs, ranking")
    profile.add_argument("csv")
    profile.add_argument("--limit", type=int, default=None)
    profile.add_argument("--max-level", type=int, default=None)
    profile.add_argument("--approx", type=float, default=None,
                         help="also find approximate ODs with this "
                              "g3 threshold")
    profile.add_argument("--markdown", action="store_true",
                         help="render the report as markdown")
    profile.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON (includes "
                              "the relation's content fingerprint, "
                              "the service catalog/result-store key)")
    profile.add_argument("--top", type=int, default=10,
                         help="entries per report section")

    keys = sub.add_parser("keys", help="discover minimal keys")
    keys.add_argument("csv")
    keys.add_argument("--limit", type=int, default=None)
    keys.add_argument("--max-size", type=int, default=None)

    explain = sub.add_parser(
        "explain",
        help="derive a dependency from the discovered minimal set")
    explain.add_argument("csv")
    explain.add_argument("dependency",
                         help='canonical form, e.g. "{a,b}: [] -> c"')
    explain.add_argument("--limit", type=int, default=None)

    sub.add_parser("datasets", help="list synthetic dataset families")

    stats = sub.add_parser(
        "stats",
        help="fetch and render a running server's /stats snapshot")
    stats.add_argument("--url", default="http://127.0.0.1:8765",
                       help="server base URL (default "
                            "http://127.0.0.1:8765)")
    stats.add_argument("--json", action="store_true",
                       help="dump the raw /stats JSON")

    trace = sub.add_parser(
        "trace",
        help="render one service job's span timeline (flame-style)")
    trace.add_argument("job", help="job id, e.g. job-3")
    trace.add_argument("--url", default="http://127.0.0.1:8765",
                       help="server base URL (default "
                            "http://127.0.0.1:8765)")
    trace.add_argument("--json", action="store_true",
                       help="dump the raw span export")

    profile_job = sub.add_parser(
        "profile-job",
        help="fetch one service job's collapsed flamegraph "
             "(GET /jobs/{id}/profile)")
    profile_job.add_argument("job", help="job id, e.g. job-3")
    profile_job.add_argument("--url", default="http://127.0.0.1:8765",
                             help="server base URL (default "
                                  "http://127.0.0.1:8765)")
    return parser


class _CommandProfiler:
    """The ``--profile`` flag: sample the command's stacks while it
    runs and print collapsed flamegraph lines to stderr on exit
    (stdout stays the command's machine-parseable output)."""

    def __init__(self, enabled: bool):
        self._enabled = enabled
        self._profiler = None

    def __enter__(self) -> "_CommandProfiler":
        if self._enabled:
            from repro.obs.profiler import SamplingProfiler

            self._profiler = SamplingProfiler()
            self._profiler.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._profiler is None:
            return
        self._profiler.stop()
        folded = self._profiler.render()
        print("# collapsed stacks (samples):", file=sys.stderr)
        print(folded if folded else "(no samples collected)",
              file=sys.stderr)


def _cmd_discover(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv, limit=args.limit)
    config = FastODConfig(
        minimality_pruning=not args.no_minimal,
        level_pruning=not args.no_minimal,
        max_level=args.max_level,
        timeout_seconds=args.timeout,
        workers=args.workers,
        kernel_backend=args.kernels,
    )
    # wire a cache only when its stats (--json) or its bound were asked
    # for: an unbounded cache would retain every lattice partition for
    # the whole run, where plain discovery keeps two levels
    cache = None
    if args.json or args.cache_max_entries is not None:
        cache = PartitionCache(relation.encode(),
                               max_entries=args.cache_max_entries)
    with _CommandProfiler(args.profile):
        result = FastOD(relation, config, cache=cache).run()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(result.summary())
    print()
    for od in result.all_ods:
        print(od)
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    from repro.deltalog import DeltaBatch
    from repro.incremental import IncrementalFastOD

    base = read_csv(args.csv, limit=args.limit)
    config = FastODConfig(max_level=args.max_level,
                          workers=args.workers,
                          kernel_backend=args.kernels)
    started = time.perf_counter()
    engine = IncrementalFastOD(base, config,
                               verify_with_oracle=args.verify)
    initial_seconds = time.perf_counter() - started
    try:
        reports = []
        for path in args.batches:
            if path.endswith(".json"):
                with open(path, encoding="utf-8") as handle:
                    spec = json.load(handle)
                if not isinstance(spec, dict):
                    raise DataError(
                        f"{path}: a delta spec must be a JSON object")
                delta = DeltaBatch.from_request(spec, base.arity)
                reports.append(engine.apply_delta(delta))
            else:
                reports.append(engine.append(read_csv(path)))
    finally:
        engine.close()
    if args.json:
        print(json.dumps({
            "initial": {"n_rows": base.n_rows,
                        "seconds": initial_seconds},
            "batches": [report.to_dict() for report in reports],
            "final": engine.result.to_dict(),
        }, indent=2))
        return 0
    print(f"initial: {base.n_rows} rows, "
          f"{initial_seconds * 1000:.1f} ms")
    for report in reports:
        print(report)
    print()
    print(engine.result.summary())
    print()
    for od in engine.result.all_ods:
        print(od)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.incremental import IncrementalFastOD

    def emit(payload: dict, text: str) -> None:
        if args.json:
            print(json.dumps(payload), flush=True)
        else:
            print(text, flush=True)

    relation = read_csv(args.csv)
    config = FastODConfig(max_level=args.max_level)
    engine = IncrementalFastOD(relation, config)
    seen = relation.n_rows
    emit({"event": "initial", "n_rows": seen,
          "result": engine.result.to_dict()},
         f"watching {args.csv}: {seen} rows, "
         f"ODs {engine.result.paper_counts()}")
    batches = 0
    idle = 0
    try:
        while True:
            if (args.max_batches is not None
                    and batches >= args.max_batches):
                break
            if args.idle_exit is not None and idle >= args.idle_exit:
                break
            time.sleep(args.interval)
            current = read_csv(args.csv)
            if current.n_rows < seen:
                # a rewrite/rotation, not an append: rows we already
                # folded in are gone, so the maintained state no longer
                # describes this file — bail out rather than splice
                # mismatched data
                raise DataError(
                    f"{args.csv}: shrank from {seen} to "
                    f"{current.n_rows} rows while watching (rotated or "
                    f"rewritten?)")
            if current.n_rows == seen:
                idle += 1
                continue
            if current.names != engine.relation.names:
                raise DataError(
                    f"{args.csv}: header changed while watching")
            fresh = current.select_rows(range(seen, current.n_rows))
            report = engine.append(fresh)
            seen = current.n_rows
            batches += 1
            idle = 0
            emit({"event": "batch", **report.to_dict()}, str(report))
    finally:
        engine.close()
    emit({"event": "done", "n_rows": seen, "batches": batches,
          "result": engine.result.to_dict()},
         f"done: {seen} rows after {batches} batch(es), "
         f"ODs {engine.result.paper_counts()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ODService

    service = ODService(
        host=args.host, port=args.port, workers=args.workers,
        store_dir=args.store_dir,
        max_resident_bytes=args.catalog_bytes,
        max_cached_partitions=args.cache_max_entries,
        default_timeout=args.timeout,
        journal_dir=args.journal_dir)
    # the bound port is printed (flushed) before serving so wrappers
    # spawning `--port 0` can scrape the ephemeral port
    print(f"repro-od serve: listening on {service.url}", flush=True)
    if args.journal_dir is not None:
        recovered = service.recovered
        print(f"repro-od serve: journal replayed — "
              f"{recovered['datasets']} dataset(s) re-registered, "
              f"{recovered['requeued']} job(s) re-queued, "
              f"{recovered['crashed']} marked crashed", flush=True)
    try:
        service.serve_forever()
    finally:
        # runs on SIGINT/SIGTERM too (both propagate through
        # serve_forever as exceptions): drain jobs, shut the shared
        # pool down, unlink every shm segment, close the journal
        service.close()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv, limit=args.limit)
    detector = ViolationDetector(
        relation,
        max_cached_partitions=args.cache_max_entries,
        workers=args.workers)
    try:
        with _CommandProfiler(args.profile):
            report = detector.check(
                args.dependency, max_witnesses=0, count_pairs=False)
    finally:
        detector.close()
    print(f"{report.dependency}: {'HOLDS' if report.holds else 'VIOLATED'}")
    return 0 if report.holds else 1


def _cmd_violations(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv, limit=args.limit)
    detector = ViolationDetector(
        relation,
        max_cached_partitions=args.cache_max_entries,
        workers=args.workers)
    try:
        with _CommandProfiler(args.profile):
            report = detector.check(
                args.dependency, max_witnesses=args.witnesses,
                count_pairs=True)
    finally:
        detector.close()
    print(report)
    return 0 if report.holds else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = make_dataset(args.family, n_rows=args.rows,
                            n_attrs=args.cols, seed=args.seed)
    write_csv(relation, args.out)
    print(f"wrote {relation.n_rows} rows x {relation.arity} attributes "
          f"to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profile import profile_relation

    relation = read_csv(args.csv, limit=args.limit)
    profile = profile_relation(
        relation, max_level=args.max_level,
        approximate_error=args.approx)
    if args.json:
        print(json.dumps(profile.to_dict(top=args.top), indent=2))
    elif args.markdown:
        print(profile.render_markdown(top=args.top))
    else:
        print(profile.render_text(top=args.top))
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.profile import discover_keys

    relation = read_csv(args.csv, limit=args.limit)
    result = discover_keys(relation, max_size=args.max_size)
    print(f"{result.n_keys} minimal key(s):")
    for key in result.rendered():
        print(f"  {key}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.derivation import Explainer
    from repro.core.fastod import discover_ods
    from repro.core.od import CanonicalFD, CanonicalOCD
    from repro.core.parser import parse

    dependency = parse(args.dependency)
    if not isinstance(dependency, (CanonicalFD, CanonicalOCD)):
        print("error: explain takes canonical dependencies "
              "('{X}: [] -> A' or '{X}: A ~ B')", file=sys.stderr)
        return 2
    relation = read_csv(args.csv, limit=args.limit)
    result = discover_ods(relation)
    derivation = Explainer(result.all_ods).explain(dependency)
    if derivation is None:
        print(f"{dependency}: does not follow from the data "
              "(no derivation)")
        return 1
    print(derivation)
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for name in dataset_names():
        print(name)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.server.client import ServiceClient

    snap = ServiceClient(args.url).stats()
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0
    scheduler = snap["scheduler"]
    catalog = snap["catalog"]
    store = snap["store"]
    print(f"uptime: {snap['uptime_seconds']:.1f}s")
    print(f"scheduler: jobs={scheduler['jobs']} "
          f"queued={scheduler['queued']} "
          f"degraded={scheduler['degraded']}")
    print(f"catalog: entries={catalog['entries']} "
          f"resident_bytes={catalog['resident_bytes']} "
          f"evictions={catalog['evictions']}")
    print(f"store: resident={store['resident']} hits={store['hits']} "
          f"misses={store['misses']} "
          f"bytes_written={store['bytes_written']}")
    print()
    for name, family in sorted(snap["metrics"].items()):
        for entry in family["values"]:
            labels = entry.get("labels") or {}
            suffix = ("{" + ",".join(f"{k}={v}"
                                     for k, v in labels.items()) + "}"
                      if labels else "")
            if family["type"] == "histogram":
                count = entry["count"]
                total = entry["sum"]
                mean = total / count if count else 0.0
                print(f"{name}{suffix} count={count} "
                      f"sum={total:.6f} mean={mean:.6f}")
            else:
                print(f"{name}{suffix} {entry['value']}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import render_timeline
    from repro.server.client import ServiceClient

    payload = ServiceClient(args.url).trace(args.job)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    spans = payload.get("spans") or []
    if not spans:
        print(f"{args.job} ({payload.get('status')}): no trace "
              "recorded (served from the store, or not yet run)")
        return 0
    print(f"{args.job} ({payload.get('status')}), "
          f"{len(spans)} span(s):")
    print(render_timeline(spans))
    return 0


def _cmd_profile_job(args: argparse.Namespace) -> int:
    from repro.server.client import ServiceClient

    folded = ServiceClient(args.url).profile(args.job)
    if not folded:
        print(f"{args.job}: no profile recorded (observability "
              "disabled, served from the store, or not yet run)",
              file=sys.stderr)
        return 1
    print(folded)
    return 0


_COMMANDS = {
    "discover": _cmd_discover,
    "append": _cmd_append,
    "watch": _cmd_watch,
    "serve": _cmd_serve,
    "check": _cmd_check,
    "violations": _cmd_violations,
    "generate": _cmd_generate,
    "profile": _cmd_profile,
    "keys": _cmd_keys,
    "explain": _cmd_explain,
    "datasets": _cmd_datasets,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "profile-job": _cmd_profile_job,
}


class _Terminated(Exception):
    """SIGTERM, re-raised as an exception so ``finally`` blocks run."""


def _raise_terminated(signum, frame):  # noqa: ARG001 — signal contract
    raise _Terminated()


def _install_sigterm_handler() -> None:
    """Route SIGTERM through the same exception-based teardown as
    SIGINT.  Long-running commands only (``serve``/``watch``): a
    supervisor's TERM then drains pools/journals via the command's
    ``finally`` path and exits 143 instead of dying mid-write.  Only
    possible on the main thread; anywhere else the default
    (terminate) behavior is kept."""
    try:
        signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:  # pragma: no cover - non-main thread embedding
        pass


def _dump_final_metrics() -> None:
    """An interrupted ``serve``/``watch`` leaves one last structured
    event on stderr holding the full registry snapshot — the session's
    counters survive the teardown even with no scraper attached."""
    from repro.obs import events, metrics

    events.emit("metrics.final",
                metrics=metrics.get_registry().snapshot())


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "kernels", None):
        # process-wide default so commands whose engines don't thread
        # a per-run backend (check/violations/serve jobs without an
        # explicit kernel_backend) still honor the flag
        from repro import kernels

        kernels.set_default_backend(args.kernels)
    long_running = args.command in ("serve", "watch")
    if long_running:
        _install_sigterm_handler()
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # one SIGINT contract for every long-running command: the
        # interrupted command's finally blocks have already torn down
        # engines/pools/servers (no orphan workers, no leaked shm),
        # so all that is left is the final metrics breadcrumb and the
        # conventional exit status
        if long_running:
            _dump_final_metrics()
        print("interrupted", file=sys.stderr)
        return 130
    except _Terminated:
        # same contract for SIGTERM (128 + 15)
        if long_running:
            _dump_final_metrics()
        print("terminated", file=sys.stderr)
        return 143


if __name__ == "__main__":
    sys.exit(main())
