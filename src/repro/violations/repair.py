"""Tuple-removal repairs for violated ODs (data cleaning).

Two strategies:

* :func:`exact_fd_repair` — for a single constancy OD, the optimal
  repair is closed-form: keep the most frequent consequent value per
  context class.
* :func:`greedy_repair` — for arbitrary dependency sets, repeatedly
  remove the tuple participating in the most violation witnesses.
  Terminates (each round removes a tuple) and, since every reported
  witness is a genuinely violating pair, the result always satisfies
  all dependencies when it returns ``clean=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.od import CanonicalFD
from repro.relation.table import Relation
from repro.violations.detect import Dependency, ViolationDetector


@dataclass
class RepairResult:
    """A cleaned relation plus provenance of what was removed."""

    relation: Relation
    removed_rows: List[int] = field(default_factory=list)
    rounds: int = 0
    clean: bool = True

    @property
    def n_removed(self) -> int:
        return len(self.removed_rows)


def exact_fd_repair(relation: Relation, fd: CanonicalFD) -> RepairResult:
    """Minimum-removal repair of one constancy OD ``X: [] ↦ A``.

    Keeps, per context class, the rows carrying the majority A value;
    this is optimal because classes are independent and within a class
    exactly one value can survive.
    """
    encoded = relation.encode()
    index = {name: i for i, name in enumerate(encoded.names)}
    mask = 0
    for name in fd.context:
        mask |= 1 << index[name]
    from repro.partitions.cache import PartitionCache

    partition = PartitionCache(encoded).get(mask)
    column = encoded.column(index[fd.attribute])
    removals: List[int] = []
    for rows in partition.classes:
        values = column[rows]
        kept_value = _majority(values)
        removals.extend(int(row) for row, value in zip(rows, values)
                        if value != kept_value)
    removals.sort()
    return RepairResult(relation.drop_rows(removals), removals, rounds=1)


def _majority(values: np.ndarray) -> int:
    distinct, counts = np.unique(values, return_counts=True)
    return int(distinct[int(np.argmax(counts))])


def greedy_repair(relation: Relation,
                  dependencies: Sequence[Dependency],
                  *, max_rounds: int = 10_000,
                  witnesses_per_dependency: int = 20) -> RepairResult:
    """Iteratively remove the most-offending tuple until all
    dependencies hold (or the round budget runs out).

    Row indices in ``removed_rows`` refer to the *original* relation.
    """
    current = relation
    # original row id of each current row
    origin = list(range(relation.n_rows))
    removed: List[int] = []
    for round_number in range(1, max_rounds + 1):
        detector = ViolationDetector(current)
        participation: Dict[int, int] = {}
        any_violation = False
        for dependency in dependencies:
            report = detector.check(
                dependency, max_witnesses=witnesses_per_dependency,
                count_pairs=False)
            if report.holds:
                continue
            any_violation = True
            for witness in _iter_witnesses(report):
                participation[witness.row_s] = \
                    participation.get(witness.row_s, 0) + 1
                participation[witness.row_t] = \
                    participation.get(witness.row_t, 0) + 1
        if not any_violation:
            return RepairResult(current, removed, rounds=round_number - 1)
        victim = max(sorted(participation), key=participation.get)
        removed.append(origin[victim])
        origin.pop(victim)
        current = current.drop_rows([victim])
    return RepairResult(current, removed, rounds=max_rounds, clean=False)


def _iter_witnesses(report) -> List:
    found = list(report.witnesses)
    for part in report.parts:
        found.extend(_iter_witnesses(part))
    return found


def verify_repair(result: RepairResult,
                  dependencies: Sequence[Dependency]) -> bool:
    """Re-check that every dependency holds on the repaired relation."""
    detector = ViolationDetector(result.relation)
    return all(
        detector.check(dep, max_witnesses=1, count_pairs=False).holds
        for dep in dependencies)
