"""Approximate ODs — dependencies that *almost* hold.

The paper's Section 7 names approximate ODs as future work; this module
implements them with the standard ``g3`` error measure: the minimum
fraction of tuples whose removal makes the dependency hold.

* For ``X: [] ↦ A``: within each context class keep the most frequent
  A value; everything else must go.
* For ``X: A ~ B``: within each context class keep a maximum swap-free
  subset — a maximum set of (A, B) points with no strictly discordant
  pair, computed by a longest-compatible-subsequence DP over A-groups
  with a Fenwick max-tree over B ranks.

``approximate_discovery`` runs a level-wise sweep emitting minimal
approximate ODs under a threshold; errors are monotone non-increasing
in the context, so subset-pruning is sound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mapping import map_compatibility_part, map_list_od
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition, value_group_sizes
from repro.relation.schema import bit_count, iter_bits
from repro.relation.table import Relation
from repro.violations.fenwick import FenwickMax


# ----------------------------------------------------------------------
# removal counts (the g3 numerator)
# ----------------------------------------------------------------------
def fd_removal_count(column: np.ndarray,
                     context: StrippedPartition) -> int:
    """Minimum removals making ``X: [] ↦ A`` hold.

    Per class, keep the most frequent A value.  Vectorized: one
    ``(class, value)`` group-by over the flat partition layout, then a
    segmented max (``np.maximum.reduceat``) over each class's group
    sizes.
    """
    if len(context.rows) == 0:
        return 0
    group_sizes, owners = value_group_sizes(column, context)
    class_starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(owners)) + 1))
    keep = np.maximum.reduceat(group_sizes, class_starts)
    return int(context.n_grouped_rows - keep.sum())


def max_compatible_subset(pairs: Sequence[Tuple[int, int]]) -> int:
    """Size of a maximum swap-free subset of (A, B) points.

    Points with equal A never conflict; across strictly increasing A,
    every kept B must not decrease — so a kept selection is, per
    A-group, a window of B values, with the previous groups' maximum
    kept B at most the next group's minimum.

    DP over groups in ascending A order with a Fenwick max-tree ``G``
    indexed by B rank: ``G(v)`` is the best selection size among
    processed groups whose maximum kept B is at most ``v``.  Within a
    group with sorted distinct B values ``v_1 < ... < v_k`` (counts
    ``c_i``), taking the window ``v_i..v_j`` keeps ``c_i + .. + c_j``
    points on top of ``G(v_i)``; a single prefix scan finds the best
    window ending at each ``v_j``.
    """
    if not pairs:
        return 0
    ordered = sorted(pairs)
    b_values = sorted({b for _, b in ordered})
    b_rank = {value: i for i, value in enumerate(b_values)}
    tree = FenwickMax(len(b_values))
    best_overall = 0
    current_a = None
    group: dict = {}  # b_rank -> count within the current A group

    def flush(group_counts: dict) -> int:
        best_here = 0
        prefix = 0
        best_window_start = None
        updates = []
        for rank in sorted(group_counts):
            reachable = tree.prefix_max(rank)   # selections with max B <= v
            candidate = reachable - prefix
            if best_window_start is None or candidate > best_window_start:
                best_window_start = candidate
            prefix += group_counts[rank]
            updates.append((rank, best_window_start + prefix))
        for rank, score in updates:
            tree.update(rank, score)
            if score > best_here:
                best_here = score
        return best_here

    for value_a, value_b in ordered:
        if value_a != current_a:
            if group:
                best_overall = max(best_overall, flush(group))
            group = {}
            current_a = value_a
        rank = b_rank[value_b]
        group[rank] = group.get(rank, 0) + 1
    if group:
        best_overall = max(best_overall, flush(group))
    return best_overall


def ocd_removal_count(column_a: np.ndarray, column_b: np.ndarray,
                      context: StrippedPartition) -> int:
    """Minimum removals making ``X: A ~ B`` hold."""
    removals = 0
    for rows in context.classes:
        pairs = list(zip(column_a[rows].tolist(), column_b[rows].tolist()))
        removals += len(rows) - max_compatible_subset(pairs)
    return removals


# ----------------------------------------------------------------------
# error rates
# ----------------------------------------------------------------------
def error_rate(relation: Relation,
               dependency: Union[CanonicalFD, CanonicalOCD, ListOD,
                                 "OrderCompatibility", str]
               ) -> float:
    """The g3 error of a dependency in ``[0, 1]``; 0 iff it holds.

    Strings are parsed first.  For a list OD or order compatibility the
    returned value is the *maximum* over its canonical image — a lower
    bound on the true joint-removal error (satisfying all parts at once
    can cost more than the worst part).
    """
    if isinstance(dependency, str):
        from repro.core.parser import parse

        dependency = parse(dependency)
    if isinstance(dependency, OrderCompatibility):
        dependency = ListOD(dependency.lhs, dependency.rhs)
        image = map_compatibility_part(dependency.lhs, dependency.rhs)
        return max(
            (error_rate(relation, part) for part in image), default=0.0)
    encoded = relation.encode()
    if encoded.n_rows == 0:
        return 0.0
    cache = PartitionCache(encoded)
    index = {name: i for i, name in enumerate(encoded.names)}

    def context_partition(context) -> StrippedPartition:
        mask = 0
        for name in context:
            mask |= 1 << index[name]
        return cache.get(mask)

    def one(dep) -> float:
        if isinstance(dep, CanonicalFD):
            if dep.is_trivial:
                return 0.0
            return fd_removal_count(
                encoded.column(index[dep.attribute]),
                context_partition(dep.context)) / encoded.n_rows
        if dep.is_trivial:
            return 0.0
        return ocd_removal_count(
            encoded.column(index[dep.left]),
            encoded.column(index[dep.right]),
            context_partition(dep.context)) / encoded.n_rows

    if isinstance(dependency, ListOD):
        image = map_list_od(dependency)
        return max((one(part) for part in image.all_ods), default=0.0)
    return one(dependency)


# ----------------------------------------------------------------------
# approximate discovery
# ----------------------------------------------------------------------
@dataclass
class ApproximateOD:
    """A canonical OD together with its measured g3 error."""

    od: Union[CanonicalFD, CanonicalOCD]
    error: float

    def __str__(self) -> str:
        return f"{self.od}  [g3={self.error:.4f}]"


@dataclass
class ApproximateDiscoveryResult:
    """Output of :func:`approximate_discovery`."""

    max_error: float
    ods: List[ApproximateOD] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def fds(self) -> List[ApproximateOD]:
        return [a for a in self.ods if isinstance(a.od, CanonicalFD)]

    @property
    def ocds(self) -> List[ApproximateOD]:
        return [a for a in self.ods if isinstance(a.od, CanonicalOCD)]


def approximate_discovery(relation: Relation, max_error: float = 0.05,
                          max_context: Optional[int] = None
                          ) -> ApproximateDiscoveryResult:
    """Minimal approximate canonical ODs with g3 error <= ``max_error``.

    Level-wise over context size.  Because errors only shrink as the
    context grows, an OD emitted for context ``Y`` prunes every
    superset context for the same attribute (or pair) — the emitted set
    is minimal in the same sense as exact discovery.

    Exponential in attributes like all lattice sweeps; intended for
    modest schema widths (the same regime FASTOD itself targets).
    """
    started = time.perf_counter()
    encoded = relation.encode()
    n_rows = max(encoded.n_rows, 1)
    cache = PartitionCache(encoded)
    arity = encoded.arity
    names = encoded.names
    limit = arity if max_context is None else min(max_context, arity)
    result = ApproximateDiscoveryResult(max_error=max_error)
    done_fd = {}   # attribute -> list of context masks already emitted
    done_ocd = {}  # (a, b) -> list of context masks already emitted

    def already_covered(done_masks, context_mask) -> bool:
        return any(prior & context_mask == prior
                   for prior in done_masks)

    context_masks = sorted(range(1 << arity), key=bit_count)
    for context_mask in context_masks:
        size = bit_count(context_mask)
        if size > limit:
            break
        partition = cache.get(context_mask)
        context = frozenset(names[i] for i in iter_bits(context_mask))
        outside = [a for a in range(arity)
                   if not context_mask & (1 << a)]
        for attribute in outside:
            masks = done_fd.setdefault(attribute, [])
            if already_covered(masks, context_mask):
                continue
            error = fd_removal_count(
                encoded.column(attribute), partition) / n_rows
            if error <= max_error:
                result.ods.append(ApproximateOD(
                    CanonicalFD(context, names[attribute]), error))
                masks.append(context_mask)
        for a, b in combinations(outside, 2):
            masks = done_ocd.setdefault((a, b), [])
            if already_covered(masks, context_mask):
                continue
            if already_covered(done_fd.get(a, []), context_mask) \
                    or already_covered(done_fd.get(b, []), context_mask):
                # Propagate: a near-constant side makes the OCD
                # redundant at the same threshold.
                continue
            error = ocd_removal_count(
                encoded.column(a), encoded.column(b), partition) / n_rows
            if error <= max_error:
                result.ods.append(ApproximateOD(
                    CanonicalOCD(context, names[a], names[b]), error))
                masks.append(context_mask)
    result.elapsed_seconds = time.perf_counter() - started
    return result
