"""Dataset-level violation summaries across a rule set.

One report for "how dirty is this table against these constraints":
per-dependency verdicts and violating-pair counts, the tuples that
participate in the most violations (repair candidates), and a rendered
table for logs or tickets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.relation.table import Relation
from repro.violations.detect import (
    Dependency,
    ViolationDetector,
    ViolationReport,
)


@dataclass
class RuleVerdict:
    """One dependency's outcome in the summary."""

    dependency: str
    holds: bool
    n_violating_pairs: int

    def __str__(self) -> str:
        state = ("holds" if self.holds
                 else f"{self.n_violating_pairs} violating pair(s)")
        return f"{self.dependency}: {state}"


@dataclass
class ViolationSummary:
    """Aggregate cleanliness report for one relation and rule set."""

    n_rows: int
    verdicts: List[RuleVerdict] = field(default_factory=list)
    hot_rows: List[Tuple[int, int]] = field(default_factory=list)
    reports: List[ViolationReport] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(verdict.holds for verdict in self.verdicts)

    @property
    def n_violated_rules(self) -> int:
        return sum(1 for verdict in self.verdicts if not verdict.holds)

    @property
    def total_violating_pairs(self) -> int:
        return sum(v.n_violating_pairs for v in self.verdicts)

    def render(self, top_rows: int = 5) -> str:
        lines = [
            f"{len(self.verdicts)} rule(s) on {self.n_rows} rows: "
            + ("CLEAN" if self.clean else
               f"{self.n_violated_rules} violated, "
               f"{self.total_violating_pairs} violating pair(s)"),
        ]
        lines.extend(f"  {verdict}" for verdict in self.verdicts)
        if self.hot_rows:
            lines.append("most implicated rows "
                         "(row index: witness appearances):")
            lines.extend(
                f"  row {row}: {count}"
                for row, count in self.hot_rows[:top_rows])
        return "\n".join(lines)


def summarize_violations(relation: Relation,
                         dependencies: Sequence[Dependency],
                         *, max_witnesses: int = 25
                         ) -> ViolationSummary:
    """Check every dependency and aggregate the findings.

    ``hot_rows`` ranks tuples by how many violation witnesses they
    appear in (across all rules) — a practical shortlist for manual
    inspection or repair.
    """
    detector = ViolationDetector(relation)
    summary = ViolationSummary(n_rows=relation.n_rows)
    participation: Dict[int, int] = {}
    for dependency in dependencies:
        report = detector.check(dependency, max_witnesses=max_witnesses,
                                count_pairs=True)
        summary.reports.append(report)
        summary.verdicts.append(RuleVerdict(
            report.dependency, report.holds, report.n_violating_pairs))
        for witness in _all_witnesses(report):
            participation[witness.row_s] = \
                participation.get(witness.row_s, 0) + 1
            participation[witness.row_t] = \
                participation.get(witness.row_t, 0) + 1
    summary.hot_rows = sorted(
        participation.items(), key=lambda item: (-item[1], item[0]))
    return summary


def _all_witnesses(report: ViolationReport) -> list:
    found = list(report.witnesses)
    for part in report.parts:
        found.extend(_all_witnesses(part))
    return found
