"""Violation detection and counting — ODs as data-quality rules.

The paper's motivating use: an OD encodes a business rule ("no employee
pays less tax while earning more"); tuple pairs violating it point at
data errors.  This module finds witnesses (Definitions 4-5), counts
violating pairs exactly, and aggregates reports for list ODs via their
canonical image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.mapping import map_list_od
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.core.parser import parse
from repro.core.validation import (
    CanonicalValidator,
    Split,
    Swap,
    find_split,
    find_swap,
    scan_find_swap,
    split_mismatch_mask,
    swap_classes,
)
from repro.partitions.partition import StrippedPartition, value_group_sizes
from repro.relation.table import Relation
from repro.violations.fenwick import FenwickSum

Dependency = Union[CanonicalFD, CanonicalOCD, ListOD, OrderCompatibility, str]


@dataclass
class ViolationReport:
    """Outcome of checking one dependency against one relation."""

    dependency: str
    holds: bool
    n_violating_pairs: int = 0
    witnesses: List[Union[Split, Swap]] = field(default_factory=list)
    parts: List["ViolationReport"] = field(default_factory=list)

    def __str__(self) -> str:
        head = ("holds" if self.holds
                else f"violated by {self.n_violating_pairs} tuple pair(s)")
        lines = [f"{self.dependency}: {head}"]
        lines.extend(f"  {witness}" for witness in self.witnesses)
        for part in self.parts:
            if not part.holds:
                lines.append("  via " + str(part).replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-ready rendering (the service API's validate /
        violations job payload)."""
        payload: dict = {
            "dependency": self.dependency,
            "holds": self.holds,
            "n_violating_pairs": self.n_violating_pairs,
            "witnesses": [str(witness) for witness in self.witnesses],
        }
        if self.parts:
            payload["parts"] = [part.to_dict() for part in self.parts]
        return payload


# ----------------------------------------------------------------------
# exact pair counting
# ----------------------------------------------------------------------
def count_split_pairs(column: np.ndarray,
                      context: StrippedPartition) -> int:
    """Number of tuple pairs violating ``X: [] ↦ A``: pairs in the same
    context class with different A values.

    Vectorized over the flat partition layout: all-pairs per class from
    the class sizes, minus the same-value pairs counted by grouping the
    grouped rows on ``(class, value)`` with one ``lexsort``.
    """
    if len(context.rows) == 0:
        return 0
    sizes = context.class_sizes
    all_pairs = int((sizes * (sizes - 1) // 2).sum())
    group_sizes = value_group_sizes(column, context)[0]
    same = int((group_sizes * (group_sizes - 1) // 2).sum())
    return all_pairs - same


def count_swap_pairs(column_a: np.ndarray, column_b: np.ndarray,
                     context: StrippedPartition) -> int:
    """Number of tuple pairs violating ``X: A ~ B``: same-class pairs
    with ``a < a'`` and ``b > b'`` (strict both ways).

    Counted per class by sweeping (A, B) pairs in ascending A order and
    querying, for each element, how many *earlier-A* elements have a
    strictly larger B — a Fenwick prefix-sum over dense B ranks,
    flushed group-by-group so equal-A pairs never count.
    """
    total = 0
    for rows in context.classes:
        pairs = sorted(zip(column_a[rows].tolist(),
                           column_b[rows].tolist()))
        b_values = sorted({b for _, b in pairs})
        b_rank = {value: i for i, value in enumerate(b_values)}
        tree = FenwickSum(len(b_values))
        seen = 0
        group: List[int] = []
        current_a = None
        for value_a, value_b in pairs:
            if value_a != current_a:
                for rank in group:
                    tree.add(rank)
                seen += len(group)
                group = []
                current_a = value_a
            rank = b_rank[value_b]
            # earlier-A elements with B rank strictly above `rank`
            total += seen - tree.prefix_sum(rank)
            group.append(rank)
    return total


# ----------------------------------------------------------------------
# witness collection
# ----------------------------------------------------------------------
def collect_splits(column: np.ndarray, context: StrippedPartition,
                   attribute: str, limit: int) -> List[Split]:
    """Up to ``limit`` split witnesses (one per offending class).

    Offending classes are located with one vectorized segmented
    constancy check; only those classes are touched to extract the
    witness rows.
    """
    rows = context.rows
    if len(rows) == 0:
        return []
    offsets = context.offsets
    mismatch = split_mismatch_mask(column, context)
    per_class = np.add.reduceat(mismatch, offsets[:-1])
    witnesses: List[Split] = []
    for class_id in np.flatnonzero(per_class)[:limit]:
        start, stop = offsets[class_id], offsets[class_id + 1]
        position = start + int(np.argmax(mismatch[start:stop]))
        witnesses.append(
            Split(int(rows[start]), int(rows[position]), attribute))
    return witnesses


def collect_swaps(column_a: np.ndarray, column_b: np.ndarray,
                  context: StrippedPartition, left: str, right: str,
                  limit: int) -> List[Swap]:
    """Up to ``limit`` swap witnesses (one per offending class).

    One vectorized pass (:func:`repro.core.validation.swap_classes`)
    finds the offending classes; the scalar witness scan then runs only
    on those.
    """
    offsets = context.offsets
    witnesses: List[Swap] = []
    for class_id in swap_classes(column_a, column_b, context)[:limit]:
        class_rows = context.rows[offsets[class_id]:offsets[class_id + 1]]
        witness = scan_find_swap(column_a, column_b, class_rows,
                                 left, right)
        if witness is not None:
            witnesses.append(witness)
    return witnesses


# ----------------------------------------------------------------------
# the public checker
# ----------------------------------------------------------------------
class ViolationDetector:
    """Checks dependencies of any supported syntax against a relation.

    ``max_cached_partitions`` caps the resident context partitions
    (LRU) for detectors that outlive one query — e.g. monitoring many
    rules against a large relation; default is unbounded.

    ``workers`` routes big hold-checks through the unified engine's
    pooled executor, which shards them by context class across a
    shared-memory worker pool (see
    :class:`repro.core.validation.CanonicalValidator`); witness
    extraction and pair counting stay on the coordinator.
    """

    def __init__(self, relation: Relation,
                 max_cached_partitions: Optional[int] = None,
                 workers: Optional[int] = None,
                 cache=None, pool=None):
        self._relation = relation
        self._validator = CanonicalValidator(
            relation.encode(),
            max_cached_partitions=max_cached_partitions,
            workers=workers, cache=cache, pool=pool)
        self._encoded = self._validator.relation
        self._index = {name: i for i, name in enumerate(self._encoded.names)}

    def close(self) -> None:
        """Release the validator's worker pool, if one was started."""
        self._validator.close()

    def executor_stats(self) -> dict:
        """Per-phase executor telemetry of the underlying validator
        (tasks dispatched, serial-vs-pool split, peak residency)."""
        return self._validator.executor_stats()

    def timings(self) -> dict:
        """Per-phase wall clock of the underlying validator (the
        ``timings`` currency)."""
        return self._validator.timings()

    def check(self, dependency: Dependency, *, max_witnesses: int = 3,
              count_pairs: bool = True) -> ViolationReport:
        """Full violation report for one dependency.

        Strings are parsed first; list ODs are decomposed through
        Theorem 5 and reported with per-part sub-reports.
        """
        if isinstance(dependency, str):
            dependency = parse(dependency)
        if isinstance(dependency, CanonicalFD):
            return self._check_fd(dependency, max_witnesses, count_pairs)
        if isinstance(dependency, CanonicalOCD):
            return self._check_ocd(dependency, max_witnesses, count_pairs)
        if isinstance(dependency, OrderCompatibility):
            as_od = ListOD(dependency.lhs, dependency.rhs)
            image = map_list_od(as_od)
            parts = list(image.ocds)
            return self._check_composite(str(dependency), parts,
                                         max_witnesses, count_pairs)
        if isinstance(dependency, ListOD):
            image = map_list_od(dependency)
            return self._check_composite(str(dependency),
                                         list(image.all_ods),
                                         max_witnesses, count_pairs)
        raise TypeError(f"unsupported dependency object: {dependency!r}")

    # -- leaves ---------------------------------------------------------
    def _context_partition(self, context) -> StrippedPartition:
        mask = 0
        for name in context:
            mask |= 1 << self._index[name]
        return self._validator.cache.get(mask)

    def _check_fd(self, fd: CanonicalFD, max_witnesses: int,
                  count_pairs: bool) -> ViolationReport:
        if fd.is_trivial:
            return ViolationReport(str(fd), holds=True)
        partition = self._context_partition(fd.context)
        column = self._encoded.column(self._index[fd.attribute])
        witnesses = collect_splits(column, partition, fd.attribute,
                                   max_witnesses)
        holds = find_split(column, partition, fd.attribute) is None
        pairs = (count_split_pairs(column, partition)
                 if count_pairs and not holds else 0)
        return ViolationReport(str(fd), holds, pairs, list(witnesses))

    def _check_ocd(self, ocd: CanonicalOCD, max_witnesses: int,
                   count_pairs: bool) -> ViolationReport:
        if ocd.is_trivial:
            return ViolationReport(str(ocd), holds=True)
        partition = self._context_partition(ocd.context)
        column_a = self._encoded.column(self._index[ocd.left])
        column_b = self._encoded.column(self._index[ocd.right])
        witnesses = collect_swaps(column_a, column_b, partition,
                                  ocd.left, ocd.right, max_witnesses)
        holds = not witnesses and find_swap(
            column_a, column_b, partition, ocd.left, ocd.right) is None
        pairs = (count_swap_pairs(column_a, column_b, partition)
                 if count_pairs and not holds else 0)
        return ViolationReport(str(ocd), holds, pairs, list(witnesses))

    # -- composites -----------------------------------------------------
    def _check_composite(self, label: str, parts: Sequence,
                         max_witnesses: int,
                         count_pairs: bool) -> ViolationReport:
        sub_reports = [
            self.check(part, max_witnesses=max_witnesses,
                       count_pairs=count_pairs)
            for part in parts
        ]
        holds = all(report.holds for report in sub_reports)
        witnesses: List[Union[Split, Swap]] = []
        for report in sub_reports:
            for witness in report.witnesses:
                if len(witnesses) < max_witnesses:
                    witnesses.append(witness)
        pair_count = max(
            (report.n_violating_pairs for report in sub_reports), default=0)
        return ViolationReport(label, holds, pair_count, witnesses,
                               parts=sub_reports)


def check_dependency(relation: Relation, dependency: Dependency,
                     **kwargs) -> ViolationReport:
    """One-shot convenience wrapper around :class:`ViolationDetector`."""
    return ViolationDetector(relation).check(dependency, **kwargs)
