"""Data-cleaning applications: violations, repairs, approximate ODs."""

from repro.violations.approximate import (
    ApproximateDiscoveryResult,
    ApproximateOD,
    approximate_discovery,
    error_rate,
    fd_removal_count,
    max_compatible_subset,
    ocd_removal_count,
)
from repro.violations.detect import (
    ViolationDetector,
    ViolationReport,
    check_dependency,
    count_split_pairs,
    count_swap_pairs,
)
from repro.violations.fenwick import FenwickMax, FenwickSum
from repro.violations.monitor import (
    FdClassState,
    OcdClassState,
    ODMonitor,
    RejectedInsert,
)
from repro.violations.summary import (
    RuleVerdict,
    ViolationSummary,
    summarize_violations,
)
from repro.violations.repair import (
    RepairResult,
    exact_fd_repair,
    greedy_repair,
    verify_repair,
)

__all__ = [
    "ApproximateDiscoveryResult",
    "ApproximateOD",
    "FdClassState",
    "FenwickMax",
    "FenwickSum",
    "ODMonitor",
    "OcdClassState",
    "RejectedInsert",
    "RepairResult",
    "RuleVerdict",
    "ViolationDetector",
    "ViolationReport",
    "ViolationSummary",
    "approximate_discovery",
    "check_dependency",
    "count_split_pairs",
    "count_swap_pairs",
    "error_rate",
    "exact_fd_repair",
    "fd_removal_count",
    "greedy_repair",
    "max_compatible_subset",
    "ocd_removal_count",
    "summarize_violations",
    "verify_repair",
]
