"""Fenwick (binary indexed) trees used by violation counting and
approximate-OD machinery.

``FenwickSum`` supports prefix sums (pair counting); ``FenwickMax``
supports prefix maxima (longest compatible subsequence DP).  Both are
1-indexed internally and sized for dense ranks in ``[0, size)``.
"""

from __future__ import annotations


class FenwickSum:
    """Point update / prefix-sum query in O(log n)."""

    def __init__(self, size: int):
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` at position ``index`` (0-based)."""
        index += 1
        while index <= self._size:
            self._tree[index] += amount
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions ``0..index`` inclusive (0-based); -1 -> 0."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def total(self) -> int:
        return self.prefix_sum(self._size - 1)


class FenwickMax:
    """Point update / prefix-max query in O(log n); empty prefix is 0."""

    def __init__(self, size: int):
        self._size = size
        self._tree = [0] * (size + 1)

    def update(self, index: int, value: int) -> None:
        """Raise position ``index`` (0-based) to at least ``value``."""
        index += 1
        while index <= self._size:
            if self._tree[index] < value:
                self._tree[index] = value
            index += index & (-index)

    def prefix_max(self, index: int) -> int:
        """Max over positions ``0..index`` inclusive (0-based); -1 -> 0."""
        index += 1
        best = 0
        while index > 0:
            if self._tree[index] > best:
                best = self._tree[index]
            index -= index & (-index)
        return best
