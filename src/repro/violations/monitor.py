"""Incremental OD monitoring for append-only data.

A warehouse loads data continuously; re-validating every constraint
from scratch per batch is wasteful.  :class:`ODMonitor` maintains, per
canonical OD, just enough per-context-class state to decide in
O(log k) per tuple whether an insert introduces a violation:

* constancy ``X: [] ↦ A`` — the single admissible A value per class;
* compatibility ``X: A ~ B`` — per class, the set of A-groups as
  disjoint B-intervals kept in ascending A order; an insert violates
  iff some lower A-group reaches above it or some higher A-group dips
  below it (checked against neighbours via bisection, since accepted
  state always keeps group intervals monotone).

Values are compared through :func:`repro.relation.encoding.sort_key`,
so the monitor never needs a global rank encoding and accepts unseen
values.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.parser import parse
from repro.relation.encoding import sort_key
from repro.relation.table import Relation

CanonicalOD = Union[CanonicalFD, CanonicalOCD]


@dataclass
class RejectedInsert:
    """Why one tuple was rejected (or flagged) by the monitor."""

    row: Tuple[Any, ...]
    od: CanonicalOD
    reason: str

    def __str__(self) -> str:
        return f"insert {self.row!r} violates {self.od}: {self.reason}"


class FdClassState:
    """Per-class constant tracking for one constancy OD.

    Group keys are any hashable identity for a context class — the
    monitor uses context-value tuples, the incremental engine uses
    stable partition group ids."""

    __slots__ = ("constants",)

    def __init__(self):
        self.constants: Dict[tuple, tuple] = {}

    def check(self, context_key: tuple, value: tuple) -> Optional[str]:
        existing = self.constants.get(context_key)
        if existing is not None and existing != value:
            return (f"attribute must stay constant per context class; "
                    f"class already holds a different value")
        return None

    def accept(self, context_key: tuple, value: tuple) -> None:
        self.constants.setdefault(context_key, value)


class OcdClassState:
    """Per-class A-group interval tracking for one compatibility OD.

    For each context class we keep the A-groups as three parallel
    sorted lists — A keys, interval minima and maxima over B — so a
    point is located with one O(log k) bisection straight on the key
    list.  In an accepted (violation-free) state the B-intervals are
    non-overlapping and ascending with A, so a new point only needs
    comparing with its immediate A-neighbours.

    Class keys are any hashable identity (see :class:`FdClassState`);
    this is also the per-class check the incremental discovery engine
    uses to demote previously valid OCDs when a batch lands.
    """

    __slots__ = ("classes",)

    def __init__(self):
        #: context class -> (a_keys, min_bs, max_bs), parallel & sorted
        self.classes: Dict[tuple, Tuple[list, list, list]] = {}

    def check(self, context_key: tuple, a_key: tuple,
              b_key: tuple) -> Optional[str]:
        entry = self.classes.get(context_key)
        if entry is None:
            return None
        a_keys, min_bs, max_bs = entry
        position = bisect_left(a_keys, a_key)
        if position < len(a_keys) and a_keys[position] == a_key:
            # joining an existing A-group widens its interval
            left_ok = (position == 0
                       or max_bs[position - 1] <= b_key)
            right_ok = (position == len(a_keys) - 1
                        or b_key <= min_bs[position + 1])
            if not left_ok:
                return "a lower A-group already holds a larger B"
            if not right_ok:
                return "a higher A-group already holds a smaller B"
            return None
        if position > 0 and max_bs[position - 1] > b_key:
            return "a lower A-group already holds a larger B"
        if position < len(a_keys) and min_bs[position] < b_key:
            return "a higher A-group already holds a smaller B"
        return None

    def accept(self, context_key: tuple, a_key: tuple,
               b_key: tuple) -> None:
        entry = self.classes.get(context_key)
        if entry is None:
            entry = ([], [], [])
            self.classes[context_key] = entry
        a_keys, min_bs, max_bs = entry
        position = bisect_left(a_keys, a_key)
        if position < len(a_keys) and a_keys[position] == a_key:
            if b_key < min_bs[position]:
                min_bs[position] = b_key
            if b_key > max_bs[position]:
                max_bs[position] = b_key
        else:
            a_keys.insert(position, a_key)
            min_bs.insert(position, b_key)
            max_bs.insert(position, b_key)


class ODMonitor:
    """Validates inserts against a set of canonical ODs incrementally.

    >>> monitor = ODMonitor(["month", "quarter"],
    ...                     ["{}: month ~ quarter"])
    >>> monitor.insert((1, 1)) is None
    True
    >>> monitor.insert((2, 1)) is None
    True
    >>> print(monitor.insert((3, 0)).reason)
    a lower A-group already holds a larger B
    """

    def __init__(self, attribute_names: Sequence[str],
                 dependencies: Sequence[Union[CanonicalOD, str]],
                 *, reject_violations: bool = True):
        self._names = tuple(attribute_names)
        self._index = {name: i for i, name in enumerate(self._names)}
        self._reject = reject_violations
        self._ods: List[CanonicalOD] = []
        self._states: List[Union[FdClassState, OcdClassState]] = []
        self._violations: List[RejectedInsert] = []
        self.n_accepted = 0
        for dependency in dependencies:
            if isinstance(dependency, str):
                dependency = parse(dependency)
            if not isinstance(dependency, (CanonicalFD, CanonicalOCD)):
                raise TypeError(
                    f"ODMonitor takes canonical ODs, got {dependency!r}")
            for name in self._attrs_of(dependency):
                if name not in self._index:
                    raise KeyError(
                        f"dependency {dependency} mentions unknown "
                        f"attribute {name!r}")
            self._ods.append(dependency)
            self._states.append(
                FdClassState() if isinstance(dependency, CanonicalFD)
                else OcdClassState())

    @staticmethod
    def _attrs_of(od: CanonicalOD):
        if isinstance(od, CanonicalFD):
            return set(od.context) | {od.attribute}
        return set(od.context) | {od.left, od.right}

    @property
    def dependencies(self) -> List[CanonicalOD]:
        return list(self._ods)

    @property
    def violations(self) -> List[RejectedInsert]:
        """Violating inserts seen so far (only populated in
        flag-don't-reject mode, where offending tuples are dropped from
        the maintained state but recorded here)."""
        return list(self._violations)

    # ------------------------------------------------------------------
    def _keys(self, od: CanonicalOD, row: Sequence[Any]):
        context_key = tuple(
            sort_key(row[self._index[name]])
            for name in sorted(od.context))
        if isinstance(od, CanonicalFD):
            return context_key, (sort_key(row[self._index[od.attribute]]),)
        return (context_key,
                (sort_key(row[self._index[od.left]]),),
                (sort_key(row[self._index[od.right]]),))

    def insert(self, row: Sequence[Any]) -> Optional[RejectedInsert]:
        """Try to append one tuple.

        Returns ``None`` on success.  On violation: in reject mode the
        state is left untouched and the rejection returned; in flag
        mode the rejection is recorded and returned, and the tuple is
        *not* folded into the state (so later inserts are judged
        against the clean history).
        """
        row = tuple(row)
        if len(row) != len(self._names):
            raise ValueError(
                f"expected {len(self._names)} values, got {len(row)}")
        for od, state in zip(self._ods, self._states):
            if isinstance(od, CanonicalFD):
                context_key, value = self._keys(od, row)
                reason = state.check(context_key, value)
            else:
                context_key, a_key, b_key = self._keys(od, row)
                reason = state.check(context_key, a_key, b_key)
            if reason is not None:
                rejected = RejectedInsert(row, od, reason)
                self._violations.append(rejected)
                return rejected
        for od, state in zip(self._ods, self._states):
            if isinstance(od, CanonicalFD):
                context_key, value = self._keys(od, row)
                state.accept(context_key, value)
            else:
                context_key, a_key, b_key = self._keys(od, row)
                state.accept(context_key, a_key, b_key)
        self.n_accepted += 1
        return None

    def insert_many(self, rows) -> List[RejectedInsert]:
        """Insert a batch; returns all rejections."""
        rejections = []
        for row in rows:
            rejected = self.insert(row)
            if rejected is not None:
                rejections.append(rejected)
        return rejections

    @classmethod
    def from_relation(cls, relation: Relation,
                      dependencies: Sequence[Union[CanonicalOD, str]]
                      ) -> "ODMonitor":
        """Seed a monitor with an existing (assumed clean) relation.

        Raises :class:`ValueError` if the existing data already
        violates one of the dependencies.
        """
        monitor = cls(relation.names, dependencies)
        for row in relation.rows():
            rejected = monitor.insert(row)
            if rejected is not None:
                raise ValueError(
                    f"existing data violates a dependency: {rejected}")
        return monitor
