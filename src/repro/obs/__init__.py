"""End-to-end observability: metrics, trace spans, structured events.

Three always-on, stdlib-only primitives the whole engine/pool/service
stack bills into:

* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms; rendered as JSON (``/stats``) or Prometheus
  text (``/metrics``).
* :mod:`repro.obs.trace` — coarse-grained spans
  (``with trace.span("fd-check", level=3):``) collected into bounded
  per-job ring buffers; served at ``/jobs/<id>/trace`` and rendered by
  ``repro-od trace``.
* :mod:`repro.obs.events` — one-line JSON event records for state
  transitions (degradation pins, pool rebuilds, journal replays,
  request access logs).

``REPRO_OBS=0`` (or :func:`repro.obs.metrics.set_enabled`) disables
metrics and spans together; ``benchmarks/bench_obs_overhead.py`` gates
the enabled-vs-disabled difference at ≤5 % wall clock.
"""

from repro.obs import events, metrics, trace
from repro.obs.events import emit, set_sink
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_enabled,
)
from repro.obs.trace import TraceBuffer, collect, render_timeline, span

__all__ = [
    "MetricsRegistry",
    "TraceBuffer",
    "collect",
    "emit",
    "events",
    "get_registry",
    "metrics",
    "render_timeline",
    "set_enabled",
    "set_sink",
    "span",
    "trace",
]
