"""End-to-end observability: metrics, trace spans, structured events.

Three always-on, stdlib-only primitives the whole engine/pool/service
stack bills into:

* :mod:`repro.obs.metrics` — a process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms; rendered as JSON (``/stats``) or Prometheus
  text (``/metrics``).
* :mod:`repro.obs.trace` — coarse-grained spans
  (``with trace.span("fd-check", level=3):``) collected into bounded
  per-job ring buffers; served at ``/jobs/<id>/trace`` and rendered by
  ``repro-od trace``.
* :mod:`repro.obs.events` — one-line JSON event records for state
  transitions (degradation pins, pool rebuilds, journal replays,
  request access logs), stamped with ``trace_id``/``span_id`` when a
  span is active;
* :mod:`repro.obs.profiler` — a stdlib-only sampling stack profiler
  (daemon thread, folded-stack counts, fork re-arm for pool workers);
  per-job output served at ``/jobs/<id>/profile`` and rendered by
  ``repro-od profile-job``;
* :mod:`repro.obs.accounting` — per-job ``getrusage``/shm-byte
  accounting spanning the coordinator and its pool workers, attached
  to job records and ``/stats``.

``REPRO_OBS=0`` (or :func:`repro.obs.metrics.set_enabled`) disables
metrics, spans, per-job profiling, and worker-side shipping together;
``benchmarks/bench_obs_overhead.py`` gates the enabled-vs-disabled
difference at ≤5 % wall clock.
"""

from repro.obs import accounting, events, metrics, profiler, trace
from repro.obs.accounting import ResourceAccount, process_rusage
from repro.obs.events import emit, set_sink
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_enabled,
)
from repro.obs.profiler import SamplingProfiler, render_folded
from repro.obs.trace import TraceBuffer, collect, render_timeline, span

__all__ = [
    "MetricsRegistry",
    "ResourceAccount",
    "SamplingProfiler",
    "TraceBuffer",
    "accounting",
    "collect",
    "emit",
    "events",
    "get_registry",
    "metrics",
    "process_rusage",
    "profiler",
    "render_folded",
    "render_timeline",
    "set_enabled",
    "set_sink",
    "span",
    "trace",
]
