"""A process-wide, thread-safe metrics registry.

The paper's experiments live on wall-clock and per-level traversal
cost; this registry is the substrate that makes those measurable *in
situ* instead of post-hoc.  Three instrument kinds, modelled on the
Prometheus client data model but stdlib-only:

* :class:`Counter` — monotonically increasing totals (tasks resolved,
  cache hits, faults fired);
* :class:`Gauge` — last-write-wins levels (queue depth, resident
  bytes);
* :class:`Histogram` — fixed-bucket latency/size distributions
  (per-level seconds, dispatch wall clock, journal fsync time).

Design constraints, in order:

1. **Cheap enough to be always on.**  An increment is one dict lookup
   and one addition under a per-family lock; a disabled registry
   short-circuits before taking the lock.  The ≤5 % overhead budget is
   enforced by ``benchmarks/bench_obs_overhead.py``.
2. **One registry per process.**  Module-level :data:`REGISTRY` is the
   default every instrumented module bills to; worker processes get
   their own (invisible) copy — coordinator metrics describe the
   coordinator, by construction.
3. **Two renderings of the same truth**: :meth:`MetricsRegistry.
   snapshot` (JSON, served at ``/stats``) and
   :meth:`MetricsRegistry.render_prometheus` (text exposition format,
   served at ``/metrics``).

Instrument families are created idempotently — ``counter("x")`` twice
returns the same family — so import order never matters.
"""

from __future__ import annotations

import bisect
import json
import os
import re
import threading
from typing import Dict, List, Sequence, Tuple

#: Default histogram buckets (seconds): sub-millisecond kernels up to
#: minute-scale discovery runs.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Byte-sized histograms (shm blocks, payload sizes): 1 KiB .. 1 GiB.
BYTE_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << shift) for shift in range(10, 31, 2))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    """Prometheus-style float rendering; integers stay integral."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One named metric family; label tuples key its children."""

    kind = "untyped"

    __slots__ = ("name", "help", "labelnames", "_values", "_lock",
                 "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str, labelnames: Sequence[str]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._values: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        try:
            return tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as error:
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}") from error

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    # -- introspection ---------------------------------------------------
    def items(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._values.items())

    def label_dicts(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Family):
    kind = "counter"

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Gauge(_Family):
    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Histogram(_Family):
    kind = "histogram"

    __slots__ = ("buckets",)

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str, labelnames: Sequence[str],
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: histogram needs >= 1 bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                # per-bucket (non-cumulative) counts, sum, count
                state = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._values[key] = state
            state[0][index] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return int(state[2]) if state else 0

    def sum(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return float(state[1]) if state else 0.0


class MetricsRegistry:
    """Owner of every metric family in this process.

    Family constructors are idempotent: asking for an existing name
    returns the existing family (and raises ``ValueError`` if the
    kind, labels, or buckets disagree — two modules silently billing
    different shapes to one name is a bug worth failing on).
    """

    def __init__(self, enabled: bool = True):
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()
        self._enabled = bool(enabled)

    # -- enable/disable ---------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    # -- family constructors ----------------------------------------------
    def _family(self, cls, name: str, help_text: str,
                labelnames: Sequence[str], **extra) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        f"metric {name!r} re-registered with a "
                        f"different shape")
                return existing
            family = cls(self, name, help_text, labelnames, **extra)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._family(Histogram, name, help_text, labelnames,
                            buckets=buckets)

    # -- reads -------------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """One counter/gauge child's current value (0 if unset)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return family.value(**labels)  # type: ignore[attr-defined]

    def total(self, name: str, **labels) -> float:
        """Sum a counter/gauge family over every child matching the
        given label *subset* (no labels = the whole family)."""
        family = self._families.get(name)
        if family is None or isinstance(family, Histogram):
            return 0.0
        total = 0.0
        for key, value in family.items():
            child = family.label_dicts(key)
            if all(child.get(k) == str(v) for k, v in labels.items()):
                total += float(value)  # type: ignore[arg-type]
        return total

    def reset(self) -> None:
        """Zero every family's children (families stay registered) —
        test/benchmark isolation, never called in production paths."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.clear()

    # -- renderings ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready dump of every family (the ``/stats`` body)."""
        out: Dict[str, Dict] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            rendered: Dict[str, object] = {
                "type": family.kind,
                "help": family.help,
                "values": [],
            }
            values: List[Dict] = rendered["values"]  # type: ignore
            for key, value in family.items():
                entry: Dict[str, object] = {
                    "labels": family.label_dicts(key)}
                if isinstance(family, Histogram):
                    counts, total, count = value  # type: ignore
                    cumulative, buckets = 0, {}
                    for bound, n in zip(family.buckets, counts):
                        cumulative += n
                        buckets[_format_value(bound)] = cumulative
                    buckets["+Inf"] = count
                    entry.update(count=count, sum=total,
                                 buckets=buckets)
                else:
                    entry["value"] = value
                values.append(entry)
            out[name] = rendered
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (``/metrics``)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, value in family.items():
                labels = family.label_dicts(key)
                if isinstance(family, Histogram):
                    counts, total, count = value  # type: ignore
                    cumulative = 0
                    for bound, n in zip(family.buckets, counts):
                        cumulative += n
                        bucket = dict(labels,
                                      le=_format_value(bound))
                        lines.append(f"{name}_bucket"
                                     f"{_render_labels(bucket)} "
                                     f"{cumulative}")
                    bucket = dict(labels, le="+Inf")
                    lines.append(f"{name}_bucket"
                                 f"{_render_labels(bucket)} {count}")
                    lines.append(f"{name}_sum{_render_labels(labels)} "
                                 f"{_format_value(total)}")
                    lines.append(f"{name}_count"
                                 f"{_render_labels(labels)} {count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(value)}")  # type: ignore
        return "\n".join(lines) + "\n"

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in (
        "0", "false", "off", "no")


#: The process-wide default registry every instrumented module bills
#: to.  ``REPRO_OBS=0`` boots it disabled (the overhead benchmark's
#: control arm); :func:`set_enabled` flips it at runtime.
REGISTRY = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    return REGISTRY


def set_enabled(enabled: bool) -> None:
    """Enable/disable the process-wide registry (and trace spans)."""
    REGISTRY.set_enabled(enabled)


def enabled() -> bool:
    return REGISTRY._enabled


def counter(name: str, help_text: str = "",
            labelnames: Sequence[str] = ()) -> Counter:
    """A counter on the process-wide registry."""
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str = "",
          labelnames: Sequence[str] = ()) -> Gauge:
    """A gauge on the process-wide registry."""
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(name: str, help_text: str = "",
              labelnames: Sequence[str] = (),
              buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """A histogram on the process-wide registry."""
    return REGISTRY.histogram(name, help_text, labelnames, buckets)


__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "set_enabled",
]
