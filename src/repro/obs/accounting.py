"""Per-job resource accounting: CPU, RSS, shm bytes, task counts.

Traces answer *where the wall clock went*; this module answers *what
it cost*.  A :class:`ResourceAccount` snapshots
:func:`resource.getrusage` (and the pool's shared-memory byte
counters) when a job starts, accumulates the worker-side rusage
deltas the pool ships back per chunk, and renders one JSON-ready dict
when the job finishes::

    {"cpu_user_seconds": ..., "cpu_system_seconds": ...,
     "max_rss_bytes": ...,
     "coordinator": {...}, "workers": {..., "processes": 2,
                                       "tasks": 14},
     "shm_bytes": ..., "zero_copy_bytes": ...}

Which account is *current* flows through a ``ContextVar`` installed by
the job scheduler around each job (:class:`track`), exactly like
per-job trace buffers — and because the scheduler serialises jobs on
one runner thread, the metrics-counter deltas (shm/zero-copy bytes)
are exact per job, not approximations.

``getrusage`` notes: ``ru_maxrss`` is a lifetime high-water mark, not
a delta — workers ship it absolute and the account keeps the max;
Linux reports KiB where macOS reports bytes
(:func:`maxrss_bytes` normalises).  ``RUSAGE_CHILDREN`` only covers
*reaped* children, which is why per-job worker CPU arrives explicitly
on the result queue instead.
"""

from __future__ import annotations

import contextvars
import resource
import sys
import threading
from typing import Dict, Optional

from repro.obs import metrics

#: Metric families whose per-job deltas the account reports (created
#: by :mod:`repro.parallel.pool` at import; totals are 0 until then).
_SHM_FAMILY = "repro_pool_shm_bytes_total"
_ZERO_COPY_FAMILY = "repro_pool_zero_copy_bytes_total"


def maxrss_bytes(ru_maxrss: int) -> int:
    """Normalise ``ru_maxrss`` to bytes (Linux reports KiB, macOS
    bytes)."""
    if sys.platform == "darwin":
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def _counter_total(name: str) -> float:
    try:
        return float(metrics.get_registry().total(name))
    except Exception:
        return 0.0


def rusage_dict(who: int) -> Dict[str, float]:
    """One ``getrusage`` snapshot as a JSON-ready dict (``/stats``)."""
    ru = resource.getrusage(who)
    return {
        "cpu_user_seconds": round(ru.ru_utime, 6),
        "cpu_system_seconds": round(ru.ru_stime, 6),
        "max_rss_bytes": maxrss_bytes(ru.ru_maxrss),
    }


def process_rusage() -> Dict[str, Dict[str, float]]:
    """Process-lifetime usage for the coordinator and its *reaped*
    children (live pool workers are not in here — per-job worker CPU
    is shipped explicitly and lands in job records)."""
    return {
        "self": rusage_dict(resource.RUSAGE_SELF),
        "children": rusage_dict(resource.RUSAGE_CHILDREN),
    }


class ResourceAccount:
    """Accumulates one job's resource usage across processes."""

    def __init__(self):
        self._lock = threading.Lock()
        ru = resource.getrusage(resource.RUSAGE_SELF)
        self._utime0 = ru.ru_utime
        self._stime0 = ru.ru_stime
        self._shm0 = _counter_total(_SHM_FAMILY)
        self._zero_copy0 = _counter_total(_ZERO_COPY_FAMILY)
        self.worker_utime = 0.0
        self.worker_stime = 0.0
        self.worker_maxrss = 0
        self.worker_pids: set = set()
        self.worker_tasks = 0
        #: folded-stack sample counts shipped by workers, merged by
        #: the scheduler into the job's coordinator profile
        self.worker_profile: Dict[str, int] = {}

    def add_worker(self, utime: float, stime: float,
                   maxrss: int, pid: int,
                   profile: Optional[Dict[str, int]] = None) -> None:
        """Fold in one worker chunk's shipped usage (pool coordinator
        side, called per collected result)."""
        with self._lock:
            self.worker_utime += float(utime)
            self.worker_stime += float(stime)
            self.worker_maxrss = max(self.worker_maxrss, int(maxrss))
            self.worker_pids.add(int(pid))
            self.worker_tasks += 1
            if profile:
                for stack, n in profile.items():
                    self.worker_profile[stack] = (
                        self.worker_profile.get(stack, 0) + n)

    def finish(self) -> Dict[str, object]:
        """Close the account: coordinator deltas since construction
        plus everything the workers shipped, as one JSON-ready dict."""
        ru = resource.getrusage(resource.RUSAGE_SELF)
        coord_utime = max(0.0, ru.ru_utime - self._utime0)
        coord_stime = max(0.0, ru.ru_stime - self._stime0)
        coord_maxrss = maxrss_bytes(ru.ru_maxrss)
        with self._lock:
            return {
                "cpu_user_seconds": round(
                    coord_utime + self.worker_utime, 6),
                "cpu_system_seconds": round(
                    coord_stime + self.worker_stime, 6),
                "max_rss_bytes": max(coord_maxrss, self.worker_maxrss),
                "coordinator": {
                    "cpu_user_seconds": round(coord_utime, 6),
                    "cpu_system_seconds": round(coord_stime, 6),
                    "max_rss_bytes": coord_maxrss,
                },
                "workers": {
                    "cpu_user_seconds": round(self.worker_utime, 6),
                    "cpu_system_seconds": round(self.worker_stime, 6),
                    "max_rss_bytes": self.worker_maxrss,
                    "processes": len(self.worker_pids),
                    "tasks": self.worker_tasks,
                },
                "shm_bytes": int(
                    _counter_total(_SHM_FAMILY) - self._shm0),
                "zero_copy_bytes": int(
                    _counter_total(_ZERO_COPY_FAMILY)
                    - self._zero_copy0),
            }


#: The account the current job bills to (``None`` outside a job).
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_resource_account", default=None)


def current() -> Optional[ResourceAccount]:
    return _CURRENT.get()


class track:
    """Install an account (or ``None``) for the dynamic extent — the
    job scheduler's per-job wrapper, mirroring ``trace.collect``."""

    __slots__ = ("account", "_token")

    def __init__(self, account: Optional[ResourceAccount]):
        self.account = account

    def __enter__(self) -> Optional[ResourceAccount]:
        self._token = _CURRENT.set(self.account)
        return self.account

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        return False


__all__ = [
    "ResourceAccount",
    "current",
    "maxrss_bytes",
    "process_rusage",
    "rusage_dict",
    "track",
]
