"""Structured event log: one JSON object per line.

State transitions that were previously only visible by polling
``/health`` — scheduler degradation pins, pool rebuilds, journal
replay summaries, request access logs, the final metrics snapshot on
signal teardown — are emitted here as machine-parseable lines::

    {"event": "scheduler.pool_rebuild", "rebuilds": 2, "ts": ...}

The default sink is ``sys.stderr`` (stdout belongs to command output;
the serve smoke suite reads it line-by-line).  Tests and embedders
install their own sink with :func:`set_sink`; emission never raises —
a broken pipe on teardown must not take the service down with it.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Optional

from repro.obs import trace

_LOCK = threading.Lock()
_SINK: Optional[Callable[[str], None]] = None


def set_sink(sink: Optional[Callable[[str], None]]) -> None:
    """Route event lines to ``sink(line)``; ``None`` restores stderr."""
    global _SINK
    _SINK = sink


def emit(event: str, **fields) -> None:
    """Emit one structured event line (sorted keys, one line, JSON).

    When a trace span is open on the calling context the line gains
    ``trace_id``/``span_id`` fields, so any event emitted inside a job
    joins against that job's ``/jobs/{id}/trace`` export.  Explicit
    caller-passed fields win on collision.

    Non-JSON-serializable field values degrade to ``str`` rather than
    failing the caller; I/O errors are swallowed for the same reason.
    """
    payload = {"ts": round(time.time(), 6), "event": event}
    trace_id, span_id = trace.current_ids()
    if trace_id is not None:
        payload["trace_id"] = trace_id
        payload["span_id"] = span_id
    payload.update(fields)
    try:
        line = json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError):  # pragma: no cover - default=str
        line = json.dumps({"ts": payload["ts"], "event": event})
    sink = _SINK
    with _LOCK:
        try:
            if sink is not None:
                sink(line)
            else:
                print(line, file=sys.stderr, flush=True)
        except (OSError, ValueError):
            pass


__all__ = ["emit", "set_sink"]
