"""Lightweight trace spans: a flame-style timeline per discovery.

Metrics (:mod:`repro.obs.metrics`) answer *how much*; spans answer
*when and inside what*.  A span is a named interval with monotonic
start/end timestamps, a parent id, and free-form fields::

    with trace.span("fd-check", level=3):
        ...

Spans land in a :class:`TraceBuffer` — a bounded ring (old spans fall
off; a runaway traversal can never hoard memory).  Which buffer is
*current* flows through a :class:`contextvars.ContextVar`, so the job
scheduler installs a per-job buffer on its runner thread with
:class:`collect` and every planner/pool span inside that job lands in
it; code outside any ``collect`` block records into the process-wide
:data:`GLOBAL_BUFFER`.

Granularity is deliberately coarse — levels, phases, dispatches, job
lifecycles — never per-candidate, so the always-on cost stays inside
the ≤5 % overhead budget (spans short-circuit entirely when the
metrics registry is disabled).  :meth:`TraceBuffer.export` returns
JSON-ready dicts; :func:`render_timeline` draws them as an aligned
text flame chart for ``repro-od trace``.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics

#: Default ring capacity: a deep lattice sweep emits a few spans per
#: level plus one per pool dispatch — thousands, not millions.
DEFAULT_CAPACITY = 4096


class TraceBuffer:
    """A bounded, thread-safe ring of finished span records.

    Every buffer carries a ``trace_id`` — the correlation key that ties
    span records, ``events.emit`` lines, and worker-shipped span
    exports to one logical trace (one job, typically).
    """

    __slots__ = ("capacity", "trace_id", "_spans", "_lock", "_next_id")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 trace_id: Optional[str] = None):
        self.capacity = int(capacity)
        self.trace_id = (trace_id if trace_id is not None
                         else new_trace_id())
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._next_id = 0

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def add(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(record)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def export(self) -> List[Dict[str, object]]:
        """JSON-ready records, sorted by start time (parents precede
        children, since a parent starts first)."""
        with self._lock:
            spans = list(self._spans)
        return sorted(spans, key=lambda s: (s["start"], s["id"]))


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision odds are irrelevant at
    per-job cardinality; short ids keep event lines readable)."""
    return uuid.uuid4().hex[:16]


#: Spans recorded outside any :class:`collect` block land here.
GLOBAL_BUFFER = TraceBuffer()

#: ``(buffer, parent span id)`` for the current context; ``None``
#: means "global buffer, no parent".
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_state", default=None)


def current_buffer() -> TraceBuffer:
    state = _CURRENT.get()
    return state[0] if state is not None else GLOBAL_BUFFER


def current_span_id() -> int:
    """The id of the innermost open span on this context (0 when no
    span is open — the "no parent" sentinel)."""
    state = _CURRENT.get()
    return state[1] if state is not None else 0


def current_ids() -> Tuple[Optional[str], int]:
    """``(trace_id, span_id)`` when a span is open on this context,
    else ``(None, 0)`` — the shape :func:`repro.obs.events.emit` uses
    to correlate event lines with ``/jobs/{id}/trace``."""
    state = _CURRENT.get()
    if state is None or state[1] == 0:
        return None, 0
    return state[0].trace_id, state[1]


def record_leaf(name: str, start: float, end: float, **fields) -> None:
    """Record one already-timed leaf interval as a span.

    Cheaper than :class:`span` for hot call sites (no context-manager
    frames, no ContextVar set/reset) — what the kernel dispatchers use
    for per-kernel spans inside worker tasks.  No-ops when the
    registry is disabled."""
    if not metrics.REGISTRY._enabled:
        return
    state = _CURRENT.get()
    buffer, parent = state if state is not None else (GLOBAL_BUFFER, 0)
    record: Dict[str, object] = dict(fields)
    record.update(id=buffer.next_id(), parent=parent, name=name,
                  start=start, end=end, seconds=end - start)
    buffer.add(record)


def splice(buffer: TraceBuffer, spans: Sequence[Dict[str, object]],
           parent_id: int, window: Tuple[float, float],
           clock: Optional[Tuple[float, float]] = None) -> None:
    """Graft exported worker span records into ``buffer`` under
    ``parent_id``, rebasing the worker's monotonic clock into the
    coordinator's.

    ``window`` is the coordinator-observed ``(submit, ack)`` interval
    for the chunk; ``clock`` is the worker-observed ``(enter, exit)``
    pair bracketing the same work on the *worker's* ``perf_counter``
    epoch.  The midpoint identity ``offset = ((submit + ack) -
    (enter + exit)) / 2`` cancels the (assumed symmetric) queue
    latency, and every rebased timestamp is clamped into the window so
    worker spans always nest strictly under their dispatch span even
    when the clocks drift.

    Record ids are remapped through ``buffer.next_id()`` (worker ids
    restart per chunk and would collide); worker-root spans (parent 0)
    re-parent onto ``parent_id``.  Worker exports are sorted
    parents-first (see :meth:`TraceBuffer.export`), so the id map is
    always populated before a child needs it.
    """
    if not spans:
        return
    lo, hi = window
    hi = max(hi, lo)
    if clock is not None:
        w0, w1 = clock
        offset = ((lo + hi) - (w0 + w1)) / 2.0
    else:
        offset = 0.0
    idmap: Dict[int, int] = {0: parent_id}
    for record in spans:
        rebased: Dict[str, object] = dict(record)
        new_id = buffer.next_id()
        idmap[int(record["id"])] = new_id  # type: ignore[arg-type]
        start = min(max(float(record["start"]) + offset, lo), hi)
        end = min(max(float(record["end"]) + offset, start), hi)
        rebased.update(
            id=new_id,
            parent=idmap.get(int(record["parent"]),  # type: ignore
                             parent_id),
            start=start, end=end, seconds=end - start)
        buffer.add(rebased)


class span:
    """Context manager recording one named interval.

    Free-form keyword ``fields`` ride along in the record (reserved
    keys — ``id``, ``parent``, ``name``, ``start``, ``end``,
    ``seconds``, ``error`` — win on collision).  Exceptions propagate;
    the span is still recorded, tagged with the exception type.
    """

    __slots__ = ("name", "fields", "_buffer", "_id", "_parent",
                 "_token", "_start")

    def __init__(self, name: str, **fields):
        self.name = name
        self.fields = fields
        self._buffer: Optional[TraceBuffer] = None

    def __enter__(self) -> "span":
        if not metrics.REGISTRY._enabled:
            return self
        state: Optional[Tuple[TraceBuffer, int]] = _CURRENT.get()
        buffer, parent = state if state is not None else (
            GLOBAL_BUFFER, 0)
        self._buffer = buffer
        self._id = buffer.next_id()
        self._parent = parent
        self._token = _CURRENT.set((buffer, self._id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._buffer is None:
            return False
        end = time.perf_counter()
        _CURRENT.reset(self._token)
        record: Dict[str, object] = dict(self.fields)
        record.update(id=self._id, parent=self._parent,
                      name=self.name, start=self._start, end=end,
                      seconds=end - self._start)
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._buffer.add(record)
        self._buffer = None
        return False


class collect:
    """Install a buffer as current for the dynamic extent.

    ``with trace.collect() as buffer:`` gives the block (and every
    function it calls on the same thread/context) a private span ring;
    ``buffer.export()`` afterwards is the block's timeline.  The job
    scheduler wraps each job's handler in one of these so
    ``GET /jobs/<id>/trace`` serves exactly that job's spans.
    """

    __slots__ = ("buffer", "_token")

    def __init__(self, buffer: Optional[TraceBuffer] = None,
                 capacity: int = DEFAULT_CAPACITY):
        self.buffer = buffer if buffer is not None else TraceBuffer(
            capacity)

    def __enter__(self) -> TraceBuffer:
        self._token = _CURRENT.set((self.buffer, 0))
        return self.buffer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        return False


def render_timeline(spans: List[Dict[str, object]],
                    width: int = 48) -> str:
    """An aligned text flame chart over exported span records.

    One line per span: a bar positioned/scaled on the common time
    axis, then the name indented by tree depth and the duration."""
    if not spans:
        return "(no spans recorded)"
    t0 = min(float(s["start"]) for s in spans)
    t1 = max(float(s["end"]) for s in spans)
    total = max(t1 - t0, 1e-9)
    depths: Dict[int, int] = {}
    lines = []
    for record in spans:
        depth = depths.get(int(record["parent"]), -1) + 1  # type: ignore
        depths[int(record["id"])] = depth  # type: ignore
        start = float(record["start"])
        seconds = float(record["seconds"])
        offset = int((start - t0) / total * width)
        length = max(1, int(seconds / total * width))
        length = min(length, width - min(offset, width - 1))
        bar = " " * min(offset, width - 1) + "#" * length
        extras = " ".join(
            f"{key}={record[key]}" for key in sorted(record)
            if key not in ("id", "parent", "name", "start", "end",
                           "seconds"))
        label = "  " * depth + str(record["name"])
        lines.append(f"[{bar:<{width}}] {label} "
                     f"{seconds * 1000:8.2f}ms"
                     + (f"  {extras}" if extras else ""))
    return "\n".join(lines)


__all__ = [
    "DEFAULT_CAPACITY",
    "GLOBAL_BUFFER",
    "TraceBuffer",
    "collect",
    "current_buffer",
    "current_ids",
    "current_span_id",
    "new_trace_id",
    "record_leaf",
    "render_timeline",
    "span",
    "splice",
]
