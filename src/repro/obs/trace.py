"""Lightweight trace spans: a flame-style timeline per discovery.

Metrics (:mod:`repro.obs.metrics`) answer *how much*; spans answer
*when and inside what*.  A span is a named interval with monotonic
start/end timestamps, a parent id, and free-form fields::

    with trace.span("fd-check", level=3):
        ...

Spans land in a :class:`TraceBuffer` — a bounded ring (old spans fall
off; a runaway traversal can never hoard memory).  Which buffer is
*current* flows through a :class:`contextvars.ContextVar`, so the job
scheduler installs a per-job buffer on its runner thread with
:class:`collect` and every planner/pool span inside that job lands in
it; code outside any ``collect`` block records into the process-wide
:data:`GLOBAL_BUFFER`.

Granularity is deliberately coarse — levels, phases, dispatches, job
lifecycles — never per-candidate, so the always-on cost stays inside
the ≤5 % overhead budget (spans short-circuit entirely when the
metrics registry is disabled).  :meth:`TraceBuffer.export` returns
JSON-ready dicts; :func:`render_timeline` draws them as an aligned
text flame chart for ``repro-od trace``.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics

#: Default ring capacity: a deep lattice sweep emits a few spans per
#: level plus one per pool dispatch — thousands, not millions.
DEFAULT_CAPACITY = 4096


class TraceBuffer:
    """A bounded, thread-safe ring of finished span records."""

    __slots__ = ("capacity", "_spans", "_lock", "_next_id")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._spans: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._next_id = 0

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def add(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(record)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def export(self) -> List[Dict[str, object]]:
        """JSON-ready records, sorted by start time (parents precede
        children, since a parent starts first)."""
        with self._lock:
            spans = list(self._spans)
        return sorted(spans, key=lambda s: (s["start"], s["id"]))


#: Spans recorded outside any :class:`collect` block land here.
GLOBAL_BUFFER = TraceBuffer()

#: ``(buffer, parent span id)`` for the current context; ``None``
#: means "global buffer, no parent".
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_state", default=None)


def current_buffer() -> TraceBuffer:
    state = _CURRENT.get()
    return state[0] if state is not None else GLOBAL_BUFFER


class span:
    """Context manager recording one named interval.

    Free-form keyword ``fields`` ride along in the record (reserved
    keys — ``id``, ``parent``, ``name``, ``start``, ``end``,
    ``seconds``, ``error`` — win on collision).  Exceptions propagate;
    the span is still recorded, tagged with the exception type.
    """

    __slots__ = ("name", "fields", "_buffer", "_id", "_parent",
                 "_token", "_start")

    def __init__(self, name: str, **fields):
        self.name = name
        self.fields = fields
        self._buffer: Optional[TraceBuffer] = None

    def __enter__(self) -> "span":
        if not metrics.REGISTRY._enabled:
            return self
        state: Optional[Tuple[TraceBuffer, int]] = _CURRENT.get()
        buffer, parent = state if state is not None else (
            GLOBAL_BUFFER, 0)
        self._buffer = buffer
        self._id = buffer.next_id()
        self._parent = parent
        self._token = _CURRENT.set((buffer, self._id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._buffer is None:
            return False
        end = time.perf_counter()
        _CURRENT.reset(self._token)
        record: Dict[str, object] = dict(self.fields)
        record.update(id=self._id, parent=self._parent,
                      name=self.name, start=self._start, end=end,
                      seconds=end - self._start)
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._buffer.add(record)
        self._buffer = None
        return False


class collect:
    """Install a buffer as current for the dynamic extent.

    ``with trace.collect() as buffer:`` gives the block (and every
    function it calls on the same thread/context) a private span ring;
    ``buffer.export()`` afterwards is the block's timeline.  The job
    scheduler wraps each job's handler in one of these so
    ``GET /jobs/<id>/trace`` serves exactly that job's spans.
    """

    __slots__ = ("buffer", "_token")

    def __init__(self, buffer: Optional[TraceBuffer] = None,
                 capacity: int = DEFAULT_CAPACITY):
        self.buffer = buffer if buffer is not None else TraceBuffer(
            capacity)

    def __enter__(self) -> TraceBuffer:
        self._token = _CURRENT.set((self.buffer, 0))
        return self.buffer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        return False


def render_timeline(spans: List[Dict[str, object]],
                    width: int = 48) -> str:
    """An aligned text flame chart over exported span records.

    One line per span: a bar positioned/scaled on the common time
    axis, then the name indented by tree depth and the duration."""
    if not spans:
        return "(no spans recorded)"
    t0 = min(float(s["start"]) for s in spans)
    t1 = max(float(s["end"]) for s in spans)
    total = max(t1 - t0, 1e-9)
    depths: Dict[int, int] = {}
    lines = []
    for record in spans:
        depth = depths.get(int(record["parent"]), -1) + 1  # type: ignore
        depths[int(record["id"])] = depth  # type: ignore
        start = float(record["start"])
        seconds = float(record["seconds"])
        offset = int((start - t0) / total * width)
        length = max(1, int(seconds / total * width))
        length = min(length, width - min(offset, width - 1))
        bar = " " * min(offset, width - 1) + "#" * length
        extras = " ".join(
            f"{key}={record[key]}" for key in sorted(record)
            if key not in ("id", "parent", "name", "start", "end",
                           "seconds"))
        label = "  " * depth + str(record["name"])
        lines.append(f"[{bar:<{width}}] {label} "
                     f"{seconds * 1000:8.2f}ms"
                     + (f"  {extras}" if extras else ""))
    return "\n".join(lines)


__all__ = [
    "DEFAULT_CAPACITY",
    "GLOBAL_BUFFER",
    "TraceBuffer",
    "collect",
    "current_buffer",
    "render_timeline",
    "span",
]
