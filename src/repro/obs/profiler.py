"""A stdlib-only sampling profiler: collapsed flamegraph text per job.

Spans (:mod:`repro.obs.trace`) say *when and inside what* at phase
granularity; the profiler says *which Python frames* the time actually
went to.  A :class:`SamplingProfiler` is a daemon thread that wakes
every ``interval`` seconds, grabs the target thread's frame via
:func:`sys._current_frames`, folds the stack into a
``module:func;module:func`` string, and bumps a counter — the
classic collapsed/folded flamegraph format::

    fastod:run;lattice:process_level;partition:product 42

Two deployment shapes:

* **per-job, coordinator side** — the job scheduler starts one
  profiler targeting its runner thread per job and renders the counts
  as ``GET /jobs/{id}/profile`` / ``repro-od profile-job``;
* **ambient, worker side** — pool workers keep one process-wide
  profiler running (:func:`ambient`), re-armed automatically after a
  ``fork`` (sampler threads do not survive into the child), and ship
  per-task count *deltas* back on the result queue where the
  coordinator merges them under a ``worker`` root.

Sampling costs one stack walk per tick (~microseconds at the default
5 ms interval); a stopped/never-started profiler costs nothing.  The
profiler takes one synchronous sample on :meth:`start` and one on
:meth:`stop`, so even a job shorter than one tick exports a non-empty
profile.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, Optional

#: Default wall-clock seconds between samples: ~200 Hz, coarse enough
#: to be invisible next to kernel work, fine enough that a one-second
#: job collects hundreds of samples.
DEFAULT_INTERVAL = 0.005

#: Bound on the folded stack depth: recursion-heavy frames collapse
#: into their first 64 levels instead of producing unbounded keys.
_STACK_DEPTH_LIMIT = 64


def _fold_frame(frame) -> str:
    """One frame object -> ``module:func;...`` root-first fold."""
    parts = []
    depth = 0
    while frame is not None and depth < _STACK_DEPTH_LIMIT:
        code = frame.f_code
        stem = os.path.splitext(os.path.basename(code.co_filename))[0]
        parts.append(f"{stem}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


def subtract(counts: Dict[str, int],
             baseline: Dict[str, int]) -> Dict[str, int]:
    """``counts - baseline`` per stack, dropping empty rows (what a
    worker ships per task from its ambient profiler)."""
    delta = {}
    for stack, n in counts.items():
        d = n - baseline.get(stack, 0)
        if d > 0:
            delta[stack] = d
    return delta


def merge_counts(into: Dict[str, int], other: Dict[str, int],
                 prefix: Optional[str] = None) -> Dict[str, int]:
    """Fold ``other`` into ``into`` (mutated and returned), optionally
    re-rooting every stack under ``prefix`` — the coordinator mounts
    worker stacks under a ``worker`` root this way."""
    for stack, n in other.items():
        key = f"{prefix};{stack}" if prefix else stack
        into[key] = into.get(key, 0) + n
    return into


def render_folded(counts: Dict[str, int]) -> str:
    """Collapsed flamegraph text: one ``stack count`` line per stack,
    heaviest first (ties broken lexically for determinism)."""
    lines = [f"{stack} {n}" for stack, n in
             sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
    return "\n".join(lines)


class SamplingProfiler:
    """Periodic stack sampler for one target thread.

    ``thread_id`` defaults to the *calling* thread — the common case
    is "profile me": the job runner profiles itself, a worker profiles
    its task loop.  The sampler runs on its own daemon thread and
    never samples itself.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 thread_id: Optional[int] = None):
        self.interval = float(interval)
        self._target = (thread_id if thread_id is not None
                        else threading.get_ident())
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def retarget(self, thread_id: Optional[int] = None) -> None:
        """Point the sampler at another thread (the fork re-arm path:
        the child's surviving thread has the parent caller's stack but
        its own ident)."""
        self._target = (thread_id if thread_id is not None
                        else threading.get_ident())

    def sample_once(self) -> None:
        """Take one synchronous sample of the target thread (callable
        from any thread, including the target itself)."""
        frame = sys._current_frames().get(self._target)
        if frame is None:
            return
        stack = _fold_frame(frame)
        del frame
        with self._lock:
            self._counts[stack] = self._counts.get(stack, 0) + 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=1.0)
        self._thread = None
        self.sample_once()

    def counts(self) -> Dict[str, int]:
        """A snapshot copy of the folded-stack counts so far."""
        with self._lock:
            return dict(self._counts)

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()

    def render(self) -> str:
        return render_folded(self.counts())


# ----------------------------------------------------------------------
# the ambient process profiler (worker side) and its fork re-arm
# ----------------------------------------------------------------------
_AMBIENT: Optional[SamplingProfiler] = None
_AMBIENT_LOCK = threading.Lock()
_FORK_HOOK_INSTALLED = False


def _rearm_after_fork() -> None:
    """Runs in the child after a ``fork``: the sampler thread did not
    survive, and the parent's target ident names a thread that no
    longer exists — retarget to the surviving thread and restart."""
    global _AMBIENT
    profiler = _AMBIENT
    if profiler is None:
        return
    profiler._thread = None          # the parent's thread is gone
    profiler._stop.clear()
    profiler.clear()
    profiler.retarget(threading.get_ident())
    profiler.start()


def _install_fork_hook() -> None:
    global _FORK_HOOK_INSTALLED
    if _FORK_HOOK_INSTALLED or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(after_in_child=_rearm_after_fork)
    _FORK_HOOK_INSTALLED = True


def ambient(interval: float = DEFAULT_INTERVAL) -> SamplingProfiler:
    """The process-wide ambient profiler, started on first use and
    targeting the calling thread.  Pool workers call this from their
    task loop; the fork hook re-arms it in any further children."""
    global _AMBIENT
    with _AMBIENT_LOCK:
        if _AMBIENT is None:
            _install_fork_hook()
            _AMBIENT = SamplingProfiler(interval=interval)
        if not _AMBIENT.running:
            _AMBIENT.retarget(threading.get_ident())
            _AMBIENT.start()
    return _AMBIENT


def shutdown_ambient() -> None:
    """Stop the ambient profiler (tests; workers just exit)."""
    global _AMBIENT
    with _AMBIENT_LOCK:
        if _AMBIENT is not None:
            _AMBIENT.stop()
            _AMBIENT = None


__all__ = [
    "DEFAULT_INTERVAL",
    "SamplingProfiler",
    "ambient",
    "merge_counts",
    "render_folded",
    "shutdown_ambient",
    "subtract",
]
