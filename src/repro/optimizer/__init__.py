"""Query-optimization applications of discovered ODs."""

from repro.optimizer.odindex import ODIndex
from repro.optimizer.orders import (
    SimplifiedGroupBy,
    SimplifiedOrder,
    interesting_orders,
    simplify_group_by,
    simplify_order_by,
    sort_is_redundant,
)
from repro.optimizer.query import (
    PlanMetrics,
    RangePredicate,
    StarQuery,
    dimension_key_bounds,
    execute_with_join,
    execute_with_key_range,
)
from repro.optimizer.rewrite import (
    JoinElimination,
    PlanComparison,
    compare_plans,
    eliminate_join,
)

__all__ = [
    "JoinElimination",
    "ODIndex",
    "PlanComparison",
    "PlanMetrics",
    "RangePredicate",
    "SimplifiedGroupBy",
    "SimplifiedOrder",
    "StarQuery",
    "compare_plans",
    "dimension_key_bounds",
    "eliminate_join",
    "execute_with_join",
    "execute_with_key_range",
    "interesting_orders",
    "simplify_group_by",
    "simplify_order_by",
    "sort_is_redundant",
]
