"""OD-driven query rewrites: join elimination for surrogate keys.

The paper's data-warehouse scenario (Section 1.1): a BETWEEN predicate
on ``d_year`` normally forces a join between the fact table and
``date_dim``.  Knowing ``d_date_sk ↦ d_year`` (the surrogate key orders
the year), qualifying years occupy a *contiguous* surrogate-key range,
so two probes into the dimension replace the whole join.

Soundness argument, verified in tests: if ``[key] ↦ [attr]`` holds,
then ``attr`` is non-decreasing along ``key``; hence for any key ``k``
between the minimum and maximum qualifying keys,
``attr(k_min) <= attr(k) <= attr(k_max)``, and both endpoints satisfy
the (closed) range predicate, so ``k`` qualifies too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.od import ListOD
from repro.optimizer.odindex import ODIndex
from repro.optimizer.query import (
    PlanMetrics,
    StarQuery,
    dimension_key_bounds,
    execute_with_join,
    execute_with_key_range,
)
from repro.relation.table import Relation


@dataclass
class JoinElimination:
    """Outcome of attempting the rewrite on one query."""

    applied: bool
    reason: str
    key_range: Optional[Tuple[Any, Any]] = None
    rewritten_predicate: str = ""

    def __str__(self) -> str:
        if not self.applied:
            return f"join kept: {self.reason}"
        return f"join eliminated: {self.rewritten_predicate} ({self.reason})"


def eliminate_join(query: StarQuery, index: ODIndex,
                   dim: Relation) -> JoinElimination:
    """Try to replace the dimension join by a fact-local key range.

    Requires the OD ``[dim_key] ↦ [predicate attribute]`` to follow
    from the OD index; the dimension is probed once at plan time for
    the qualifying key bounds.
    """
    od = ListOD([query.dim_key], [query.predicate.attribute])
    if not index.implies_list_od(od):
        return JoinElimination(
            applied=False,
            reason=f"OD {od} not implied by the discovered dependencies")
    bounds = dimension_key_bounds(dim, query)
    if bounds is None:
        return JoinElimination(
            applied=True,
            reason=f"{od} holds; no dimension row qualifies",
            key_range=None,
            rewritten_predicate="FALSE (empty result)")
    low, high = bounds
    return JoinElimination(
        applied=True,
        reason=f"{od} holds on the dimension",
        key_range=bounds,
        rewritten_predicate=(
            f"fact.{query.fact_key} BETWEEN {low} AND {high}"))


@dataclass
class PlanComparison:
    """Both plans executed side by side, for demos and tests."""

    join_rows: list
    rewrite_rows: list
    join_metrics: PlanMetrics
    rewrite_metrics: PlanMetrics
    elimination: JoinElimination

    @property
    def equivalent(self) -> bool:
        return self.join_rows == self.rewrite_rows

    def savings_summary(self) -> str:
        return (
            f"join plan scanned {self.join_metrics.dim_rows_scanned} dim + "
            f"{self.join_metrics.fact_rows_scanned} fact rows; rewrite "
            f"scanned {self.rewrite_metrics.fact_rows_scanned} fact rows "
            f"with {self.rewrite_metrics.probe_count} probes")


def compare_plans(fact: Relation, dim: Relation, query: StarQuery,
                  index: ODIndex) -> PlanComparison:
    """Run the join plan and (when legal) the rewritten plan; verify
    they return identical fact rows."""
    join_rows, join_metrics = execute_with_join(fact, dim, query)
    elimination = eliminate_join(query, index, dim)
    if elimination.applied and elimination.key_range is not None:
        rewrite_rows, rewrite_metrics = execute_with_key_range(
            fact, elimination.key_range[0], elimination.key_range[1], query)
    elif elimination.applied:
        rewrite_rows, rewrite_metrics = [], PlanMetrics(probe_count=2)
    else:
        rewrite_rows, rewrite_metrics = join_rows, join_metrics
    return PlanComparison(join_rows, rewrite_rows, join_metrics,
                          rewrite_metrics, elimination)
