"""Order-by / group-by simplification and sort elimination.

The paper's Section 1.1 optimizations: ODs let an optimizer

* drop attributes from ORDER BY lists (``d_quarter`` is redundant after
  ``d_month`` because ``{d_month}: [] ↦ d_quarter``),
* shrink GROUP BY lists via FDs, and
* skip a sort entirely when an available index order already implies
  the requested order (``X_index ↦ X_query``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.core.od import ListOD, OrderSpec, as_spec
from repro.optimizer.odindex import ODIndex


@dataclass
class SimplifiedOrder:
    """Outcome of an ORDER BY simplification with an audit trail."""

    original: OrderSpec
    simplified: OrderSpec
    steps: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.original.attrs != self.simplified.attrs

    def __str__(self) -> str:
        arrow = f"{self.original} => {self.simplified}"
        if not self.steps:
            return arrow
        return arrow + "\n  " + "\n  ".join(self.steps)


def simplify_order_by(index: ODIndex,
                      spec: Union[OrderSpec, Sequence[str]]
                      ) -> SimplifiedOrder:
    """Remove attributes that cannot influence the lexicographic order.

    Scanning left to right with the kept prefix as context: attribute
    ``A`` is dropped when it repeats an earlier attribute
    (Normalization) or when ``{prefix}: [] ↦ A`` follows from the
    index — within every tie of the prefix, ``A`` is constant, so
    sorting by it is a no-op.
    """
    spec = as_spec(spec)
    kept: List[str] = []
    steps: List[str] = []
    for attribute in spec:
        if attribute in kept:
            steps.append(f"dropped {attribute}: repeated (Normalization)")
            continue
        if index.is_constant(kept, attribute):
            context = "{" + ",".join(kept) + "}"
            steps.append(
                f"dropped {attribute}: constant in context {context}")
            continue
        kept.append(attribute)
    return SimplifiedOrder(spec, OrderSpec(kept), steps)


@dataclass
class SimplifiedGroupBy:
    """Outcome of a GROUP BY simplification."""

    original: tuple
    simplified: tuple
    steps: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.original != self.simplified


def simplify_group_by(index: ODIndex,
                      attributes: Sequence[str]) -> SimplifiedGroupBy:
    """Drop attributes functionally determined by the remaining ones.

    Grouping keys form a set, so any ``A`` with
    ``A ∈ closure(rest)`` partitions nothing further.  Attributes are
    examined right-to-left so the leading (usually most selective)
    keys survive ties.
    """
    original = tuple(dict.fromkeys(attributes))  # dedupe, keep order
    kept = list(original)
    steps: List[str] = []
    for attribute in reversed(original):
        others = [a for a in kept if a != attribute]
        if attribute in index.attribute_closure(others):
            kept = others
            steps.append(
                f"dropped {attribute}: determined by {{{','.join(others)}}}")
    return SimplifiedGroupBy(original, tuple(kept), steps)


def sort_is_redundant(index: ODIndex,
                      available_order: Union[OrderSpec, Sequence[str]],
                      requested_order: Union[OrderSpec, Sequence[str]]
                      ) -> bool:
    """True when a stream already sorted by ``available_order`` needs
    no extra sort to satisfy ``requested_order`` — i.e. the OD
    ``available ↦ requested`` follows from the index."""
    return index.implies_list_od(
        ListOD(as_spec(available_order), as_spec(requested_order)))


def interesting_orders(index: ODIndex,
                       specs: Sequence[Sequence[str]]
                       ) -> List[tuple]:
    """Group the given order specifications into equivalence classes
    (System R style "interesting orders"): two specs land together when
    the index proves ``X ↔ Y``."""
    classes: List[List[OrderSpec]] = []
    for raw in specs:
        spec = as_spec(raw)
        for bucket in classes:
            if index.implies_order_equivalence(bucket[0], spec):
                bucket.append(spec)
                break
        else:
            classes.append([spec])
    return [tuple(bucket) for bucket in classes]
