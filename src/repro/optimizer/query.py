"""A miniature star-schema query IR with two executable plans.

Just enough structure to demonstrate — and *test* — the paper's
join-elimination rewrite (Section 1.1, Query 1): a fact table filtered
through a range predicate on a dimension attribute, evaluated either by
the straightforward join or by a rewritten surrogate-key range scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.relation.table import Relation


@dataclass(frozen=True)
class RangePredicate:
    """``attribute BETWEEN low AND high`` (inclusive both ends)."""

    attribute: str
    low: Any
    high: Any

    def matches(self, value: Any) -> bool:
        return value is not None and self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.attribute} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class StarQuery:
    """A fact-dimension query in the shape of the paper's Query 1."""

    fact_key: str                 # foreign key column on the fact table
    dim_key: str                  # surrogate key column on the dimension
    predicate: RangePredicate     # range filter on a dimension attribute
    order_by: Tuple[str, ...] = ()
    group_by: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return (f"SELECT ... FROM fact JOIN dim "
                f"ON fact.{self.fact_key} = dim.{self.dim_key} "
                f"WHERE dim.{self.predicate}")


@dataclass
class PlanMetrics:
    """Work counters so the two plans can be compared quantitatively."""

    dim_rows_scanned: int = 0
    fact_rows_scanned: int = 0
    probe_count: int = 0


def execute_with_join(fact: Relation, dim: Relation,
                      query: StarQuery) -> Tuple[List[int], PlanMetrics]:
    """Reference plan: hash-join the dimension, filter the fact rows.

    Returns the qualifying fact row indices (sorted) and metrics.
    """
    metrics = PlanMetrics()
    qualifying_keys = set()
    key_column = dim.column(query.dim_key)
    attr_column = dim.column(query.predicate.attribute)
    for key, value in zip(key_column, attr_column):
        metrics.dim_rows_scanned += 1
        if query.predicate.matches(value):
            qualifying_keys.add(key)
    rows: List[int] = []
    for row, key in enumerate(fact.column(query.fact_key)):
        metrics.fact_rows_scanned += 1
        if key in qualifying_keys:
            rows.append(row)
    return rows, metrics


def execute_with_key_range(fact: Relation, key_low: Any, key_high: Any,
                           query: StarQuery
                           ) -> Tuple[List[int], PlanMetrics]:
    """Rewritten plan: the predicate became a fact-local key range —
    no join, no dimension scan at run time (two probes found the
    bounds; see :func:`repro.optimizer.rewrite.eliminate_join`)."""
    metrics = PlanMetrics(probe_count=2)
    rows: List[int] = []
    for row, key in enumerate(fact.column(query.fact_key)):
        metrics.fact_rows_scanned += 1
        if key is not None and key_low <= key <= key_high:
            rows.append(row)
    return rows, metrics


def dimension_key_bounds(dim: Relation, query: StarQuery
                         ) -> Optional[Tuple[Any, Any]]:
    """Min and max ``dim_key`` among predicate-qualifying dimension
    rows (the optimizer-time "two probes"); ``None`` when nothing
    qualifies."""
    bounds: Optional[Tuple[Any, Any]] = None
    key_column = dim.column(query.dim_key)
    attr_column = dim.column(query.predicate.attribute)
    for key, value in zip(key_column, attr_column):
        if not query.predicate.matches(value):
            continue
        if bounds is None:
            bounds = (key, key)
        else:
            bounds = (min(bounds[0], key), max(bounds[1], key))
    return bounds
