"""An OD index: discovered dependencies packaged for an optimizer.

Query optimizers consume dependencies through a handful of questions —
"is this attribute constant given these?", "does this index order
satisfy that ORDER BY?".  :class:`ODIndex` answers them on top of the
:class:`~repro.core.axioms_set.InferenceEngine`, using Theorem 5 to
bridge from SQL-flavoured list specifications down to the canonical
cover that FASTOD produced.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Union

from repro.core.axioms_set import InferenceEngine
from repro.core.fastod import discover_ods
from repro.core.mapping import map_list_od
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    as_spec,
)
from repro.core.results import DiscoveryResult
from repro.relation.table import Relation


class ODIndex:
    """Dependency knowledge base with optimizer-facing queries.

    Completeness note: inference is complete when the cover is a
    discovery result for the instance being optimized (every valid OD
    then has a minimal generator in the cover); for hand-assembled
    covers it is sound but may miss consequences of the Chain axiom —
    general OD implication is co-NP-complete.
    """

    def __init__(self, fds: Iterable[CanonicalFD] = (),
                 ocds: Iterable[CanonicalOCD] = ()):
        self._fds: List[CanonicalFD] = list(fds)
        self._ocds: List[CanonicalOCD] = list(ocds)
        self._engine = InferenceEngine([*self._fds, *self._ocds])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: DiscoveryResult) -> "ODIndex":
        return cls(result.fds, result.ocds)

    @classmethod
    def discover(cls, relation: Relation, **kwargs) -> "ODIndex":
        """Run FASTOD on the relation and index the result."""
        return cls.from_result(discover_ods(relation, **kwargs))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def fds(self) -> List[CanonicalFD]:
        return list(self._fds)

    @property
    def ocds(self) -> List[CanonicalOCD]:
        return list(self._ocds)

    @property
    def engine(self) -> InferenceEngine:
        return self._engine

    def __len__(self) -> int:
        return len(self._fds) + len(self._ocds)

    # ------------------------------------------------------------------
    # optimizer-facing questions
    # ------------------------------------------------------------------
    def attribute_closure(self, attributes: Iterable[str]) -> Set[str]:
        """FD closure of an attribute set under the indexed cover."""
        return self._engine.attribute_closure(attributes)

    def is_constant(self, context: Iterable[str], attribute: str) -> bool:
        """Does ``{context}: [] ↦ attribute`` follow from the cover?"""
        return self._engine.implies_fd(
            CanonicalFD(frozenset(context), attribute))

    def is_order_compatible(self, context: Iterable[str], left: str,
                            right: str) -> bool:
        """Does ``{context}: left ~ right`` follow from the cover?"""
        return self._engine.implies_ocd(
            CanonicalOCD(frozenset(context), left, right))

    def implies(self, od: Union[CanonicalFD, CanonicalOCD]) -> bool:
        return self._engine.implies(od)

    def implies_list_od(self,
                        od: Union[ListOD, Sequence[str]],
                        rhs: Union[OrderSpec, Sequence[str], None] = None
                        ) -> bool:
        """Does ``X ↦ Y`` follow from the cover?

        Accepts either a :class:`ListOD` or two specs.  Decomposed via
        Theorem 5: all mapped canonical ODs must be implied.
        """
        if rhs is not None:
            od = ListOD(as_spec(od), as_spec(rhs))
        image = map_list_od(od)
        return all(self._engine.implies(part) for part in image.all_ods)

    def implies_order_compatibility(self, compat: OrderCompatibility
                                    ) -> bool:
        """Does ``X ~ Y`` follow from the cover (Theorem 4)?"""
        image = map_list_od(ListOD(compat.lhs, compat.rhs))
        return all(self._engine.implies(part) for part in image.ocds)

    def implies_order_equivalence(self, lhs, rhs) -> bool:
        """Does ``X ↔ Y`` follow from the cover?"""
        forward = ListOD(as_spec(lhs), as_spec(rhs))
        return (self.implies_list_od(forward)
                and self.implies_list_od(forward.reversed()))
