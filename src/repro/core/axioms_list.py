"""The list-based axiomatization for ODs (Figure 1, from [22]).

Executable constructors for the six axioms — Reflexivity, Prefix,
Transitivity, Normalization, Suffix, Chain — plus the derived Union,
Downward Closure and Replace rules the paper's proofs invoke.  The
property-based tests check soundness on data: whenever all premises
hold on an instance, the conclusion holds too.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.core.od import ListOD, OrderCompatibility, OrderSpec, as_spec
from repro.errors import DependencyError

Spec = Union[OrderSpec, Sequence[str]]


def reflexivity(lhs: Spec, extra: Spec = ()) -> ListOD:
    """Axiom 1: ``XY ↦ X``."""
    lhs = as_spec(lhs)
    return ListOD(lhs.concat(as_spec(extra)), lhs)


def prefix(front: Spec, od: ListOD) -> ListOD:
    """Axiom 2: from ``X ↦ Y`` infer ``ZX ↦ ZY``."""
    front = as_spec(front)
    return ListOD(front.concat(od.lhs), front.concat(od.rhs))


def transitivity(first: ListOD, second: ListOD) -> ListOD:
    """Axiom 3: from ``X ↦ Y`` and ``Y ↦ Z`` infer ``X ↦ Z``."""
    if first.rhs != second.lhs:
        raise DependencyError(
            f"Transitivity needs matching middle specs; got "
            f"{first} and {second}")
    return ListOD(first.lhs, second.rhs)


def normalization(front: Spec, repeated: Spec, middle: Spec,
                  tail: Spec) -> Tuple[ListOD, ListOD]:
    """Axiom 4: ``WXYXV ↔ WXYV`` — returns both directions.

    Arguments name the segments: ``front`` = W, ``repeated`` = X,
    ``middle`` = Y, ``tail`` = V.
    """
    front, repeated = as_spec(front), as_spec(repeated)
    middle, tail = as_spec(middle), as_spec(tail)
    long = front.concat(repeated).concat(middle).concat(repeated).concat(tail)
    short = front.concat(repeated).concat(middle).concat(tail)
    return ListOD(long, short), ListOD(short, long)


def suffix(od: ListOD) -> Tuple[ListOD, ListOD]:
    """Axiom 5: from ``X ↦ Y`` infer ``X ↔ YX`` (both directions)."""
    merged = od.rhs.concat(od.lhs)
    return ListOD(od.lhs, merged), ListOD(merged, od.lhs)


def chain(compat_chain: Sequence[OrderCompatibility],
          bridges: Sequence[OrderCompatibility]) -> OrderCompatibility:
    """Axiom 6 (Chain).

    ``compat_chain`` is ``X ~ Y_1, Y_1 ~ Y_2, ..., Y_n ~ Z`` (each link
    must share its right spec with the next link's left spec);
    ``bridges`` are ``Y_iX ~ Y_iZ`` for every ``i``.  Concludes
    ``X ~ Z``.
    """
    if not compat_chain:
        raise DependencyError("Chain needs at least one compatibility link")
    for left, right in zip(compat_chain, compat_chain[1:]):
        if left.rhs != right.lhs:
            raise DependencyError(
                f"Chain links must share middles; got {left} then {right}")
    x_spec = compat_chain[0].lhs
    z_spec = compat_chain[-1].rhs
    middles = [link.rhs for link in compat_chain[:-1]]
    expected = [
        (middle.concat(x_spec).attrs, middle.concat(z_spec).attrs)
        for middle in middles
    ]
    actual = {(bridge.lhs.attrs, bridge.rhs.attrs) for bridge in bridges}
    for pair in expected:
        if pair not in actual:
            raise DependencyError(
                f"Chain is missing bridge premise "
                f"{OrderSpec(pair[0])} ~ {OrderSpec(pair[1])}")
    return OrderCompatibility(x_spec, z_spec)


# ----------------------------------------------------------------------
# derived rules used in the paper's proofs
# ----------------------------------------------------------------------
def union(first: ListOD, second: ListOD) -> ListOD:
    """Union [22]: from ``X ↦ Y`` and ``X ↦ Z`` infer ``X ↦ YZ``."""
    if first.lhs != second.lhs:
        raise DependencyError(
            f"Union needs equal left sides; got {first} and {second}")
    return ListOD(first.lhs, first.rhs.concat(second.rhs))


def downward_closure(compat: OrderCompatibility,
                     keep_lhs: int, keep_rhs: int) -> OrderCompatibility:
    """Downward Closure [22]: from ``XZ ~ YV`` infer ``X ~ Y`` for the
    prefixes of the given lengths."""
    return OrderCompatibility(compat.lhs.prefix(keep_lhs),
                              compat.rhs.prefix(keep_rhs))


def replace(front: Spec, equal_left: Spec, equal_right: Spec,
            tail: Spec) -> Tuple[ListOD, ListOD]:
    """Replace [22]: if ``M ↔ N`` then ``XMZ ↔ XNZ`` (shape-level;
    the ``M ↔ N`` premise is validated on data by the caller/tests)."""
    front, tail = as_spec(front), as_spec(tail)
    left = front.concat(as_spec(equal_left)).concat(tail)
    right = front.concat(as_spec(equal_right)).concat(tail)
    return ListOD(left, right), ListOD(right, left)


def theorem1_decomposition(od: ListOD) -> Tuple[ListOD, OrderCompatibility]:
    """Theorem 1: ``X ↦ Y`` iff ``X ↦ XY`` and ``X ~ Y``.

    Returns the two right-hand-side statements for the given OD.
    """
    return (ListOD(od.lhs, od.lhs.concat(od.rhs)),
            OrderCompatibility(od.lhs, od.rhs))


def theorem2_fd_form(lhs: Spec, rhs: Spec) -> ListOD:
    """Theorem 2: the FD ``X → Y`` as the OD ``X ↦ XY`` (any
    permutations of the sets work; we use the given orders)."""
    lhs, rhs = as_spec(lhs), as_spec(rhs)
    return ListOD(lhs, lhs.concat(rhs))


def all_axiom_instances(names: Sequence[str],
                        max_len: int = 2) -> List[ListOD]:
    """Small generator of Reflexivity instances over a schema — handy
    seeds for the soundness property tests."""
    from itertools import permutations

    out: List[ListOD] = []
    for length in range(1, max_len + 1):
        for perm in permutations(names, length):
            for split in range(len(perm) + 1):
                out.append(reflexivity(perm[:split], perm[split:]))
    return out
