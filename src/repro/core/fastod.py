"""FASTOD: complete, minimal discovery of set-based canonical ODs.

Implements Algorithms 1-4 of the paper:

* level-wise sweep of the set-containment lattice (`Algorithm 1`),
* Apriori-style level generation (`Algorithm 2`,
  :mod:`repro.core.lattice`),
* candidate sets ``C_c+`` / ``C_s+`` with minimality checks
  (`Algorithm 3`, :mod:`repro.core.candidates`),
* level pruning when both candidate sets empty (`Algorithm 4`,
  Lemma 11),
* stripped partitions with linear products and the error-rate FD test,
  plus key pruning (Section 4.6, Lemmas 12-14).

The traversal itself lives in :mod:`repro.engine`: a
:class:`~repro.engine.LatticePlanner` owns level iteration,
candidate-set mutation, pruning, and the deadline budget, emitting
typed tasks that a :class:`~repro.engine.PartitionBackend` resolves
against the flat NumPy stripped partitions of
:mod:`repro.partitions.partition`.  :class:`FastOD` is the thin
partition-backed entry point: it wires the relation's encoding, an
optional :class:`~repro.partitions.cache.PartitionCache`, and an
executor together, then runs the shared planner.

Since the nodes of one level are independent, the per-level work also
shards across processes: with ``FastODConfig(workers=N)`` (or
``REPRO_WORKERS``), partition products and OCD swap scans run on a
shared-memory :class:`repro.parallel.WorkerPool` through the engine's
:class:`~repro.engine.PoolExecutor`, while the planner keeps every
candidate-set mutation (``cc``/``cs`` updates, Algorithm 4 pruning)
serial and applies worker verdicts in deterministic task order — so
parallel results are byte-identical to ``workers=1``.  Levels whose
partitions hold fewer grouped rows than the serial fallback threshold
never leave the coordinator.

Toggles on :class:`FastODConfig` disable the pruning families to
reproduce the paper's *FASTOD-No Pruning* ablations (Figures 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.results import DiscoveryResult
from repro.engine.budget import DeadlineBudget
from repro.engine.executors import make_executor
from repro.engine.planner import LatticePlanner, PartitionBackend
from repro.parallel.pool import WorkerPool
from repro.partitions.cache import PartitionCache
from repro.relation.table import Relation


@dataclass
class FastODConfig:
    """Knobs for a FASTOD run.

    minimality_pruning:
        Maintain ``C_c+``/``C_s+`` and emit only minimal ODs (the real
        algorithm).  When off, every valid non-trivial canonical OD at
        every lattice node is validated and emitted — the paper's
        *FASTOD-No Pruning* mode used for Exp-5/Exp-6.
    level_pruning:
        Delete nodes whose candidate sets are both empty (Algorithm 4).
        Only meaningful while minimality pruning is on.
    key_pruning:
        Skip validation scans when the context is a superkey
        (Lemmas 12-13).  Never changes results, only work.
    max_level:
        Stop after contexts of this size (``None`` = run to the top).
    timeout_seconds:
        Best-effort wall-clock budget; results so far are returned with
        ``timed_out=True``.  One :class:`~repro.engine.DeadlineBudget`
        is shared by every layer: it is checked between lattice nodes,
        between the FD and OCD phases of a level, between individual
        validation scans, and cooperatively inside parallel workers —
        so one huge node cannot overshoot the budget by a whole level.
    workers:
        Size of the shared-memory worker pool for level-wise products
        and validation scans.  ``None`` defers to the
        ``REPRO_WORKERS`` environment variable; 1 (the default
        resolution) runs fully serial.  Results are byte-identical
        either way.
    parallel_min_grouped_rows:
        Serial-fallback threshold: a level dispatches to the pool only
        when its partitions hold at least this many grouped rows
        (``None`` = the package default,
        :data:`repro.parallel.PARALLEL_MIN_GROUPED_ROWS`).  Mostly a
        testing knob — set 0 to force every level through the pool.
    kernel_backend:
        Which partition-kernel implementation to run the hot loops on:
        ``"reference"`` (pure NumPy), ``"compiled"`` (C via ctypes),
        or ``"auto"`` (compiled when buildable, else reference).
        ``None`` defers to the ``REPRO_KERNELS`` environment variable.
        Backends are byte-identical by contract, so this is a
        work-shaping knob like ``workers``.
    """

    minimality_pruning: bool = True
    level_pruning: bool = True
    key_pruning: bool = True
    max_level: Optional[int] = None
    timeout_seconds: Optional[float] = None
    workers: Optional[int] = None
    parallel_min_grouped_rows: Optional[int] = None
    kernel_backend: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "minimality_pruning": self.minimality_pruning,
            "level_pruning": self.level_pruning,
            "key_pruning": self.key_pruning,
            "max_level": self.max_level,
            "timeout_seconds": self.timeout_seconds,
            "workers": self.workers,
            "parallel_min_grouped_rows": self.parallel_min_grouped_rows,
            "kernel_backend": self.kernel_backend,
        }

    def canonical_dict(self) -> Dict[str, object]:
        """Only the knobs that can change a *completed* run's output.

        ``key_pruning``, ``workers``, ``parallel_min_grouped_rows``
        and ``kernel_backend`` never alter results (they are
        work-shaping knobs; parallel runs and both kernel backends are
        byte-identical by construction), and ``timeout_seconds``
        only matters for runs that actually time out — which the
        result store refuses to cache.  ``level_pruning`` is
        normalised to False when minimality pruning is off, where it
        has no effect.
        """
        return {
            "minimality_pruning": self.minimality_pruning,
            "level_pruning": (self.level_pruning
                              and self.minimality_pruning),
            "max_level": self.max_level,
        }

    def canonical_key(self) -> str:
        """A short stable slug of :meth:`canonical_dict` — the second
        half of the service result store's ``(fingerprint, config)``
        cache key, and a safe filename component.

        >>> FastODConfig().canonical_key()
        'min1-lvl1-maxall'
        >>> FastODConfig(workers=4).canonical_key()   # work-shaping only
        'min1-lvl1-maxall'
        """
        canonical = self.canonical_dict()
        max_level = canonical["max_level"]
        return (f"min{int(bool(canonical['minimality_pruning']))}"
                f"-lvl{int(bool(canonical['level_pruning']))}"
                f"-max{'all' if max_level is None else int(max_level)}")


class FastOD:
    """One discovery run over one relation instance.

    >>> from repro.datasets import employees
    >>> result = FastOD(employees()).run()
    >>> any(str(od) == "{posit}: [] -> bin" for od in result.fds)
    True
    """

    def __init__(self, relation: Relation,
                 config: Optional[FastODConfig] = None,
                 cache: Optional[PartitionCache] = None,
                 pool: Optional[WorkerPool] = None):
        self._relation = relation
        self._encoded = relation.encode()
        self._config = config or FastODConfig()
        if cache is not None and cache.relation is not self._encoded:
            raise ValueError(
                "the partition cache must wrap this relation's encoding")
        self._cache = cache
        if pool is not None and pool.relation is not self._encoded:
            raise ValueError(
                "the worker pool must wrap this relation's encoding")
        self._pool = pool

    # ------------------------------------------------------------------
    # public entry point (Algorithm 1, via the unified engine)
    # ------------------------------------------------------------------
    def run(self, budget: Optional[DeadlineBudget] = None
            ) -> DiscoveryResult:
        """Run discovery.  ``budget`` injects an externally owned
        :class:`~repro.engine.DeadlineBudget` (the service job
        scheduler's cancellation handle); by default one is built from
        ``config.timeout_seconds``."""
        config = self._config
        if budget is None:
            budget = DeadlineBudget(config.timeout_seconds)
        executor = make_executor(
            self._encoded, workers=config.workers, pool=self._pool,
            min_grouped_rows=config.parallel_min_grouped_rows,
            kernel_backend=config.kernel_backend)
        backend = PartitionBackend(self._encoded, config, executor,
                                   budget, cache=self._cache)
        planner = LatticePlanner(
            self._encoded.names, config, backend, budget,
            algorithm=("FASTOD" if config.minimality_pruning
                       else "FASTOD-NoPruning"),
            n_rows=self._encoded.n_rows)
        try:
            return planner.run()
        finally:
            # an owned pool dies with the run; injected pools belong
            # to the caller and survive for the next run
            executor.close()


def discover_ods(relation: Relation, **config_kwargs) -> DiscoveryResult:
    """Convenience wrapper: run FASTOD with keyword config options.

    >>> from repro.datasets import employees
    >>> discover_ods(employees()).n_ods > 0
    True
    """
    return FastOD(relation, FastODConfig(**config_kwargs)).run()
