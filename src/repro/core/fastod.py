"""FASTOD: complete, minimal discovery of set-based canonical ODs.

Implements Algorithms 1-4 of the paper:

* level-wise sweep of the set-containment lattice (`Algorithm 1`),
* Apriori-style level generation (`Algorithm 2`,
  :mod:`repro.core.lattice`),
* candidate sets ``C_c+`` / ``C_s+`` with minimality checks
  (`Algorithm 3`, :mod:`repro.core.candidates`),
* level pruning when both candidate sets empty (`Algorithm 4`,
  Lemma 11),
* stripped partitions with linear products and the error-rate FD test,
  plus key pruning (Section 4.6, Lemmas 12-14).

Partitions use the flat ``rows``/``offsets`` NumPy layout of
:mod:`repro.partitions.partition`: level products
(:meth:`StrippedPartition.product`) resolve in one vectorized sort of
the grouped rows, the FD error test reads ``e(X)`` in O(1) off array
lengths, and the OCD swap scan (:func:`is_compatible_in_classes`)
checks every context class in a single ``lexsort`` + segmented
prefix-max pass instead of per-class Python scans.

Toggles on :class:`FastODConfig` disable the pruning families to
reproduce the paper's *FASTOD-No Pruning* ablations (Figures 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.candidates import (
    LatticeNode,
    context_names,
    fill_candidate_sets,
    prune_empty_nodes,
)
from repro.core.lattice import next_level_masks, parents_for_partition
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult, LevelStats
from repro.core.validation import is_compatible_in_classes
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition
from repro.relation.schema import iter_bits
from repro.relation.table import Relation


@dataclass
class FastODConfig:
    """Knobs for a FASTOD run.

    minimality_pruning:
        Maintain ``C_c+``/``C_s+`` and emit only minimal ODs (the real
        algorithm).  When off, every valid non-trivial canonical OD at
        every lattice node is validated and emitted — the paper's
        *FASTOD-No Pruning* mode used for Exp-5/Exp-6.
    level_pruning:
        Delete nodes whose candidate sets are both empty (Algorithm 4).
        Only meaningful while minimality pruning is on.
    key_pruning:
        Skip validation scans when the context is a superkey
        (Lemmas 12-13).  Never changes results, only work.
    max_level:
        Stop after contexts of this size (``None`` = run to the top).
    timeout_seconds:
        Best-effort wall-clock budget; results so far are returned with
        ``timed_out=True``.
    """

    minimality_pruning: bool = True
    level_pruning: bool = True
    key_pruning: bool = True
    max_level: Optional[int] = None
    timeout_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "minimality_pruning": self.minimality_pruning,
            "level_pruning": self.level_pruning,
            "key_pruning": self.key_pruning,
            "max_level": self.max_level,
            "timeout_seconds": self.timeout_seconds,
        }


class FastOD:
    """One discovery run over one relation instance.

    >>> from repro.datasets import employees
    >>> result = FastOD(employees()).run()
    >>> any(str(od) == "{posit}: [] -> bin" for od in result.fds)
    True
    """

    def __init__(self, relation: Relation,
                 config: Optional[FastODConfig] = None,
                 cache: Optional["PartitionCache"] = None):
        self._relation = relation
        self._encoded = relation.encode()
        self._config = config or FastODConfig()
        self._names = self._encoded.names
        self._arity = self._encoded.arity
        self._full_mask = (1 << self._arity) - 1
        if cache is not None and cache.relation is not self._encoded:
            raise ValueError(
                "the partition cache must wrap this relation's encoding")
        self._cache = cache

    # ------------------------------------------------------------------
    # public entry point (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self) -> DiscoveryResult:
        config = self._config
        started = time.perf_counter()
        deadline = (started + config.timeout_seconds
                    if config.timeout_seconds is not None else None)

        result = DiscoveryResult(
            algorithm="FASTOD" if config.minimality_pruning
            else "FASTOD-NoPruning",
            attribute_names=self._names,
            n_rows=self._encoded.n_rows,
            minimal=config.minimality_pruning,
            config=config.to_dict(),
        )

        n_rows = self._encoded.n_rows
        level0 = {
            0: LatticeNode(0, StrippedPartition.single_class(n_rows),
                           cc=self._full_mask, cs=set())
        }
        current: Dict[int, LatticeNode] = {
            1 << a: LatticeNode(1 << a, self._attribute_partition(a))
            for a in range(self._arity)
        }
        previous = level0
        before_previous: Dict[int, LatticeNode] = {}

        level = 1
        while current:
            if config.max_level is not None and level > config.max_level:
                break
            stats = LevelStats(level=level, n_nodes=len(current))
            level_started = time.perf_counter()

            self._compute_candidate_sets(level, current, previous)
            timed_out = self._compute_ods(
                level, current, previous, before_previous, result, stats,
                deadline)
            stats.n_nodes_pruned = self._prune_level(level, current)
            stats.seconds = time.perf_counter() - level_started
            result.level_stats.append(stats)
            if timed_out:
                result.timed_out = True
                break

            next_nodes = self._calculate_next_level(current)
            before_previous = previous
            previous = current
            current = next_nodes
            level += 1

        result.elapsed_seconds = time.perf_counter() - started
        if self._cache is not None:
            result.cache_stats = self._cache.stats()
        return result

    # ------------------------------------------------------------------
    # partition sourcing (optionally through a shared PartitionCache)
    # ------------------------------------------------------------------
    def _attribute_partition(self, attribute: int) -> StrippedPartition:
        if self._cache is not None:
            return self._cache.get(1 << attribute)
        return StrippedPartition.for_attribute(self._encoded, attribute)

    # ------------------------------------------------------------------
    # candidate sets (Algorithm 3, lines 1-8)
    # ------------------------------------------------------------------
    def _compute_candidate_sets(self, level: int,
                                current: Dict[int, LatticeNode],
                                previous: Dict[int, LatticeNode]) -> None:
        fill_candidate_sets(level, current, previous, self._full_mask,
                            self._config.minimality_pruning)

    # ------------------------------------------------------------------
    # dependency checks (Algorithm 3, lines 9-25)
    # ------------------------------------------------------------------
    def _compute_ods(self, level: int, current: Dict[int, LatticeNode],
                     previous: Dict[int, LatticeNode],
                     before_previous: Dict[int, LatticeNode],
                     result: DiscoveryResult, stats: LevelStats,
                     deadline: Optional[float]) -> bool:
        """Returns True when the deadline was hit mid-level."""
        config = self._config
        minimal = config.minimality_pruning
        for mask, node in current.items():
            if deadline is not None and time.perf_counter() > deadline:
                return True
            # --- constancy ODs  X \ A: [] -> A -------------------------
            for attribute in list(iter_bits(mask & node.cc)):
                bit = 1 << attribute
                context_node = previous[mask ^ bit]
                stats.n_fd_candidates += 1
                if self._fd_valid(context_node, node):
                    result.fds.append(CanonicalFD(
                        context_names(mask ^ bit, self._names),
                        self._names[attribute]))
                    stats.n_fds_found += 1
                    if minimal:
                        node.cc &= ~bit          # remove A
                        node.cc &= mask          # remove all B in R \ X
            # --- order compatibility ODs  X \ {A,B}: A ~ B --------------
            if level < 2:
                continue
            for pair in sorted(node.cs):
                a, b = pair
                bit_a, bit_b = 1 << a, 1 << b
                if minimal:
                    # Algorithm 3 line 18: minimality via C_c+ of parents.
                    if (not previous[mask ^ bit_b].cc & bit_a
                            or not previous[mask ^ bit_a].cc & bit_b):
                        node.cs.discard(pair)
                        continue
                stats.n_ocd_candidates += 1
                context_partition = self._ocd_context_partition(
                    level, mask, bit_a, bit_b, before_previous)
                if self._ocd_valid(context_partition, a, b):
                    result.ocds.append(CanonicalOCD(
                        context_names(mask ^ bit_a ^ bit_b, self._names),
                        self._names[a], self._names[b]))
                    stats.n_ocds_found += 1
                    if minimal:
                        node.cs.discard(pair)
        return False

    def _fd_valid(self, context_node: LatticeNode,
                  node: LatticeNode) -> bool:
        """``X \\ A: [] ↦ A`` via the partition error test: the FD holds
        iff refining the context by ``A`` merges nothing, i.e.
        ``e(Π_{X\\A}) == e(Π_X)`` (Section 4.6).  A superkey context has
        error 0 on both sides, which is exactly Lemma 12's shortcut."""
        if self._config.key_pruning and context_node.partition.is_superkey():
            return True
        return context_node.partition.error == node.partition.error

    def _ocd_context_partition(self, level: int, mask: int, bit_a: int,
                               bit_b: int,
                               before_previous: Dict[int, LatticeNode]
                               ) -> StrippedPartition:
        """Π* of the context ``X \\ {A,B}`` — two levels down the
        lattice (the empty context at level 2)."""
        if level == 2:
            return StrippedPartition.single_class(self._encoded.n_rows)
        return before_previous[mask ^ bit_a ^ bit_b].partition

    def _ocd_valid(self, context: StrippedPartition, a: int,
                   b: int) -> bool:
        """``X \\ {A,B}: A ~ B`` — swap scan per context class.  A
        superkey context has no stripped classes, so the scan is free
        (Lemma 13's observation)."""
        if self._config.key_pruning and context.is_superkey():
            return True
        return is_compatible_in_classes(
            self._encoded.column(a), self._encoded.column(b), context)

    # ------------------------------------------------------------------
    # level pruning (Algorithm 4)
    # ------------------------------------------------------------------
    def _prune_level(self, level: int,
                     current: Dict[int, LatticeNode]) -> int:
        config = self._config
        if (not config.level_pruning or not config.minimality_pruning
                or level < 2):
            return 0
        return prune_empty_nodes(current)

    # ------------------------------------------------------------------
    # next level (Algorithm 2 + partition products)
    # ------------------------------------------------------------------
    def _calculate_next_level(self, current: Dict[int, LatticeNode]
                              ) -> Dict[int, LatticeNode]:
        cache = self._cache
        next_nodes: Dict[int, LatticeNode] = {}
        for mask in next_level_masks(current.keys()):
            partition = cache.peek(mask) if cache is not None else None
            if partition is None:
                left, right = parents_for_partition(mask)
                partition = current[left].partition.product(
                    current[right].partition)
                if cache is not None:
                    cache.put(mask, partition)
            next_nodes[mask] = LatticeNode(mask, partition)
        return next_nodes


def discover_ods(relation: Relation, **config_kwargs) -> DiscoveryResult:
    """Convenience wrapper: run FASTOD with keyword config options.

    >>> from repro.datasets import employees
    >>> discover_ods(employees()).n_ods > 0
    True
    """
    return FastOD(relation, FastODConfig(**config_kwargs)).run()
