"""FASTOD: complete, minimal discovery of set-based canonical ODs.

Implements Algorithms 1-4 of the paper:

* level-wise sweep of the set-containment lattice (`Algorithm 1`),
* Apriori-style level generation (`Algorithm 2`,
  :mod:`repro.core.lattice`),
* candidate sets ``C_c+`` / ``C_s+`` with minimality checks
  (`Algorithm 3`, :mod:`repro.core.candidates`),
* level pruning when both candidate sets empty (`Algorithm 4`,
  Lemma 11),
* stripped partitions with linear products and the error-rate FD test,
  plus key pruning (Section 4.6, Lemmas 12-14).

Partitions use the flat ``rows``/``offsets`` NumPy layout of
:mod:`repro.partitions.partition`: level products
(:meth:`StrippedPartition.product`) resolve in one vectorized sort of
the grouped rows, the FD error test reads ``e(X)`` in O(1) off array
lengths, and the OCD swap scan (:func:`is_compatible_in_classes`)
checks every context class in a single ``lexsort`` + segmented
prefix-max pass instead of per-class Python scans.

Since the nodes of one level are independent, the per-level work also
shards across processes: with ``FastODConfig(workers=N)`` (or
``REPRO_WORKERS``), partition products and OCD swap scans run on a
shared-memory :class:`repro.parallel.WorkerPool` while the coordinator
keeps every candidate-set mutation (``cc``/``cs`` updates, Algorithm 4
pruning) serial and applies worker verdicts in deterministic mask
order — so parallel results are byte-identical to ``workers=1``.
Levels whose partitions hold fewer grouped rows than the serial
fallback threshold never leave the coordinator.

Toggles on :class:`FastODConfig` disable the pruning families to
reproduce the paper's *FASTOD-No Pruning* ablations (Figures 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import (
    LatticeNode,
    context_names,
    fill_candidate_sets,
    prune_empty_nodes,
)
from repro.core.lattice import next_level_masks, parents_for_partition
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult, LevelStats
from repro.core.validation import is_compatible_in_classes
from repro.parallel.pool import (
    PARALLEL_MIN_GROUPED_ROWS,
    WorkerPool,
    resolve_workers,
)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition
from repro.relation.schema import iter_bits
from repro.relation.table import Relation

#: An OCD validation unit: ``(node mask, (a, b))`` in apply order.
OcdTask = Tuple[int, Tuple[int, int]]


@dataclass
class FastODConfig:
    """Knobs for a FASTOD run.

    minimality_pruning:
        Maintain ``C_c+``/``C_s+`` and emit only minimal ODs (the real
        algorithm).  When off, every valid non-trivial canonical OD at
        every lattice node is validated and emitted — the paper's
        *FASTOD-No Pruning* mode used for Exp-5/Exp-6.
    level_pruning:
        Delete nodes whose candidate sets are both empty (Algorithm 4).
        Only meaningful while minimality pruning is on.
    key_pruning:
        Skip validation scans when the context is a superkey
        (Lemmas 12-13).  Never changes results, only work.
    max_level:
        Stop after contexts of this size (``None`` = run to the top).
    timeout_seconds:
        Best-effort wall-clock budget; results so far are returned with
        ``timed_out=True``.  The deadline is checked between lattice
        nodes, between the FD and OCD phases of a level, between
        individual validation scans, and cooperatively inside parallel
        workers — so one huge node cannot overshoot the budget by a
        whole level.
    workers:
        Size of the shared-memory worker pool for level-wise products
        and validation scans.  ``None`` defers to the
        ``REPRO_WORKERS`` environment variable; 1 (the default
        resolution) runs fully serial.  Results are byte-identical
        either way.
    parallel_min_grouped_rows:
        Serial-fallback threshold: a level dispatches to the pool only
        when its partitions hold at least this many grouped rows
        (``None`` = the package default,
        :data:`repro.parallel.PARALLEL_MIN_GROUPED_ROWS`).  Mostly a
        testing knob — set 0 to force every level through the pool.
    """

    minimality_pruning: bool = True
    level_pruning: bool = True
    key_pruning: bool = True
    max_level: Optional[int] = None
    timeout_seconds: Optional[float] = None
    workers: Optional[int] = None
    parallel_min_grouped_rows: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "minimality_pruning": self.minimality_pruning,
            "level_pruning": self.level_pruning,
            "key_pruning": self.key_pruning,
            "max_level": self.max_level,
            "timeout_seconds": self.timeout_seconds,
            "workers": self.workers,
            "parallel_min_grouped_rows": self.parallel_min_grouped_rows,
        }


def _level_partition_bytes(*levels: Dict[int, LatticeNode]) -> int:
    """Resident partition bytes across lattice level dicts."""
    total = 0
    for nodes in levels:
        for node in nodes.values():
            partition = node.partition
            if partition is not None:
                total += partition.rows.nbytes + partition.offsets.nbytes
    return total


class FastOD:
    """One discovery run over one relation instance.

    >>> from repro.datasets import employees
    >>> result = FastOD(employees()).run()
    >>> any(str(od) == "{posit}: [] -> bin" for od in result.fds)
    True
    """

    def __init__(self, relation: Relation,
                 config: Optional[FastODConfig] = None,
                 cache: Optional["PartitionCache"] = None,
                 pool: Optional[WorkerPool] = None):
        self._relation = relation
        self._encoded = relation.encode()
        self._config = config or FastODConfig()
        self._names = self._encoded.names
        self._arity = self._encoded.arity
        self._full_mask = (1 << self._arity) - 1
        if cache is not None and cache.relation is not self._encoded:
            raise ValueError(
                "the partition cache must wrap this relation's encoding")
        self._cache = cache
        if pool is not None and pool.relation is not self._encoded:
            raise ValueError(
                "the worker pool must wrap this relation's encoding")
        self._pool = pool
        self._owned_pool: Optional[WorkerPool] = None
        # an explicit config.workers wins (the benchmark's projection
        # mode drives 4-worker sharding through a 1-process pool);
        # otherwise an injected pool sets the effective parallelism
        if self._config.workers is None and pool is not None:
            self._workers = pool.workers
        else:
            self._workers = resolve_workers(self._config.workers)
        threshold = self._config.parallel_min_grouped_rows
        self._parallel_threshold = (PARALLEL_MIN_GROUPED_ROWS
                                    if threshold is None else threshold)

    # ------------------------------------------------------------------
    # public entry point (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self) -> DiscoveryResult:
        try:
            return self._run()
        finally:
            if self._owned_pool is not None:
                self._owned_pool.shutdown()
                self._owned_pool = None

    def _run(self) -> DiscoveryResult:
        config = self._config
        started = time.perf_counter()
        deadline = (started + config.timeout_seconds
                    if config.timeout_seconds is not None else None)

        result = DiscoveryResult(
            algorithm="FASTOD" if config.minimality_pruning
            else "FASTOD-NoPruning",
            attribute_names=self._names,
            n_rows=self._encoded.n_rows,
            minimal=config.minimality_pruning,
            config=config.to_dict(),
        )

        n_rows = self._encoded.n_rows
        level0 = {
            0: LatticeNode(0, StrippedPartition.single_class(n_rows),
                           cc=self._full_mask, cs=set())
        }
        current: Dict[int, LatticeNode] = {
            1 << a: LatticeNode(1 << a, self._attribute_partition(a))
            for a in range(self._arity)
        }
        previous = level0
        before_previous: Dict[int, LatticeNode] = {}

        level = 1
        while current:
            if config.max_level is not None and level > config.max_level:
                break
            stats = LevelStats(level=level, n_nodes=len(current))
            level_started = time.perf_counter()
            stats.peak_partition_bytes = _level_partition_bytes(
                before_previous, previous, current)

            self._compute_candidate_sets(level, current, previous)
            timed_out = self._compute_ods(
                level, current, previous, before_previous, result, stats,
                deadline)
            # Π* two levels down were consumed for the last time by this
            # level's OCD contexts — release them before the next
            # level's products allocate, so at most three levels of
            # partitions are ever resident
            self._release_level(before_previous)
            before_previous = {}
            stats.n_nodes_pruned = self._prune_level(level, current)
            stats.seconds = time.perf_counter() - level_started
            result.level_stats.append(stats)
            if timed_out:
                result.timed_out = True
                break

            next_nodes = self._calculate_next_level(current, deadline)
            if next_nodes is None:     # deadline hit during products
                result.timed_out = True
                break
            before_previous = previous
            previous = current
            current = next_nodes
            level += 1

        result.elapsed_seconds = time.perf_counter() - started
        if self._cache is not None:
            result.cache_stats = self._cache.stats()
        return result

    # ------------------------------------------------------------------
    # partition sourcing (optionally through a shared PartitionCache)
    # ------------------------------------------------------------------
    def _attribute_partition(self, attribute: int) -> StrippedPartition:
        if self._cache is not None:
            return self._cache.get(1 << attribute)
        return StrippedPartition.for_attribute(self._encoded, attribute)

    def _release_level(self, nodes: Dict[int, LatticeNode]) -> None:
        """Drop a spent level's partitions (and, for bounded caches,
        their composite cache entries — unbounded caches keep retaining
        everything by contract)."""
        if not nodes:
            return
        if self._cache is not None and self._cache.max_entries is not None:
            self._cache.invalidate(
                [mask for mask in nodes if mask & (mask - 1)])
        for node in nodes.values():
            node.partition = None

    # ------------------------------------------------------------------
    # worker pool (lazy; only spun up when a level crosses the
    # serial-fallback threshold)
    # ------------------------------------------------------------------
    def _pool_for(self, n_tasks: int, grouped_rows: int
                  ) -> Optional[WorkerPool]:
        if self._workers < 2 or n_tasks < 2:
            return None
        if grouped_rows < self._parallel_threshold:
            return None
        if self._pool is not None:
            return self._pool
        if self._owned_pool is None:
            self._owned_pool = WorkerPool(self._encoded, self._workers)
        return self._owned_pool

    # ------------------------------------------------------------------
    # candidate sets (Algorithm 3, lines 1-8)
    # ------------------------------------------------------------------
    def _compute_candidate_sets(self, level: int,
                                current: Dict[int, LatticeNode],
                                previous: Dict[int, LatticeNode]) -> None:
        fill_candidate_sets(level, current, previous, self._full_mask,
                            self._config.minimality_pruning)

    # ------------------------------------------------------------------
    # dependency checks (Algorithm 3, lines 9-25)
    # ------------------------------------------------------------------
    @staticmethod
    def _deadline_hit(deadline: Optional[float]) -> bool:
        return deadline is not None and time.perf_counter() > deadline

    def _compute_ods(self, level: int, current: Dict[int, LatticeNode],
                     previous: Dict[int, LatticeNode],
                     before_previous: Dict[int, LatticeNode],
                     result: DiscoveryResult, stats: LevelStats,
                     deadline: Optional[float]) -> bool:
        """Returns True when the deadline was hit mid-level.

        Runs in four phases so the scan work can shard across the pool
        while all candidate-set mutations stay serial:

        1. constancy ODs for every node (O(1) partition error tests);
        2. enumerate the level's OCD candidates (minimality pre-checks
           against the *previous* level's ``C_c+``, which this level
           never mutates — so enumeration order cannot matter);
        3. swap-scan verdicts, parallel or serial;
        4. apply verdicts in the serial engine's node/pair order
           (emission order and ``cs`` mutations byte-identical to
           ``workers=1``).
        """
        config = self._config
        minimal = config.minimality_pruning
        for mask, node in current.items():
            if self._deadline_hit(deadline):
                return True
            # --- constancy ODs  X \ A: [] -> A -------------------------
            for attribute in list(iter_bits(mask & node.cc)):
                bit = 1 << attribute
                context_node = previous[mask ^ bit]
                stats.n_fd_candidates += 1
                if self._fd_valid(context_node, node):
                    result.fds.append(CanonicalFD(
                        context_names(mask ^ bit, self._names),
                        self._names[attribute]))
                    stats.n_fds_found += 1
                    if minimal:
                        node.cc &= ~bit          # remove A
                        node.cc &= mask          # remove all B in R \ X
        if level < 2:
            return False
        # one huge FD phase must not push the OCD scans past the
        # budget: re-check before any swap scanning starts
        if self._deadline_hit(deadline):
            return True

        # --- order compatibility ODs  X \ {A,B}: A ~ B ----------------
        tasks: List[OcdTask] = []
        for mask, node in current.items():
            for pair in sorted(node.cs):
                a, b = pair
                if minimal:
                    # Algorithm 3 line 18: minimality via C_c+ of
                    # parents (fixed since the previous level).
                    if (not previous[mask ^ (1 << b)].cc & (1 << a)
                            or not previous[mask ^ (1 << a)].cc & (1 << b)):
                        node.cs.discard(pair)
                        continue
                stats.n_ocd_candidates += 1
                tasks.append((mask, pair))

        verdicts, timed_out = self._ocd_verdicts(
            level, tasks, before_previous, deadline)

        for mask, pair in tasks:
            verdict = verdicts.get((mask, pair))
            if verdict is None:
                continue   # the deadline cut this scan; keep the rest
            if verdict:
                a, b = pair
                result.ocds.append(CanonicalOCD(
                    context_names(mask ^ (1 << a) ^ (1 << b),
                                  self._names),
                    self._names[a], self._names[b]))
                stats.n_ocds_found += 1
                if minimal:
                    current[mask].cs.discard(pair)
        return timed_out

    def _ocd_verdicts(self, level: int, tasks: List[OcdTask],
                      before_previous: Dict[int, LatticeNode],
                      deadline: Optional[float]
                      ) -> Tuple[Dict[OcdTask, bool], bool]:
        """Swap-scan verdicts for one level's OCD candidates.

        Superkey contexts resolve O(1) on the coordinator (Lemma 13);
        the rest shard across the worker pool when the level is big
        enough, and fall back to the serial kernel otherwise.
        """
        verdicts: Dict[OcdTask, bool] = {}
        contexts: Dict[int, StrippedPartition] = {}
        scan_tasks: List[Tuple[OcdTask, int, str, int, int]] = []
        key_pruning = self._config.key_pruning
        grouped_rows = 0
        for task in tasks:
            mask, (a, b) = task
            context_mask = mask ^ (1 << a) ^ (1 << b)
            context = self._ocd_context_partition(
                level, mask, 1 << a, 1 << b, before_previous)
            if key_pruning and context.is_superkey():
                verdicts[task] = True
                continue
            if context_mask not in contexts:
                contexts[context_mask] = context
                grouped_rows += len(context.rows)
            scan_tasks.append((task, context_mask, "swap", a, b))
        if not scan_tasks:
            return verdicts, False

        pool = self._pool_for(len(scan_tasks), grouped_rows)
        if pool is not None:
            scanned, timed_out = pool.run_scans(contexts, scan_tasks,
                                                deadline)
            verdicts.update(scanned)
            return verdicts, timed_out

        for task, context_mask, _mode, a, b in scan_tasks:
            if self._deadline_hit(deadline):
                return verdicts, True
            verdicts[task] = is_compatible_in_classes(
                self._encoded.column(a), self._encoded.column(b),
                contexts[context_mask])
        return verdicts, False

    def _fd_valid(self, context_node: LatticeNode,
                  node: LatticeNode) -> bool:
        """``X \\ A: [] ↦ A`` via the partition error test: the FD holds
        iff refining the context by ``A`` merges nothing, i.e.
        ``e(Π_{X\\A}) == e(Π_X)`` (Section 4.6).  A superkey context has
        error 0 on both sides, which is exactly Lemma 12's shortcut."""
        if self._config.key_pruning and context_node.partition.is_superkey():
            return True
        return context_node.partition.error == node.partition.error

    def _ocd_context_partition(self, level: int, mask: int, bit_a: int,
                               bit_b: int,
                               before_previous: Dict[int, LatticeNode]
                               ) -> StrippedPartition:
        """Π* of the context ``X \\ {A,B}`` — two levels down the
        lattice (the empty context at level 2)."""
        if level == 2:
            return StrippedPartition.single_class(self._encoded.n_rows)
        return before_previous[mask ^ bit_a ^ bit_b].partition

    # ------------------------------------------------------------------
    # level pruning (Algorithm 4)
    # ------------------------------------------------------------------
    def _prune_level(self, level: int,
                     current: Dict[int, LatticeNode]) -> int:
        config = self._config
        if (not config.level_pruning or not config.minimality_pruning
                or level < 2):
            return 0
        return prune_empty_nodes(current)

    # ------------------------------------------------------------------
    # next level (Algorithm 2 + partition products)
    # ------------------------------------------------------------------
    def _calculate_next_level(self, current: Dict[int, LatticeNode],
                              deadline: Optional[float] = None
                              ) -> Optional[Dict[int, LatticeNode]]:
        """Algorithm 2 plus the partition products, pooled for big
        levels.  Returns ``None`` when the deadline expired before the
        level's partitions were all built (the caller flags the run
        timed out; a half-built level is never traversed)."""
        cache = self._cache
        partitions: Dict[int, Optional[StrippedPartition]] = {}
        pending: List[Tuple[int, int, int]] = []
        grouped_rows = 0
        parent_masks = set()
        for mask in next_level_masks(current.keys()):
            partition = cache.peek(mask) if cache is not None else None
            if partition is None:
                left, right = parents_for_partition(mask)
                pending.append((mask, left, right))
                parent_masks.add(left)
                parent_masks.add(right)
            partitions[mask] = partition
        for parent in parent_masks:
            grouped_rows += len(current[parent].partition.rows)

        if pending:
            pool = self._pool_for(len(pending), grouped_rows)
            if pool is not None:
                parents = {mask: current[mask].partition
                           for mask in parent_masks}
                computed, timed_out = pool.run_products(
                    parents, pending, deadline)
                if timed_out:
                    return None
            else:
                computed = {}
                for mask, left, right in pending:
                    if self._deadline_hit(deadline):
                        return None
                    computed[mask] = current[left].partition.product(
                        current[right].partition)
            for mask, _left, _right in pending:
                partition = computed[mask]
                partitions[mask] = partition
                if cache is not None:
                    cache.put(mask, partition)

        return {mask: LatticeNode(mask, partition)
                for mask, partition in partitions.items()}


def discover_ods(relation: Relation, **config_kwargs) -> DiscoveryResult:
    """Convenience wrapper: run FASTOD with keyword config options.

    >>> from repro.datasets import employees
    >>> discover_ods(employees()).n_ods > 0
    True
    """
    return FastOD(relation, FastODConfig(**config_kwargs)).run()
