"""Level-wise traversal of the set-containment lattice.

Implements Algorithm 2 (``calculateNextLevel``): candidate attribute
sets of size ``l + 1`` are produced by joining pairs of size-``l`` sets
that differ in exactly one attribute (the ``singleAttrDiffBlocks``
subroutine), then filtered by the Apriori condition that *all* their
size-``l`` subsets survived level ``l``.

This is the structural difference to the ORDER baseline: FASTOD walks
the ``2^|R|``-node set lattice; ORDER walks a factorial list lattice.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.relation.schema import iter_bits


def single_attr_diff_blocks(masks: Iterable[int]) -> Dict[int, List[int]]:
    """Group same-size attribute sets into join blocks.

    Two sets fall in the same block when they share all attributes
    except their highest one, i.e. they differ in a single attribute
    and agree on the rest — exactly the paper's "common subset of
    length ``l - 1``, differ in only one attribute", keyed here by the
    shared prefix so every join is generated exactly once.
    """
    blocks: Dict[int, List[int]] = {}
    for mask in masks:
        highest = 1 << (mask.bit_length() - 1)
        blocks.setdefault(mask ^ highest, []).append(highest)
    return blocks


def next_level_masks(masks: Iterable[int]) -> List[int]:
    """Algorithm 2: all size ``l+1`` sets whose size-``l`` subsets all
    appear in ``masks``."""
    present = set(masks)
    result: List[int] = []
    for prefix, highs in single_attr_diff_blocks(present).items():
        highs.sort()
        for i in range(len(highs)):
            for j in range(i + 1, len(highs)):
                candidate = prefix | highs[i] | highs[j]
                if _all_subsets_present(candidate, present):
                    result.append(candidate)
    result.sort()
    return result


def _all_subsets_present(mask: int, present: set) -> bool:
    for attribute in iter_bits(mask):
        if (mask ^ (1 << attribute)) not in present:
            return False
    return True


def parents_for_partition(mask: int) -> tuple:
    """Pick the two level ``l-1`` subsets whose partition product yields
    Π*_X (Section 4.6): drop the lowest attribute for one parent and
    the second-lowest for the other."""
    lowest = mask & -mask
    rest = mask ^ lowest
    second = rest & -rest
    return mask ^ lowest, mask ^ second
