"""Hybrid (sample-then-validate) OD discovery.

The lattice sweep costs ``O(2^|R|)`` node visits even when almost all
of them validate against the full relation.  The hybrid strategy —
in the spirit of HyFD-style profilers — runs exact FASTOD on a small
*sample*, then escalates only where the sample was too optimistic:

1. Any OD valid on ``r`` is valid on every subset of ``r`` (validity is
   a pairwise property), so the sample's minimal ODs are context-wise
   *lower bounds* for the真 full-data minimal ODs.
2. Each sample-minimal candidate is validated on the full relation;
   failures grow their context by one attribute (every such child is
   still sample-valid by Augmentation) and re-enter the queue.
3. The search therefore visits, per attribute (or pair), only the cone
   between the sample-minimal context and the true minimal contexts;
   a final subset filter restores exact minimality, and the Propagate
   rule is applied to OCDs against the *full-data* FDs.

The output provably equals FASTOD's (property-tested): every
minimal-on-full OD is reachable because its context contains some
sample-minimal context for the same attribute/pair, and the expansion
branches over all attributes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.fastod import FastOD, FastODConfig, discover_ods
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult
from repro.core.validation import (
    is_compatible_in_classes,
    is_constant_in_classes,
)
from repro.parallel.pool import (
    PARALLEL_MIN_ROWS,
    WorkerPool,
    resolve_workers,
)
from repro.partitions.cache import PartitionCache
from repro.relation.schema import bit_count, iter_bits
from repro.relation.table import Relation


def hybrid_discover(relation: Relation, *, sample_size: int = 100,
                    seed: int = 0,
                    workers: Optional[int] = None) -> DiscoveryResult:
    """Exact minimal OD discovery via a sample-guided lattice search.

    Produces the same complete, minimal set as
    :func:`repro.core.fastod.discover_ods`; only the work differs.
    Worthwhile when the relation is tall (validation dominates) and the
    sample is representative; degenerates gracefully — at worst the
    escalation walks the same lattice FASTOD would.

    With ``workers`` > 1 (or ``REPRO_WORKERS``) the full-data
    validations of each escalation wave — masks of equal context size,
    which are mutually independent — fan out over a shared-memory
    :class:`~repro.parallel.WorkerPool`; workers derive context
    partitions from their own partition caches over the shared rank
    columns.  The output is identical at any worker count.
    """
    started = time.perf_counter()
    sample = relation.sample(min(sample_size, relation.n_rows), seed=seed)
    sample_result = discover_ods(sample)

    encoded = relation.encode()
    cache = PartitionCache(encoded)
    names = encoded.names
    index = {name: i for i, name in enumerate(names)}
    full_mask = (1 << encoded.arity) - 1
    n_workers = resolve_workers(workers)
    pool: Optional[WorkerPool] = None

    def validate_wave(wave: List[int], mode: str, a: int,
                      b: int) -> List[bool]:
        """Full-data verdicts for one wave of contexts, pooled when the
        relation is big enough to amortize dispatch."""
        nonlocal pool
        if (n_workers < 2 or len(wave) < 2
                or encoded.n_rows < PARALLEL_MIN_ROWS):
            if mode == "const":
                return [is_constant_in_classes(
                    encoded.column(a), cache.get(mask)) for mask in wave]
            return [is_compatible_in_classes(
                encoded.column(a), encoded.column(b),
                cache.get(mask)) for mask in wave]
        if pool is None:
            pool = WorkerPool(encoded, n_workers)
        verdicts, _ = pool.run_validations(
            [(mask, mask, mode, a, b) for mask in wave])
        return [verdicts[mask] for mask in wave]

    try:
        return _hybrid_discover(
            sample_result, encoded, names, index, full_mask,
            validate_wave, sample_size, seed, started)
    finally:
        if pool is not None:
            pool.shutdown()


def _hybrid_discover(sample_result, encoded, names, index,
                     full_mask, validate_wave, sample_size, seed,
                     started) -> DiscoveryResult:
    def mask_of(context) -> int:
        mask = 0
        for name in context:
            mask |= 1 << index[name]
        return mask

    # ------------------------------------------------------------------
    # constancy ODs: escalate per attribute
    # ------------------------------------------------------------------
    valid_fd_masks: Dict[int, Set[int]] = {}
    for attribute in range(encoded.arity):
        seeds = [mask_of(fd.context)
                 for fd in sample_result.fds
                 if index[fd.attribute] == attribute]
        valid_fd_masks[attribute] = _escalate(
            seeds, attribute_bit=1 << attribute, full_mask=full_mask,
            validate=lambda wave, a=attribute: validate_wave(
                wave, "const", a, 0))

    fds: List[CanonicalFD] = []
    for attribute, masks in valid_fd_masks.items():
        for mask in _minimal_masks(masks):
            fds.append(CanonicalFD(
                frozenset(names[i] for i in iter_bits(mask)),
                names[attribute]))

    # ------------------------------------------------------------------
    # compatibility ODs: escalate per unordered pair
    # ------------------------------------------------------------------
    pair_seeds: Dict[Tuple[int, int], List[int]] = {}
    for ocd in sample_result.ocds:
        a, b = sorted((index[ocd.left], index[ocd.right]))
        pair_seeds.setdefault((a, b), []).append(mask_of(ocd.context))
    # A pair can also become minimal on full data where the sample saw
    # a constant instead (Propagate hid it): seed those pairs from the
    # sample's FDs as well.
    for fd in sample_result.fds:
        a = index[fd.attribute]
        for b in range(encoded.arity):
            if b == a:
                continue
            pair = tuple(sorted((a, b)))
            pair_seeds.setdefault(pair, []).append(mask_of(fd.context))

    ocds: List[CanonicalOCD] = []
    for (a, b), seeds in pair_seeds.items():
        forbidden = (1 << a) | (1 << b)
        seeds = [mask & ~forbidden for mask in seeds]
        valid_masks = _escalate(
            seeds, attribute_bit=forbidden, full_mask=full_mask,
            validate=lambda wave, a=a, b=b: validate_wave(
                wave, "swap", a, b))
        for mask in _minimal_masks(valid_masks):
            # Propagate: not minimal if either side is constant there
            if _constant_within(valid_fd_masks.get(a, set()), mask) or \
                    _constant_within(valid_fd_masks.get(b, set()), mask):
                continue
            ocds.append(CanonicalOCD(
                frozenset(names[i] for i in iter_bits(mask)),
                names[a], names[b]))

    result = DiscoveryResult(
        algorithm="FASTOD-Hybrid",
        attribute_names=names,
        n_rows=encoded.n_rows,
        fds=sorted(fds, key=CanonicalFD.sort_key),
        ocds=sorted(ocds, key=CanonicalOCD.sort_key),
        config={"sample_size": sample_size, "seed": seed},
    )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _escalate(seeds: List[int], *, attribute_bit: int, full_mask: int,
              validate) -> Set[int]:
    """Wave-wise BFS from sample-valid contexts to full-data-valid
    contexts.

    Contexts never include the target attribute(s) (``attribute_bit``).
    The frontier is processed in waves of equal context size — the
    masks of one wave are independent, which is what lets ``validate``
    check a whole wave in parallel.  Subset-of-valid skipping works
    exactly as in the sequential BFS: a skipping subset always has a
    strictly smaller size, hence was decided in an earlier wave.
    Returns every *visited* context that validated; children of a valid
    context are not explored (they cannot be minimal below it).
    """
    frontier = sorted(set(seeds), key=bit_count)
    seen: Set[int] = set(frontier)
    valid: Set[int] = set()
    while frontier:
        size = bit_count(frontier[0])
        wave = [mask for mask in frontier if bit_count(mask) == size]
        rest = [mask for mask in frontier if bit_count(mask) > size]
        wave = [mask for mask in wave
                if not any(prior & mask == prior for prior in valid)]
        children: List[int] = []
        for mask, ok in zip(wave, validate(wave)):
            if ok:
                valid.add(mask)
                continue
            for attribute in iter_bits(full_mask & ~mask & ~attribute_bit):
                child = mask | (1 << attribute)
                if child not in seen:
                    seen.add(child)
                    children.append(child)
        frontier = sorted(rest + children, key=bit_count)
    return valid


def _minimal_masks(masks: Set[int]) -> List[int]:
    """Keep only set-inclusion-minimal masks."""
    ordered = sorted(masks, key=bit_count)
    kept: List[int] = []
    for mask in ordered:
        if not any(prior & mask == prior for prior in kept):
            kept.append(mask)
    return kept


def _constant_within(valid_fd_masks: Set[int], context_mask: int) -> bool:
    """Is the attribute constant in this context, per the escalated
    full-data FD validity sets?"""
    return any(mask & context_mask == mask for mask in valid_fd_masks)
