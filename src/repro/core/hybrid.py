"""Hybrid (sample-then-validate) OD discovery.

The lattice sweep costs ``O(2^|R|)`` node visits even when almost all
of them validate against the full relation.  The hybrid strategy —
in the spirit of HyFD-style profilers — runs exact FASTOD on a small
*sample*, then escalates only where the sample was too optimistic:

1. Any OD valid on ``r`` is valid on every subset of ``r`` (validity is
   a pairwise property), so the sample's minimal ODs are context-wise
   *lower bounds* for the true full-data minimal ODs.
2. Each sample-minimal candidate is validated on the full relation;
   failures grow their context by one attribute (every such child is
   still sample-valid by Augmentation) and re-enter the queue.
3. The search therefore visits, per attribute (or pair), only the cone
   between the sample-minimal context and the true minimal contexts;
   a final subset filter restores exact minimality, and the Propagate
   rule is applied to OCDs against the *full-data* FDs.

The output provably equals FASTOD's (property-tested): every
minimal-on-full OD is reachable because its context contains some
sample-minimal context for the same attribute/pair, and the expansion
branches over all attributes.

Escalation waves run through the unified engine
(:mod:`repro.engine`): each wave's masks are mutually independent, so
one ``run_validations`` batch resolves them — serially below the
:data:`~repro.parallel.PARALLEL_MIN_ROWS` threshold, sharded over a
shared-memory worker pool otherwise (worker-local partition caches
over the shared rank columns).  The output is identical at any worker
count.  One :class:`~repro.engine.DeadlineBudget` covers the whole
run: it is consulted *between* waves and propagated into each wave's
dispatch, so a timeout never has to wait for the next full wave to
complete before being noticed; a timed-out run returns the ODs
confirmed so far flagged ``timed_out=True``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.fastod import discover_ods
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult
from repro.engine.budget import DeadlineBudget
from repro.engine.executors import make_executor
from repro.engine.telemetry import build_timings
from repro.relation.schema import bit_count, iter_bits
from repro.relation.table import Relation


def hybrid_discover(relation: Relation, *, sample_size: int = 100,
                    seed: int = 0,
                    workers: Optional[int] = None,
                    timeout_seconds: Optional[float] = None
                    ) -> DiscoveryResult:
    """Exact minimal OD discovery via a sample-guided lattice search.

    Produces the same complete, minimal set as
    :func:`repro.core.fastod.discover_ods`; only the work differs.
    Worthwhile when the relation is tall (validation dominates) and the
    sample is representative; degenerates gracefully — at worst the
    escalation walks the same lattice FASTOD would.

    With ``workers`` > 1 (or ``REPRO_WORKERS``) the full-data
    validations of each escalation wave fan out over the engine's
    pooled executor; ``timeout_seconds`` bounds the whole run
    (partial results come back flagged ``timed_out``).
    """
    started = time.perf_counter()
    budget = DeadlineBudget(timeout_seconds)
    sample = relation.sample(min(sample_size, relation.n_rows), seed=seed)
    # the sample sweep spends from the same budget (a wide sample
    # lattice must not blow past the deadline before the first wave)
    sample_result = discover_ods(sample,
                                 timeout_seconds=budget.remaining())

    encoded = relation.encode()
    # the executor reads the PARALLEL_MIN_ROWS gate from
    # repro.parallel.pool at dispatch time, so tests and benchmarks
    # can retune it like every other engine consumer
    executor = make_executor(encoded, workers=workers)

    def validate_wave(wave: List[int], mode: str, a: int,
                      b: int) -> Tuple[Dict[int, bool], bool]:
        """Full-data verdicts for one wave of contexts (masks of equal
        context size, mutually independent)."""
        return executor.run_validations(
            [(mask, mask, mode, a, b) for mask in wave], budget,
            phase="wave")

    try:
        result = _hybrid_discover(
            sample_result, encoded, validate_wave, budget,
            sample_size, seed, workers, timeout_seconds, started)
        result.executor_stats = executor.telemetry.snapshot()
        result.timings = build_timings(result.executor_stats)
        return result
    finally:
        executor.close()


def _hybrid_discover(sample_result, encoded, validate_wave, budget,
                     sample_size, seed, workers, timeout_seconds,
                     started) -> DiscoveryResult:
    names = encoded.names
    index = {name: i for i, name in enumerate(names)}
    full_mask = (1 << encoded.arity) - 1

    # contexts recur heavily (each sample FD seeds every pair below),
    # so the frozenset -> bitmask translation is memoized
    mask_memo: Dict[frozenset, int] = {}

    def mask_of(context) -> int:
        mask = mask_memo.get(context)
        if mask is None:
            mask = 0
            for name in context:
                mask |= 1 << index[name]
            mask_memo[context] = mask
        return mask

    # a timed-out sample sweep means incomplete seeds: everything
    # downstream is skipped and the (empty-so-far) result is flagged
    timed_out = sample_result.timed_out

    # ------------------------------------------------------------------
    # constancy ODs: escalate per attribute
    # ------------------------------------------------------------------
    valid_fd_masks: Dict[int, Set[int]] = {}
    if not timed_out:
        for attribute in range(encoded.arity):
            seeds = [mask_of(fd.context)
                     for fd in sample_result.fds
                     if index[fd.attribute] == attribute]
            valid_fd_masks[attribute], cut = _escalate(
                seeds, attribute_bit=1 << attribute,
                full_mask=full_mask,
                validate=lambda wave, a=attribute: validate_wave(
                    wave, "const", a, 0),
                budget=budget)
            if cut:
                timed_out = True
                break

    fds: List[CanonicalFD] = []
    for attribute, masks in valid_fd_masks.items():
        for mask in _minimal_masks(masks):
            fds.append(CanonicalFD(
                frozenset(names[i] for i in iter_bits(mask)),
                names[attribute]))

    # ------------------------------------------------------------------
    # compatibility ODs: escalate per unordered pair
    # ------------------------------------------------------------------
    pair_seeds: Dict[Tuple[int, int], List[int]] = {}
    for ocd in sample_result.ocds:
        a, b = sorted((index[ocd.left], index[ocd.right]))
        pair_seeds.setdefault((a, b), []).append(mask_of(ocd.context))
    # A pair can also become minimal on full data where the sample saw
    # a constant instead (Propagate hid it): seed those pairs from the
    # sample's FDs as well.
    for fd in sample_result.fds:
        a = index[fd.attribute]
        fd_mask = mask_of(fd.context)
        for b in range(encoded.arity):
            if b == a:
                continue
            pair = tuple(sorted((a, b)))
            pair_seeds.setdefault(pair, []).append(fd_mask)

    ocds: List[CanonicalOCD] = []
    if not timed_out:
        for (a, b), seeds in pair_seeds.items():
            forbidden = (1 << a) | (1 << b)
            seeds = [mask & ~forbidden for mask in seeds]
            valid_masks, cut = _escalate(
                seeds, attribute_bit=forbidden, full_mask=full_mask,
                validate=lambda wave, a=a, b=b: validate_wave(
                    wave, "swap", a, b),
                budget=budget)
            if cut:
                timed_out = True
                break
            for mask in _minimal_masks(valid_masks):
                # Propagate: not minimal if either side is constant there
                if _constant_within(valid_fd_masks.get(a, set()), mask) \
                        or _constant_within(valid_fd_masks.get(b, set()),
                                            mask):
                    continue
                ocds.append(CanonicalOCD(
                    frozenset(names[i] for i in iter_bits(mask)),
                    names[a], names[b]))

    result = DiscoveryResult(
        algorithm="FASTOD-Hybrid",
        attribute_names=names,
        n_rows=encoded.n_rows,
        fds=sorted(fds, key=CanonicalFD.sort_key),
        ocds=sorted(ocds, key=CanonicalOCD.sort_key),
        timed_out=timed_out,
        config={"sample_size": sample_size, "seed": seed,
                "workers": workers, "timeout_seconds": timeout_seconds},
    )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _escalate(seeds: List[int], *, attribute_bit: int, full_mask: int,
              validate, budget: DeadlineBudget
              ) -> Tuple[Set[int], bool]:
    """Wave-wise BFS from sample-valid contexts to full-data-valid
    contexts.

    Contexts never include the target attribute(s) (``attribute_bit``).
    The frontier is processed in waves of equal context size — the
    masks of one wave are independent, which is what lets ``validate``
    check a whole wave in parallel.  Subset-of-valid skipping works
    exactly as in the sequential BFS: a skipping subset always has a
    strictly smaller size, hence was decided in an earlier wave; the
    filter tests against the *minimal* valid masks (computed once per
    wave — a superset of a valid mask is always a superset of a minimal
    one), not the whole valid set per candidate.

    Returns ``(valid, timed_out)``: every *visited* context that
    validated (children of a valid context are not explored — they
    cannot be minimal below it), and whether the shared budget cut the
    escalation short.  The budget is consulted before every wave and
    inside every wave's dispatch, so expiry between waves is noticed
    immediately instead of after the next full wave.
    """
    frontier = sorted(set(seeds), key=bit_count)
    seen: Set[int] = set(frontier)
    valid: Set[int] = set()
    while frontier:
        if budget.hit():
            return valid, True
        size = bit_count(frontier[0])
        wave = [mask for mask in frontier if bit_count(mask) == size]
        rest = [mask for mask in frontier if bit_count(mask) > size]
        minimal_valid = _minimal_masks(valid)
        wave = [mask for mask in wave
                if not any(prior & mask == prior
                           for prior in minimal_valid)]
        verdicts, timed_out = validate(wave)
        children: List[int] = []
        for mask in wave:
            ok = verdicts.get(mask)
            if ok is None:
                continue       # cut by the deadline mid-wave
            if ok:
                valid.add(mask)
                continue
            for attribute in iter_bits(full_mask & ~mask & ~attribute_bit):
                child = mask | (1 << attribute)
                if child not in seen:
                    seen.add(child)
                    children.append(child)
        if timed_out:
            return valid, True
        frontier = sorted(rest + children, key=bit_count)
    return valid, False


def _minimal_masks(masks: Set[int]) -> List[int]:
    """Keep only set-inclusion-minimal masks."""
    ordered = sorted(masks, key=bit_count)
    kept: List[int] = []
    for mask in ordered:
        if not any(prior & mask == prior for prior in kept):
            kept.append(mask)
    return kept


def _constant_within(valid_fd_masks: Set[int], context_mask: int) -> bool:
    """Is the attribute constant in this context, per the escalated
    full-data FD validity sets?"""
    return any(mask & context_mask == mask for mask in valid_fd_masks)
