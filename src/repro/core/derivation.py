"""Derivations: *why* an OD follows from a cover.

Discovery explains what holds; users reviewing constraints also ask
why a dependency they expected is "missing" from the minimal set.  The
answer is a derivation from the cover via the Figure-2 axioms, which
this module produces as a human-readable step list.

Built on the same closure logic as
:class:`repro.core.axioms_set.InferenceEngine`; every step names the
axiom and the premises used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.core.axioms_set import InferenceEngine
from repro.core.od import CanonicalFD, CanonicalOCD

CanonicalOD = Union[CanonicalFD, CanonicalOCD]


@dataclass
class Derivation:
    """A proof sketch: the axioms applied and the cover ODs used."""

    conclusion: CanonicalOD
    steps: List[str] = field(default_factory=list)
    premises: List[CanonicalOD] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [f"derivation of {self.conclusion}:"]
        lines.extend(f"  {i + 1}. {step}"
                     for i, step in enumerate(self.steps))
        return "\n".join(lines)


class Explainer:
    """Produces derivations against a fixed cover.

    ``explain(od)`` returns a :class:`Derivation` when the OD follows
    from the cover (by the engine's sound rules) and ``None``
    otherwise.  Completeness matches the engine's: exact for
    instance-derived covers.
    """

    def __init__(self, cover: Iterable[CanonicalOD]):
        self._engine = InferenceEngine(cover)

    @property
    def engine(self) -> InferenceEngine:
        return self._engine

    # ------------------------------------------------------------------
    def explain(self, od: CanonicalOD) -> Optional[Derivation]:
        if isinstance(od, CanonicalFD):
            return self._explain_fd(od)
        return self._explain_ocd(od)

    # ------------------------------------------------------------------
    def _closure_with_parents(self, attributes) -> Dict[str, CanonicalFD]:
        """FD closure keeping, per derived attribute, the cover FD that
        first produced it."""
        closure = set(attributes)
        parents: Dict[str, CanonicalFD] = {}
        changed = True
        while changed:
            changed = False
            for fd in self._engine.fds:
                if fd.attribute not in closure and fd.context <= closure:
                    closure.add(fd.attribute)
                    parents[fd.attribute] = fd
                    changed = True
        return parents

    def _fd_chain(self, context, attribute,
                  parents: Dict[str, CanonicalFD]) -> List[CanonicalFD]:
        """The cover FDs needed to reach ``attribute`` from ``context``,
        in firing order."""
        needed: List[CanonicalFD] = []
        seen = set()

        def visit(target: str) -> None:
            if target in context or target in seen:
                return
            seen.add(target)
            fd = parents.get(target)
            if fd is None:
                return
            for requirement in fd.context:
                visit(requirement)
            needed.append(fd)

        visit(attribute)
        return needed

    def _explain_fd(self, fd: CanonicalFD) -> Optional[Derivation]:
        if fd.is_trivial:
            return Derivation(fd, [
                f"{fd} is trivial by Reflexivity "
                f"({fd.attribute} ∈ context)"])
        parents = self._closure_with_parents(fd.context)
        if fd.attribute not in parents \
                and fd.attribute not in fd.context:
            if not self._engine.implies_fd(fd):
                return None
        derivation = Derivation(fd)
        chain = self._fd_chain(fd.context, fd.attribute, parents)
        for step_fd in chain:
            extra = fd.context - step_fd.context
            if extra:
                derivation.steps.append(
                    f"Augmentation-I on cover OD {step_fd} "
                    f"adds context {{{','.join(sorted(extra))}}}")
            else:
                derivation.steps.append(f"cover OD {step_fd}")
            derivation.premises.append(step_fd)
        if len(chain) > 1:
            derivation.steps.append(
                "Strengthen collapses the chain to "
                f"{fd}")
        return derivation

    def _explain_ocd(self, ocd: CanonicalOCD) -> Optional[Derivation]:
        if ocd.is_trivial:
            reason = ("Identity" if ocd.left == ocd.right
                      else "Normalization (an endpoint is in the context)")
            return Derivation(ocd, [f"{ocd} is trivial by {reason}"])
        parents = self._closure_with_parents(ocd.context)
        closure = set(ocd.context) | set(parents)
        # Propagate: one endpoint is (derivably) constant
        for endpoint, other in ((ocd.left, ocd.right),
                                (ocd.right, ocd.left)):
            if endpoint in closure:
                fd = CanonicalFD(ocd.context, endpoint)
                sub = self._explain_fd(fd)
                if sub is not None:
                    sub_steps = sub.steps if sub.premises else []
                    return Derivation(
                        ocd,
                        [*sub_steps,
                         f"Propagate on {fd} yields {ocd}"],
                        sub.premises)
        # Augmentation-II from a cover OCD (context may use derived
        # constants via Lemma 6 in reverse)
        for known in self._engine.ocds:
            if known.pair == ocd.pair and known.context <= closure:
                steps = []
                premises: List[CanonicalOD] = [known]
                derived = known.context - set(ocd.context)
                for attribute in sorted(derived):
                    fd = CanonicalFD(ocd.context, attribute)
                    steps.append(
                        f"context attribute {attribute} is constant: "
                        f"{fd} (FD closure)")
                    premises.append(fd)
                extra = set(ocd.context) - known.context
                if extra:
                    steps.append(
                        f"Augmentation-II on cover OD {known} adds "
                        f"context {{{','.join(sorted(extra))}}}")
                else:
                    steps.append(f"cover OD {known}")
                steps.append(f"hence {ocd}")
                return Derivation(ocd, steps, premises)
        # Chain
        derivation = self._explain_via_chain(ocd, closure)
        if derivation is not None:
            return derivation
        return None

    def _explain_via_chain(self, ocd: CanonicalOCD,
                           closure) -> Optional[Derivation]:
        in_context = [known for known in self._engine.ocds
                      if known.context <= closure]
        neighbours: Dict[str, set] = {}
        for known in in_context:
            left, right = sorted(known.pair)
            neighbours.setdefault(left, set()).add(right)
            neighbours.setdefault(right, set()).add(left)
        a, c = ocd.left, ocd.right
        for b in sorted(neighbours.get(a, set())
                        & neighbours.get(c, set())):
            bridge = CanonicalOCD(ocd.context | {b}, a, c)
            if self._engine.implies_ocd(bridge, use_chain=False):
                first = CanonicalOCD(ocd.context, a, b)
                last = CanonicalOCD(ocd.context, b, c)
                return Derivation(ocd, [
                    f"link {first} (from the cover)",
                    f"link {last} (from the cover)",
                    f"bridge {bridge} (implied)",
                    f"Chain yields {ocd}",
                ], [first, last, bridge])
        return None


def explain(od: CanonicalOD,
            cover: Iterable[CanonicalOD]) -> Optional[Derivation]:
    """One-shot convenience wrapper around :class:`Explainer`."""
    return Explainer(cover).explain(od)
