"""Dependency validation: splits, swaps, and holds-on-instance checks.

Two independent layers:

* **Canonical validators** operate on stripped partitions and rank
  columns — the machinery FASTOD uses (Section 4.6).  They run in time
  linear in the rows living inside non-singleton context classes.
* **List-based validators** implement Definitions 1-3 directly on
  lexicographic sort keys.  They are slower but follow the definitions
  so literally that they serve as the oracle for everything else
  (including for the Theorem 5 mapping itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernels
from repro.core.mapping import map_list_od
from repro.kernels import reference as _reference_kernels
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    as_spec,
)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import (
    SMALL_KERNEL_THRESHOLD,
    StrippedPartition,
)
from repro.relation.encoding import EncodedRelation
from repro.relation.schema import iter_bits
from repro.relation.table import Relation


# ----------------------------------------------------------------------
# violation witnesses (Definitions 4 and 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Split:
    """A split w.r.t. ``X: [] ↦ A``: two tuples equal on the context but
    different on ``A`` (Definition 4)."""

    row_s: int
    row_t: int
    attribute: str

    def __str__(self) -> str:
        return (f"split on {self.attribute}: rows "
                f"{self.row_s} and {self.row_t}")


@dataclass(frozen=True)
class Swap:
    """A swap w.r.t. ``X: A ~ B``: two tuples equal on the context with
    ``s ≺_A t`` but ``t ≺_B s`` (Definition 5)."""

    row_s: int
    row_t: int
    left: str
    right: str

    def __str__(self) -> str:
        return (f"swap between {self.left} and {self.right}: rows "
                f"{self.row_s} and {self.row_t}")


# ----------------------------------------------------------------------
# canonical validators (partition-based, vectorized over the flat
# rows/offsets layout of StrippedPartition)
# ----------------------------------------------------------------------
def split_mismatch_mask(column: np.ndarray,
                        context: StrippedPartition) -> np.ndarray:
    """Per-grouped-row mask of split positions (parallel to
    ``context.rows``).

    Segmented constancy test: every grouped row's value is compared
    against its class's first value.  Dispatches through
    :mod:`repro.kernels` (one gather/repeat/compare pass in the
    reference backend, a single C sweep in the compiled one) — the
    shared kernel behind the constancy check, split witnesses, and
    violation collection.
    """
    return kernels.split_mismatch(column, context.rows, context.offsets,
                                  context.class_sizes)


def is_constant_in_classes(column: np.ndarray,
                           context: StrippedPartition) -> bool:
    """``X: [] ↦ A`` given Π*_X and A's rank column."""
    if len(context.rows) == 0:
        return True
    return not split_mismatch_mask(column, context).any()


def find_split(column: np.ndarray, context: StrippedPartition,
               attribute: str) -> Optional[Split]:
    """Return a witness pair violating ``X: [] ↦ A``, or ``None``.

    Mirrors :func:`is_constant_in_classes`; the first mismatching flat
    position identifies both the offending class (via ``searchsorted``
    on the offsets) and the witness row.
    """
    rows = context.rows
    if len(rows) == 0:
        return None
    different = np.flatnonzero(split_mismatch_mask(column, context))
    if not different.size:
        return None
    position = int(different[0])
    class_id = int(np.searchsorted(context.offsets, position,
                                   side="right")) - 1
    return Split(int(rows[context.offsets[class_id]]),
                 int(rows[position]), attribute)


#: The historical home of the segmented prefix-max swap kernel; the
#: implementation (with its full derivation) now lives in
#: :mod:`repro.kernels.reference` so the compiled backend can be held
#: to the same contract.  Kept as aliases for existing consumers.
_swap_mask = _reference_kernels.swap_mask


def _sorted_swap_views(column_a: np.ndarray, column_b: np.ndarray,
                       context: StrippedPartition):
    """(class_ids, A, B) of the grouped rows, sorted by ``(class, A)``
    (see :func:`repro.kernels.reference.sorted_swap_views`)."""
    return _reference_kernels.sorted_swap_views(
        column_a, column_b, context.rows, context.class_ids())


def is_compatible_in_classes(column_a: np.ndarray, column_b: np.ndarray,
                             context: StrippedPartition) -> bool:
    """``X: A ~ B`` given Π*_X and the two rank columns.

    Within each class: sort by (A, B); while scanning groups of equal A
    in ascending order, any B rank below the maximum B seen in *earlier*
    groups is a swap.  All classes are checked in one vectorized pass
    (one composite-key sort + segmented prefix-max, see
    :func:`_swap_mask`); contexts with few grouped rows take the scalar
    per-class scan instead, where NumPy dispatch overhead would
    dominate.
    """
    n_grouped = len(context.rows)
    if n_grouped == 0:
        return True
    if n_grouped <= kernels.effective_scalar_threshold(
            SMALL_KERNEL_THRESHOLD):
        rows = context.rows
        offsets = context.offsets
        for index in range(len(offsets) - 1):
            segment = rows[offsets[index]:offsets[index + 1]]
            pairs = sorted(zip(column_a[segment].tolist(),
                               column_b[segment].tolist()))
            if not _scan_is_swap_free(pairs):
                return False
        return True
    return not kernels.swap_flags(
        column_a, column_b, context.rows, context.offsets,
        context.class_ids()).any()


def swap_classes(column_a: np.ndarray, column_b: np.ndarray,
                 context: StrippedPartition) -> np.ndarray:
    """Ids of the context classes containing at least one swap.

    One vectorized pass over all classes; consumers that need per-class
    witnesses (e.g. violation reporting) re-scan only the returned
    classes.
    """
    if len(context.rows) == 0:
        return np.empty(0, dtype=np.int64)
    flags = kernels.swap_flags(column_a, column_b, context.rows,
                               context.offsets, context.class_ids())
    return np.flatnonzero(flags)


def _scan_is_swap_free(pairs: Sequence[Tuple[int, int]]) -> bool:
    max_b_before = None        # max B over strictly smaller A groups
    current_a = None
    current_max_b = None
    first = True
    for value_a, value_b in pairs:
        if first or value_a != current_a:
            if current_max_b is not None and (
                    max_b_before is None or current_max_b > max_b_before):
                max_b_before = current_max_b
            current_a = value_a
            current_max_b = None
            first = False
        if max_b_before is not None and value_b < max_b_before:
            return False
        if current_max_b is None or value_b > current_max_b:
            current_max_b = value_b
    return True


def dominance_holds_ranks(columns: Sequence[np.ndarray], lhs_mask: int,
                          target: int) -> bool:
    """Pointwise-OD dominance on rank columns: ``X ↪ {B}`` holds when
    every pair dominated on the ``lhs_mask`` attributes is ordered on
    ``B`` (Ginsburg & Hull semantics, §2.1 of the paper).

    The scan-mode kernel behind ``"pointwise"`` executor tasks — rank
    columns are exactly what the worker pool publishes, so pointwise
    sweeps shard like any other scan.  Quadratic in rows with an early
    exit; an empty LHS requires a constant target, and a
    single-attribute LHS takes a sorted O(n log n) fast path.
    """
    right = columns[target]
    n = len(right)
    if n <= 1:
        return True
    lhs_indices = list(iter_bits(lhs_mask))
    if not lhs_indices:
        return bool((right == right[0]).all())
    if len(lhs_indices) == 1:
        return _single_lhs_dominance(columns[lhs_indices[0]], right)
    left = np.stack([columns[i] for i in lhs_indices], axis=1)
    for s in range(n):
        dominated = (left >= left[s]).all(axis=1)
        if (right[np.flatnonzero(dominated)] < right[s]).any():
            return False
    return True


def _single_lhs_dominance(left: np.ndarray, right: np.ndarray) -> bool:
    """|X| = 1: sort by X; the target must be constant within X ties
    and non-decreasing across strictly increasing X."""
    order = np.argsort(left, kind="stable")
    sorted_left = left[order]
    sorted_right = right[order]
    n = len(order)
    start = 0
    previous_max = None
    for stop in range(1, n + 1):
        if stop == n or sorted_left[stop] != sorted_left[start]:
            block = sorted_right[start:stop]
            if (block != block[0]).any():
                return False      # ties on X must agree on the target
            if previous_max is not None and block[0] < previous_max:
                return False
            previous_max = block[0]
            start = stop
    return True


def scan_verdict(mode: str, columns: Sequence[np.ndarray], a: int,
                 b: int, context: Optional[StrippedPartition]) -> bool:
    """One executor scan-task verdict — the single mode dispatch shared
    by the coordinator-side kernels (:mod:`repro.engine.executors`)
    and the worker-side handler (:mod:`repro.parallel.pool`), so a new
    or mistyped mode fails loudly on *both* paths instead of silently
    resolving differently per worker count.

    Modes: ``"swap"``, ``"const"``, ``"swap_desc"`` (descending right
    column under rank encoding), ``"pointwise"`` (``a`` is an LHS
    bitmask, ``b`` a target attribute; ``context`` is ignored).
    """
    if mode == "swap":
        return is_compatible_in_classes(columns[a], columns[b], context)
    if mode == "swap_desc":
        return is_compatible_in_classes(columns[a], -columns[b], context)
    if mode == "const":
        return is_constant_in_classes(columns[a], context)
    if mode == "pointwise":
        return dominance_holds_ranks(columns, a, b)
    raise ValueError(f"unknown scan mode {mode!r}")


def find_swap(column_a: np.ndarray, column_b: np.ndarray,
              context: StrippedPartition, left: str,
              right: str) -> Optional[Swap]:
    """Return a witness pair violating ``X: A ~ B``, or ``None``.

    The witness is oriented so that ``row_s ≺_A row_t`` while
    ``row_t ≺_B row_s``.  Detection runs on the vectorized swap mask;
    only the first offending class is re-scanned scalar-style to build
    the same witness pair the original per-class scan produced.
    """
    if len(context.rows) == 0:
        return None
    flags = kernels.swap_flags(column_a, column_b, context.rows,
                               context.offsets, context.class_ids())
    hits = np.flatnonzero(flags)
    if not hits.size:
        return None
    guilty_class = int(hits[0])
    start = context.offsets[guilty_class]
    stop = context.offsets[guilty_class + 1]
    return scan_find_swap(column_a, column_b,
                          context.rows[start:stop], left, right)


def scan_find_swap(column_a: np.ndarray, column_b: np.ndarray,
                   rows: np.ndarray, left: str,
                   right: str) -> Optional[Swap]:
    """Scalar witness scan over one context class (reference scan).

    Public so per-class consumers (e.g. violation collection) can
    extract witnesses from classes the vectorized pass flagged."""
    pairs = sorted(
        zip(column_a[rows].tolist(), column_b[rows].tolist(),
            rows.tolist()))
    max_b_before = None
    best_row = -1              # a row achieving max_b_before
    current_a = None
    current_max_b = None
    current_row = -1
    first = True
    for value_a, value_b, row in pairs:
        if first or value_a != current_a:
            if current_max_b is not None and (
                    max_b_before is None
                    or current_max_b > max_b_before):
                max_b_before = current_max_b
                best_row = current_row
            current_a = value_a
            current_max_b = None
            first = False
        if max_b_before is not None and value_b < max_b_before:
            return Swap(int(best_row), int(row), left, right)
        if current_max_b is None or value_b > current_max_b:
            current_max_b = value_b
            current_row = row
    return None


class CanonicalValidator:
    """Validates canonical ODs against one relation instance.

    Builds stripped partitions on demand (memoized).  This is the
    public "does this canonical OD hold?" entry point; FASTOD inlines
    equivalent logic with level-wise partition reuse.

    ``max_cached_partitions`` bounds the resident composite partitions
    (LRU eviction, see :class:`PartitionCache`) for long-lived
    validators checking many ad-hoc contexts; ``None`` (default) keeps
    every partition, the historical behavior.

    ``workers`` > 1 (or ``REPRO_WORKERS``) routes big validation scans
    through the unified engine's pooled executor
    (:class:`repro.engine.PoolExecutor`), which shards them by context
    class over a shared-memory worker pool — worthwhile for
    single-dependency checks on tall relations, where one scan is the
    whole workload.  Verdicts are identical at any worker count; the
    pool spins up lazily and only for scans past the size threshold.
    Call :meth:`close` (or rely on GC) to release the pool.
    """

    def __init__(self, relation: Union[Relation, EncodedRelation],
                 max_cached_partitions: Optional[int] = None,
                 workers: Optional[int] = None,
                 cache: Optional[PartitionCache] = None,
                 pool=None):
        if isinstance(relation, Relation):
            relation = relation.encode()
        self._relation = relation
        # an injected cache (the service catalog's warm per-dataset
        # cache) is shared across validators; an owned one dies here
        if cache is not None:
            if cache.relation is not relation:
                raise ValueError(
                    "the partition cache must wrap this relation's "
                    "encoding")
            self._cache = cache
        else:
            self._cache = PartitionCache(
                relation, max_entries=max_cached_partitions)
        self._name_to_index = {
            name: i for i, name in enumerate(relation.names)}
        from repro.engine.executors import make_executor
        self._executor = make_executor(relation, workers=workers,
                                       pool=pool)

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    @property
    def cache(self) -> PartitionCache:
        return self._cache

    def executor_stats(self) -> dict:
        """Per-phase executor telemetry (the ``executor_stats``
        currency every engine entry point exposes)."""
        return self._executor.telemetry.snapshot()

    def timings(self) -> dict:
        """Per-phase wall clock distilled from :meth:`executor_stats`
        (the ``timings`` currency; see
        :func:`repro.engine.telemetry.build_timings`)."""
        from repro.engine.telemetry import build_timings
        return build_timings(self.executor_stats())

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        self._executor.close()

    def _index(self, name: str) -> int:
        try:
            return self._name_to_index[name]
        except KeyError:
            raise KeyError(
                f"unknown attribute {name!r}; relation has "
                f"{self._relation.names}") from None

    def _context_partition(self, context) -> StrippedPartition:
        mask = 0
        for name in context:
            mask |= 1 << self._index(name)
        return self._cache.get(mask)

    def holds(self, od: Union[CanonicalFD, CanonicalOCD]) -> bool:
        """Validity of one canonical OD on the instance."""
        if isinstance(od, CanonicalFD):
            return self.fd_holds(od)
        return self.ocd_holds(od)

    def fd_holds(self, fd: CanonicalFD) -> bool:
        if fd.is_trivial:
            return True
        return self._executor.scan_partition(
            "const", self._index(fd.attribute), 0,
            self._context_partition(fd.context))

    def ocd_holds(self, ocd: CanonicalOCD) -> bool:
        if ocd.is_trivial:
            return True
        return self._executor.scan_partition(
            "swap", self._index(ocd.left), self._index(ocd.right),
            self._context_partition(ocd.context))

    def witness(self, od: Union[CanonicalFD, CanonicalOCD]
                ) -> Optional[Union[Split, Swap]]:
        """A violating tuple pair, or ``None`` when the OD holds."""
        if isinstance(od, CanonicalFD):
            if od.is_trivial:
                return None
            column = self._relation.column(self._index(od.attribute))
            return find_split(column, self._context_partition(od.context),
                              od.attribute)
        if od.is_trivial:
            return None
        column_a = self._relation.column(self._index(od.left))
        column_b = self._relation.column(self._index(od.right))
        return find_swap(column_a, column_b,
                         self._context_partition(od.context),
                         od.left, od.right)


# ----------------------------------------------------------------------
# list-based validators (definition-level oracle)
# ----------------------------------------------------------------------
def _sort_keys(relation: EncodedRelation,
               spec: OrderSpec) -> list:
    indices = [relation.names.index(name) for name in spec]
    columns = [relation.column(i) for i in indices]
    return [tuple(int(col[row]) for col in columns)
            for row in range(relation.n_rows)]


def _coerce(relation: Union[Relation, EncodedRelation]) -> EncodedRelation:
    if isinstance(relation, Relation):
        return relation.encode()
    return relation


def list_od_holds(relation: Union[Relation, EncodedRelation],
                  od: ListOD) -> bool:
    """``r ⊨ X ↦ Y`` straight from Definition 2.

    ``X ↦ Y`` holds iff, grouping tuples by their X-key: every group is
    constant on the Y-key, and ascending X-keys give non-descending
    Y-keys.
    """
    encoded = _coerce(relation)
    keys_x = _sort_keys(encoded, od.lhs)
    keys_y = _sort_keys(encoded, od.rhs)
    order = sorted(range(encoded.n_rows), key=lambda row: keys_x[row])
    previous_x = None
    group_y = None
    max_y_so_far = None
    for row in order:
        key_x, key_y = keys_x[row], keys_y[row]
        if key_x != previous_x:
            previous_x = key_x
            group_y = key_y
            if max_y_so_far is not None and key_y < max_y_so_far:
                return False
        else:
            if key_y != group_y:
                return False
        if max_y_so_far is None or key_y > max_y_so_far:
            max_y_so_far = key_y
    return True


def order_compatible(relation: Union[Relation, EncodedRelation],
                     compat: OrderCompatibility) -> bool:
    """``X ~ Y`` i.e. ``XY ↔ YX`` (Definition 3), checked as the absence
    of any swap pair (Definition 5)."""
    encoded = _coerce(relation)
    keys_x = _sort_keys(encoded, compat.lhs)
    keys_y = _sort_keys(encoded, compat.rhs)
    order = sorted(range(encoded.n_rows), key=lambda row: keys_x[row])
    previous_x = None
    max_y_before = None        # max Y over strictly smaller X groups
    current_max_y = None
    for row in order:
        key_x, key_y = keys_x[row], keys_y[row]
        if key_x != previous_x:
            if current_max_y is not None and (
                    max_y_before is None or current_max_y > max_y_before):
                max_y_before = current_max_y
            previous_x = key_x
            current_max_y = None
        if max_y_before is not None and key_y < max_y_before:
            return False
        if current_max_y is None or key_y > current_max_y:
            current_max_y = key_y
    return True


def order_equivalent(relation: Union[Relation, EncodedRelation],
                     lhs, rhs) -> bool:
    """``X ↔ Y``: both ODs hold."""
    lhs, rhs = as_spec(lhs), as_spec(rhs)
    forward = ListOD(lhs, rhs)
    return (list_od_holds(relation, forward)
            and list_od_holds(relation, forward.reversed()))


def list_od_holds_via_canonical(relation: Union[Relation, EncodedRelation],
                                od: ListOD) -> bool:
    """Validity via Theorem 5: map to canonical form and check each part.

    Must always agree with :func:`list_od_holds`; the property tests
    enforce exactly that equivalence.
    """
    validator = CanonicalValidator(_coerce(relation))
    image = map_list_od(od)
    return all(validator.holds(part) for part in image.all_ods)
