"""Dependency validation: splits, swaps, and holds-on-instance checks.

Two independent layers:

* **Canonical validators** operate on stripped partitions and rank
  columns — the machinery FASTOD uses (Section 4.6).  They run in time
  linear in the rows living inside non-singleton context classes.
* **List-based validators** implement Definitions 1-3 directly on
  lexicographic sort keys.  They are slower but follow the definitions
  so literally that they serve as the oracle for everything else
  (including for the Theorem 5 mapping itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mapping import map_list_od
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    as_spec,
)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation
from repro.relation.table import Relation


# ----------------------------------------------------------------------
# violation witnesses (Definitions 4 and 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Split:
    """A split w.r.t. ``X: [] ↦ A``: two tuples equal on the context but
    different on ``A`` (Definition 4)."""

    row_s: int
    row_t: int
    attribute: str

    def __str__(self) -> str:
        return (f"split on {self.attribute}: rows "
                f"{self.row_s} and {self.row_t}")


@dataclass(frozen=True)
class Swap:
    """A swap w.r.t. ``X: A ~ B``: two tuples equal on the context with
    ``s ≺_A t`` but ``t ≺_B s`` (Definition 5)."""

    row_s: int
    row_t: int
    left: str
    right: str

    def __str__(self) -> str:
        return (f"swap between {self.left} and {self.right}: rows "
                f"{self.row_s} and {self.row_t}")


# ----------------------------------------------------------------------
# canonical validators (partition-based)
# ----------------------------------------------------------------------
def is_constant_in_classes(column: np.ndarray,
                           context: StrippedPartition) -> bool:
    """``X: [] ↦ A`` given Π*_X and A's rank column."""
    for rows in context.classes:
        values = column[rows]
        if (values != values[0]).any():
            return False
    return True


def find_split(column: np.ndarray, context: StrippedPartition,
               attribute: str) -> Optional[Split]:
    """Return a witness pair violating ``X: [] ↦ A``, or ``None``."""
    for rows in context.classes:
        values = column[rows]
        first = values[0]
        different = np.flatnonzero(values != first)
        if different.size:
            return Split(int(rows[0]), int(rows[int(different[0])]),
                         attribute)
    return None


def is_compatible_in_classes(column_a: np.ndarray, column_b: np.ndarray,
                             context: StrippedPartition) -> bool:
    """``X: A ~ B`` given Π*_X and the two rank columns.

    Within each class: sort by (A, B); while scanning groups of equal A
    in ascending order, any B rank below the maximum B seen in *earlier*
    groups is a swap.
    """
    for rows in context.classes:
        pairs = sorted(zip(column_a[rows].tolist(),
                           column_b[rows].tolist()))
        if not _scan_is_swap_free(pairs):
            return False
    return True


def _scan_is_swap_free(pairs: Sequence[Tuple[int, int]]) -> bool:
    max_b_before = None        # max B over strictly smaller A groups
    current_a = None
    current_max_b = None
    first = True
    for value_a, value_b in pairs:
        if first or value_a != current_a:
            if current_max_b is not None and (
                    max_b_before is None or current_max_b > max_b_before):
                max_b_before = current_max_b
            current_a = value_a
            current_max_b = None
            first = False
        if max_b_before is not None and value_b < max_b_before:
            return False
        if current_max_b is None or value_b > current_max_b:
            current_max_b = value_b
    return True


def find_swap(column_a: np.ndarray, column_b: np.ndarray,
              context: StrippedPartition, left: str,
              right: str) -> Optional[Swap]:
    """Return a witness pair violating ``X: A ~ B``, or ``None``.

    The witness is oriented so that ``row_s ≺_A row_t`` while
    ``row_t ≺_B row_s``.
    """
    for rows in context.classes:
        pairs = sorted(
            zip(column_a[rows].tolist(), column_b[rows].tolist(), rows))
        max_b_before = None
        best_row = -1              # a row achieving max_b_before
        current_a = None
        current_max_b = None
        current_row = -1
        first = True
        for value_a, value_b, row in pairs:
            if first or value_a != current_a:
                if current_max_b is not None and (
                        max_b_before is None
                        or current_max_b > max_b_before):
                    max_b_before = current_max_b
                    best_row = current_row
                current_a = value_a
                current_max_b = None
                first = False
            if max_b_before is not None and value_b < max_b_before:
                return Swap(int(best_row), int(row), left, right)
            if current_max_b is None or value_b > current_max_b:
                current_max_b = value_b
                current_row = row
    return None


class CanonicalValidator:
    """Validates canonical ODs against one relation instance.

    Builds stripped partitions on demand (memoized).  This is the
    public "does this canonical OD hold?" entry point; FASTOD inlines
    equivalent logic with level-wise partition reuse.
    """

    def __init__(self, relation: Union[Relation, EncodedRelation]):
        if isinstance(relation, Relation):
            relation = relation.encode()
        self._relation = relation
        self._cache = PartitionCache(relation)
        self._name_to_index = {
            name: i for i, name in enumerate(relation.names)}

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    @property
    def cache(self) -> PartitionCache:
        return self._cache

    def _index(self, name: str) -> int:
        try:
            return self._name_to_index[name]
        except KeyError:
            raise KeyError(
                f"unknown attribute {name!r}; relation has "
                f"{self._relation.names}") from None

    def _context_partition(self, context) -> StrippedPartition:
        mask = 0
        for name in context:
            mask |= 1 << self._index(name)
        return self._cache.get(mask)

    def holds(self, od: Union[CanonicalFD, CanonicalOCD]) -> bool:
        """Validity of one canonical OD on the instance."""
        if isinstance(od, CanonicalFD):
            return self.fd_holds(od)
        return self.ocd_holds(od)

    def fd_holds(self, fd: CanonicalFD) -> bool:
        if fd.is_trivial:
            return True
        column = self._relation.column(self._index(fd.attribute))
        return is_constant_in_classes(
            column, self._context_partition(fd.context))

    def ocd_holds(self, ocd: CanonicalOCD) -> bool:
        if ocd.is_trivial:
            return True
        column_a = self._relation.column(self._index(ocd.left))
        column_b = self._relation.column(self._index(ocd.right))
        return is_compatible_in_classes(
            column_a, column_b, self._context_partition(ocd.context))

    def witness(self, od: Union[CanonicalFD, CanonicalOCD]
                ) -> Optional[Union[Split, Swap]]:
        """A violating tuple pair, or ``None`` when the OD holds."""
        if isinstance(od, CanonicalFD):
            if od.is_trivial:
                return None
            column = self._relation.column(self._index(od.attribute))
            return find_split(column, self._context_partition(od.context),
                              od.attribute)
        if od.is_trivial:
            return None
        column_a = self._relation.column(self._index(od.left))
        column_b = self._relation.column(self._index(od.right))
        return find_swap(column_a, column_b,
                         self._context_partition(od.context),
                         od.left, od.right)


# ----------------------------------------------------------------------
# list-based validators (definition-level oracle)
# ----------------------------------------------------------------------
def _sort_keys(relation: EncodedRelation,
               spec: OrderSpec) -> list:
    indices = [relation.names.index(name) for name in spec]
    columns = [relation.column(i) for i in indices]
    return [tuple(int(col[row]) for col in columns)
            for row in range(relation.n_rows)]


def _coerce(relation: Union[Relation, EncodedRelation]) -> EncodedRelation:
    if isinstance(relation, Relation):
        return relation.encode()
    return relation


def list_od_holds(relation: Union[Relation, EncodedRelation],
                  od: ListOD) -> bool:
    """``r ⊨ X ↦ Y`` straight from Definition 2.

    ``X ↦ Y`` holds iff, grouping tuples by their X-key: every group is
    constant on the Y-key, and ascending X-keys give non-descending
    Y-keys.
    """
    encoded = _coerce(relation)
    keys_x = _sort_keys(encoded, od.lhs)
    keys_y = _sort_keys(encoded, od.rhs)
    order = sorted(range(encoded.n_rows), key=lambda row: keys_x[row])
    previous_x = None
    group_y = None
    max_y_so_far = None
    for row in order:
        key_x, key_y = keys_x[row], keys_y[row]
        if key_x != previous_x:
            previous_x = key_x
            group_y = key_y
            if max_y_so_far is not None and key_y < max_y_so_far:
                return False
        else:
            if key_y != group_y:
                return False
        if max_y_so_far is None or key_y > max_y_so_far:
            max_y_so_far = key_y
    return True


def order_compatible(relation: Union[Relation, EncodedRelation],
                     compat: OrderCompatibility) -> bool:
    """``X ~ Y`` i.e. ``XY ↔ YX`` (Definition 3), checked as the absence
    of any swap pair (Definition 5)."""
    encoded = _coerce(relation)
    keys_x = _sort_keys(encoded, compat.lhs)
    keys_y = _sort_keys(encoded, compat.rhs)
    order = sorted(range(encoded.n_rows), key=lambda row: keys_x[row])
    previous_x = None
    max_y_before = None        # max Y over strictly smaller X groups
    current_max_y = None
    for row in order:
        key_x, key_y = keys_x[row], keys_y[row]
        if key_x != previous_x:
            if current_max_y is not None and (
                    max_y_before is None or current_max_y > max_y_before):
                max_y_before = current_max_y
            previous_x = key_x
            current_max_y = None
        if max_y_before is not None and key_y < max_y_before:
            return False
        if current_max_y is None or key_y > current_max_y:
            current_max_y = key_y
    return True


def order_equivalent(relation: Union[Relation, EncodedRelation],
                     lhs, rhs) -> bool:
    """``X ↔ Y``: both ODs hold."""
    lhs, rhs = as_spec(lhs), as_spec(rhs)
    forward = ListOD(lhs, rhs)
    return (list_od_holds(relation, forward)
            and list_od_holds(relation, forward.reversed()))


def list_od_holds_via_canonical(relation: Union[Relation, EncodedRelation],
                                od: ListOD) -> bool:
    """Validity via Theorem 5: map to canonical form and check each part.

    Must always agree with :func:`list_od_holds`; the property tests
    enforce exactly that equivalence.
    """
    validator = CanonicalValidator(_coerce(relation))
    image = map_list_od(od)
    return all(validator.holds(part) for part in image.all_ods)
