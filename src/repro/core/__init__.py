"""Core: the paper's contribution — canonical ODs and FASTOD."""

from repro.core.fastod import FastOD, FastODConfig, discover_ods
from repro.core.derivation import Derivation, Explainer, explain
from repro.core.hybrid import hybrid_discover
from repro.core.mapping import (
    CanonicalImage,
    map_compatibility_part,
    map_fd_part,
    map_list_od,
    map_order_compatibility,
)
from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
)
from repro.core.parser import parse, parse_equivalence
from repro.core.results import DiscoveryResult, LevelStats, diff_results
from repro.core.validation import (
    CanonicalValidator,
    Split,
    Swap,
    list_od_holds,
    list_od_holds_via_canonical,
    order_compatible,
    order_equivalent,
)

__all__ = [
    "CanonicalFD",
    "CanonicalImage",
    "CanonicalOCD",
    "CanonicalValidator",
    "Derivation",
    "DiscoveryResult",
    "Explainer",
    "FastOD",
    "FastODConfig",
    "LevelStats",
    "ListOD",
    "OrderCompatibility",
    "OrderSpec",
    "Split",
    "Swap",
    "diff_results",
    "discover_ods",
    "explain",
    "hybrid_discover",
    "list_od_holds",
    "list_od_holds_via_canonical",
    "map_compatibility_part",
    "map_fd_part",
    "map_list_od",
    "map_order_compatibility",
    "order_compatible",
    "order_equivalent",
    "parse",
    "parse_equivalence",
]
