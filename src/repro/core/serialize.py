"""JSON (de)serialization for dependencies and discovery results.

A discovery run over a big table is worth caching; this module renders
ODs and :class:`DiscoveryResult` objects to plain JSON and back, using
the same textual dependency syntax as :mod:`repro.core.parser`, so
serialized files stay human-readable and hand-editable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.core.parser import parse
from repro.core.results import DiscoveryResult, LevelStats
from repro.errors import DependencyError

Dependency = Union[CanonicalFD, CanonicalOCD, ListOD, OrderCompatibility]

_FORMAT_VERSION = 1


def dependency_to_text(dependency: Dependency) -> str:
    """Serialize one dependency (its ``str`` form round-trips)."""
    return str(dependency)


def dependency_from_text(text: str) -> Dependency:
    """Inverse of :func:`dependency_to_text`."""
    return parse(text)


def result_to_dict(result: DiscoveryResult) -> Dict:
    """A JSON-ready dictionary with everything needed to reload."""
    payload = result.to_dict()
    payload["format_version"] = _FORMAT_VERSION
    payload["config"] = dict(result.config)
    return payload


def result_from_dict(payload: Dict) -> DiscoveryResult:
    """Rebuild a :class:`DiscoveryResult` from :func:`result_to_dict`.

    Raises :class:`DependencyError` for unknown format versions or
    dependency lines of the wrong kind.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DependencyError(
            f"unsupported result format version {version!r}")
    fds: List[CanonicalFD] = []
    for line in payload.get("fds", []):
        dependency = parse(line)
        if not isinstance(dependency, CanonicalFD):
            raise DependencyError(f"expected a canonical FD, got {line!r}")
        fds.append(dependency)
    ocds: List[CanonicalOCD] = []
    for line in payload.get("ocds", []):
        dependency = parse(line)
        if not isinstance(dependency, CanonicalOCD):
            raise DependencyError(
                f"expected a canonical OCD, got {line!r}")
        ocds.append(dependency)
    result = DiscoveryResult(
        algorithm=payload.get("algorithm", "unknown"),
        attribute_names=tuple(payload.get("attributes", ())),
        n_rows=int(payload.get("n_rows", 0)),
        fds=fds,
        ocds=ocds,
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        timed_out=bool(payload.get("timed_out", False)),
        minimal=bool(payload.get("minimal", True)),
        config=dict(payload.get("config", {})),
    )
    cache_stats = payload.get("cache")
    if cache_stats is not None:
        result.cache_stats = dict(cache_stats)
    executor_stats = payload.get("executor")
    if executor_stats is not None:
        result.executor_stats = dict(executor_stats)
    timings = payload.get("timings")
    if timings is not None:
        result.timings = dict(timings)
    for level in payload.get("levels", []):
        result.level_stats.append(LevelStats(
            level=int(level["level"]),
            n_nodes=int(level.get("nodes", 0)),
            n_fds_found=int(level.get("fds", 0)),
            n_ocds_found=int(level.get("ocds", 0)),
            seconds=float(level.get("seconds", 0.0)),
            peak_partition_bytes=int(
                level.get("peak_partition_bytes", 0)),
        ))
    return result


def save_result(result: DiscoveryResult,
                path: Union[str, Path]) -> None:
    """Write a discovery result as indented JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2), encoding="utf-8")


def load_result(path: Union[str, Path]) -> DiscoveryResult:
    """Load a result previously written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(payload)
